"""AST call-graph extraction for host programs (PyCG-style, stdlib ``ast``).

The builder parses one module at a time and recovers, per function, the
linear sequence of *events* the partition verifier replays: framework
API call sites, host-variable operations, and dereferences.  Resolution
follows values the way PyCG's assignment graph does, restricted to the
patterns host pipelines actually use:

* gateway values — parameters named like a gateway, results of
  ``FreePart().deploy(...)`` / ``NativeGateway(...)`` /
  ``gateway.for_thread(...)``, aliases through locals and ``self``
  attributes;
* bound-method aliases (``call = gateway.call``);
* string arguments through module-level constants
  (``FW = "opencv"; gateway.call(FW, ...)``);
* one level of intra-module interprocedural flow: a module function
  receiving a gateway argument is analyzed with that parameter treated
  as a gateway, and its trace is spliced into the caller's at the call
  site (fixpoint over the module's call edges).

Anything beyond that — dynamically computed API names, gateways stored
in containers, cross-module helpers — is counted as *unresolved* rather
than guessed at, mirroring how the paper's static phase hands
indirect-call walks to the dynamic analysis.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.apitypes import APIType

#: Parameter names treated as gateway values without any dataflow proof.
GATEWAY_PARAM_NAMES = frozenset({"gateway", "gw"})

#: Constructors whose result is a gateway.
GATEWAY_FACTORIES = frozenset({
    "NativeGateway", "FreePartGateway", "ServeGateway",
    "BaselineGateway",
})

#: Methods (on any tracked value) whose result is a gateway.
GATEWAY_PRODUCING_METHODS = frozenset({"deploy", "for_thread"})

#: Parameter names that mark a function as tenant-scoped (serve handler).
TENANT_PARAM_NAMES = frozenset({"tenant", "tenant_id"})


class ValueKind(enum.Enum):
    """Abstract value lattice tracked through assignments."""

    GATEWAY = "gateway"
    HANDLE = "handle"              # result of gateway.call(...)
    MATERIALIZED = "materialized"  # result of gateway.materialize(...)
    CALL_METHOD = "call_method"    # bound alias of gateway.call
    MATERIALIZE_METHOD = "materialize_method"
    OTHER = "other"


@dataclass(frozen=True)
class Value:
    """One abstract value (kind + the call event that produced it)."""

    kind: ValueKind
    origin_line: int = 0


OTHER = Value(ValueKind.OTHER)


# ----------------------------------------------------------------------
# Trace events
# ----------------------------------------------------------------------


@dataclass
class CallEvent:
    """One resolved framework API call site."""

    framework: str
    api: str
    line: int
    col: int
    result_name: Optional[str] = None
    #: Names of argument variables holding materialized payloads at the
    #: moment of the call (the wrong-partition-deref evidence).
    materialized_args: Tuple[str, ...] = ()
    #: True for declarative ``CallSite(...)`` records: the site exists in
    #: the program but is not part of this function's dynamic trace.
    declared_only: bool = False
    #: ``APIType`` declared on a ``CallSite(...)`` record, if literal.
    declared_type: Optional[APIType] = None


@dataclass
class HostOpEvent:
    """A host-variable operation through the gateway (alloc/write/read)."""

    op: str  # "alloc" | "write" | "read"
    tag: str
    line: int
    col: int


@dataclass
class MaterializeEvent:
    """An explicit host dereference ``gateway.materialize(x)``."""

    source_name: Optional[str]
    result_name: Optional[str]
    line: int
    col: int


@dataclass
class SharedStoreEvent:
    """A value stored into state that outlives the current function call.

    Targets are module-level names, ``global``-declared names, and
    ``self`` attributes/containers — the places a serve handler could
    park one tenant's ObjectRef where another tenant's request finds it.
    """

    target: str
    value_kind: ValueKind
    line: int
    col: int


@dataclass
class InlineCallEvent:
    """A call to a module-local function that receives a gateway value."""

    callee: str
    line: int
    col: int


TraceEvent = Union[
    CallEvent, HostOpEvent, MaterializeEvent, SharedStoreEvent, InlineCallEvent
]


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------


@dataclass
class LocalSpec:
    """An ``APISpec(...)`` literal declared inside the analyzed module."""

    framework: str
    name: str
    qualname: str
    api_type: Optional[APIType]
    neutral: bool
    static_opaque: bool
    syscalls: Tuple[str, ...]
    init_syscalls: Tuple[str, ...]
    line: int


@dataclass
class FunctionTrace:
    """Everything the verifier needs about one function."""

    qualname: str
    line: int
    params: Tuple[str, ...]
    gateway_params: Set[str] = field(default_factory=set)
    tenant_scoped: bool = False
    events: List[TraceEvent] = field(default_factory=list)
    unresolved_calls: int = 0


@dataclass
class ModuleSummary:
    """The call-graph builder's output for one source file."""

    path: str
    functions: Dict[str, FunctionTrace] = field(default_factory=dict)
    #: Annotated host-variable tags (``MemoryLayout(tag=...)`` and
    #: ``annotated_tags=[...]`` literals found anywhere in the module).
    annotated_tags: Set[str] = field(default_factory=set)
    #: ``(framework, api)`` → in-file APISpec literal.
    local_specs: Dict[Tuple[str, str], LocalSpec] = field(default_factory=dict)
    #: Framework names registered in this module (``Framework("x")``).
    local_frameworks: Set[str] = field(default_factory=set)
    #: Frameworks with at least one APISpec whose name the builder could
    #: not resolve to a literal (dead-api checks are unsound for them).
    dynamic_spec_frameworks: Set[str] = field(default_factory=set)
    unresolved_calls: int = 0
    parse_error: Optional[str] = None
    #: The parsed module (None on parse errors).  The dataflow pass
    #: re-walks it with a taint environment; keeping the tree here saves
    #: a second parse and guarantees both passes see identical source.
    tree: Optional[ast.Module] = None
    #: Module-level string constants (name -> value), shared with the
    #: dataflow pass for tag/framework alias resolution.
    constants: Dict[str, str] = field(default_factory=dict)
    #: Module-level assigned names (shared-state bases for escape checks).
    module_level_names: Set[str] = field(default_factory=set)

    def all_events(self) -> List[TraceEvent]:
        """Every event across every function (declaration order)."""
        events: List[TraceEvent] = []
        for trace in self.functions.values():
            events.extend(trace.events)
        return events


# ----------------------------------------------------------------------
# Literal resolution helpers
# ----------------------------------------------------------------------


def _constant_str(node: ast.AST, constants: Dict[str, str]) -> Optional[str]:
    """A string literal, directly or through a module-level constant."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


def _constant_str_tuple(
    node: ast.AST, constants: Dict[str, str]
) -> Optional[Tuple[str, ...]]:
    """A tuple/list of string literals, or None if any element is opaque."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: List[str] = []
    for element in node.elts:
        value = _constant_str(element, constants)
        if value is None:
            return None
        values.append(value)
    return tuple(values)


def _api_type_literal(node: ast.AST) -> Optional[APIType]:
    """An ``APIType.X`` attribute expression resolved to its member."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "APIType"
    ):
        return getattr(APIType, node.attr, None)
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    """The bare callee name of ``Name(...)`` / ``mod.Name(...)`` calls."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _attr_key(node: ast.AST) -> Optional[str]:
    """A dotted key for simple chains (``self.gateway`` → "self.gateway")."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# Module prepass
# ----------------------------------------------------------------------


def _module_prepass(tree: ast.Module, summary: ModuleSummary) -> Dict[str, str]:
    """Collect module-level constants, specs, annotations, frameworks.

    Returns the module's string-constant table (name → value).
    """
    constants: Dict[str, str] = {}
    for statement in tree.body:
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                constants[target.id] = statement.value.value

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name == "APISpec":
            _collect_api_spec(node, constants, summary)
        elif name == "Framework":
            framework_name = None
            if node.args:
                framework_name = _constant_str(node.args[0], constants)
            for keyword in node.keywords:
                if keyword.arg == "name":
                    framework_name = _constant_str(keyword.value, constants)
            if framework_name:
                summary.local_frameworks.add(framework_name)
        elif name == "MemoryLayout":
            for keyword in node.keywords:
                if keyword.arg == "tag":
                    tag = _constant_str(keyword.value, constants)
                    if tag:
                        summary.annotated_tags.add(tag)
            if len(node.args) >= 2:
                tag = _constant_str(node.args[1], constants)
                if tag:
                    summary.annotated_tags.add(tag)
        for keyword in node.keywords:
            if keyword.arg == "annotated_tags":
                tags = _constant_str_tuple(keyword.value, constants)
                if tags:
                    summary.annotated_tags.update(tags)
    return constants


#: Positional field order of APISpec (name, framework, qualname,
#: ground_truth) — see :class:`repro.frameworks.base.APISpec`.
_API_SPEC_POSITIONAL = ("name", "framework", "qualname", "ground_truth")


def _collect_api_spec(
    node: ast.Call, constants: Dict[str, str], summary: ModuleSummary
) -> None:
    """Record one in-file ``APISpec(...)`` literal (or its dynamic-ness)."""
    fields: Dict[str, ast.AST] = {}
    for position, arg in enumerate(node.args[: len(_API_SPEC_POSITIONAL)]):
        fields[_API_SPEC_POSITIONAL[position]] = arg
    for keyword in node.keywords:
        if keyword.arg:
            fields[keyword.arg] = keyword.value

    framework = (
        _constant_str(fields["framework"], constants)
        if "framework" in fields else None
    )
    name = _constant_str(fields["name"], constants) if "name" in fields else None
    if framework and name is None:
        # A spec whose API name is computed (loop variables etc.): the
        # builder cannot enumerate this framework's APIs.
        summary.dynamic_spec_frameworks.add(framework)
        return
    if not framework or not name:
        return

    qualname = None
    if "qualname" in fields:
        qualname = _constant_str(fields["qualname"], constants)
    api_type = (
        _api_type_literal(fields["ground_truth"])
        if "ground_truth" in fields else None
    )
    neutral = False
    opaque = False
    for flag_name, default in (("neutral", False), ("static_opaque", False)):
        value = fields.get(flag_name)
        if isinstance(value, ast.Constant) and isinstance(value.value, bool):
            if flag_name == "neutral":
                neutral = value.value
            else:
                opaque = value.value
    syscalls = (
        _constant_str_tuple(fields.get("syscalls", ast.Tuple(elts=[])),
                            constants) or ()
    )
    init_syscalls = (
        _constant_str_tuple(fields.get("init_syscalls", ast.Tuple(elts=[])),
                            constants) or ()
    )
    summary.local_specs[(framework, name)] = LocalSpec(
        framework=framework,
        name=name,
        qualname=qualname or f"{framework}.{name}",
        api_type=api_type,
        neutral=neutral,
        static_opaque=opaque,
        syscalls=syscalls,
        init_syscalls=init_syscalls,
        line=node.lineno,
    )


# ----------------------------------------------------------------------
# Function walker
# ----------------------------------------------------------------------


class _FunctionWalker:
    """Linear, flow-ordered walk of one function body."""

    def __init__(
        self,
        builder: "CallGraphBuilder",
        trace: FunctionTrace,
        node: ast.FunctionDef,
    ) -> None:
        self.builder = builder
        self.trace = trace
        self.node = node
        self.env: Dict[str, Value] = {}
        self.local_names: Set[str] = set(trace.params)
        self.global_names: Set[str] = set()
        for param in trace.gateway_params:
            self.env[param] = Value(ValueKind.GATEWAY)

    # -- statement dispatch -------------------------------------------

    def walk(self) -> None:
        """Walk the body statements in source order."""
        for statement in self.node.body:
            self._statement(statement)

    def _statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Global):
            self.global_names.update(statement.names)
        elif isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assignment(statement)
        elif isinstance(statement, ast.Expr):
            self._eval(statement.value)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self._eval(statement.value)
        elif isinstance(statement, (ast.If,)):
            self._eval(statement.test)
            for child in statement.body:
                self._statement(child)
            for child in statement.orelse:
                self._statement(child)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self._eval(statement.iter)
            for child in statement.body:
                self._statement(child)
            for child in statement.orelse:
                self._statement(child)
        elif isinstance(statement, ast.While):
            self._eval(statement.test)
            for child in statement.body:
                self._statement(child)
            for child in statement.orelse:
                self._statement(child)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self._bind(item.optional_vars.id, value)
            for child in statement.body:
                self._statement(child)
        elif isinstance(statement, ast.Try):
            for child in statement.body:
                self._statement(child)
            for handler in statement.handlers:
                for child in handler.body:
                    self._statement(child)
            for child in statement.orelse:
                self._statement(child)
            for child in statement.finalbody:
                self._statement(child)
        # Nested defs/classes, imports, pass/break/continue: no events.

    # -- assignments ---------------------------------------------------

    def _assignment(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            value = self._eval(statement.value)
            for target in statement.targets:
                self._assign_target(target, value, statement)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is None:
                return
            value = self._eval(statement.value)
            self._assign_target(statement.target, value, statement)
        elif isinstance(statement, ast.AugAssign):
            value = self._eval(statement.value)
            self._assign_target(statement.target, value, statement,
                                augmented=True)

    def _assign_target(
        self,
        target: ast.AST,
        value: Value,
        statement: ast.stmt,
        augmented: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.global_names:
                self._shared_store(target.id, value, statement)
            elif (
                augmented
                and target.id not in self.local_names
                and target.id in self.builder.module_level_names
            ):
                self._shared_store(target.id, value, statement)
            else:
                self._bind(target.id, value)
        elif isinstance(target, ast.Attribute):
            key = _attr_key(target)
            if key is not None:
                self.env[key] = value
                if key.startswith("self."):
                    self._shared_store(key, value, statement)
        elif isinstance(target, ast.Subscript):
            base = _attr_key(target.value) or (
                target.value.id if isinstance(target.value, ast.Name) else None
            )
            if base is not None and self._is_shared_base(base):
                self._shared_store(f"{base}[...]", value, statement)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, OTHER, statement)

    def _bind(self, name: str, value: Value) -> None:
        self.local_names.add(name)
        self.env[name] = value

    def _is_shared_base(self, base: str) -> bool:
        """Does ``base`` name state that outlives this function call?"""
        if base.startswith("self."):
            return True
        root = base.split(".", 1)[0]
        if root in self.global_names:
            return True
        return (
            root not in self.local_names
            and root in self.builder.module_level_names
        )

    def _shared_store(
        self, target: str, value: Value, statement: ast.stmt
    ) -> None:
        self.trace.events.append(SharedStoreEvent(
            target=target,
            value_kind=value.kind,
            line=statement.lineno,
            col=statement.col_offset,
        ))

    # -- expression evaluation ----------------------------------------

    def _lookup(self, node: ast.AST) -> Value:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, OTHER)
        key = _attr_key(node)
        if key is not None:
            return self.env.get(key, OTHER)
        return OTHER

    def _eval(self, node: ast.AST) -> Value:
        """Evaluate an expression, emitting events for recognized calls."""
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            receiver = self._lookup(node.value)
            if receiver.kind is ValueKind.GATEWAY:
                # Bound-method aliases: ``call = gateway.call``.
                if node.attr == "call":
                    return Value(ValueKind.CALL_METHOD, node.lineno)
                if node.attr == "materialize":
                    return Value(ValueKind.MATERIALIZE_METHOD, node.lineno)
            return self._lookup(node)
        if isinstance(node, ast.Name):
            return self._lookup(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._eval(element)
            return OTHER
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key)
            for value in node.values:
                self._eval(value)
            return OTHER
        if isinstance(node, ast.BinOp):
            self._eval(node.left)
            self._eval(node.right)
            return OTHER
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return OTHER
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return OTHER
        if isinstance(node, ast.UnaryOp):
            self._eval(node.operand)
            return OTHER
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            first = self._eval(node.body)
            second = self._eval(node.orelse)
            return first if first.kind is second.kind else OTHER
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value)
            return OTHER
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            self._eval(node.value)
            return OTHER
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        return OTHER

    # -- call classification -------------------------------------------

    def _eval_call(self, node: ast.Call) -> Value:
        func = node.func

        # Method calls on tracked values: gateway.call / materialize /
        # host_* / for_thread / deploy, and shared-container mutation.
        if isinstance(func, ast.Attribute):
            receiver = self._lookup(func.value)
            method = func.attr

            if receiver.kind is ValueKind.GATEWAY:
                handled = self._gateway_method(node, method)
                if handled is not None:
                    return handled
            if method in GATEWAY_PRODUCING_METHODS:
                self._eval_args(node)
                return Value(ValueKind.GATEWAY, node.lineno)
            if method in ("append", "add", "insert", "setdefault", "update"):
                base = _attr_key(func.value) or (
                    func.value.id if isinstance(func.value, ast.Name) else None
                )
                argument_kinds = [self._eval(arg) for arg in node.args]
                for keyword in node.keywords:
                    argument_kinds.append(self._eval(keyword.value))
                if base is not None and self._is_shared_base(base):
                    stored = next(
                        (v for v in argument_kinds
                         if v.kind in (ValueKind.HANDLE,
                                       ValueKind.MATERIALIZED)),
                        None,
                    )
                    if stored is not None:
                        self.trace.events.append(SharedStoreEvent(
                            target=f"{base}.{method}()",
                            value_kind=stored.kind,
                            line=node.lineno,
                            col=node.col_offset,
                        ))
                return OTHER
            self._eval_args(node)
            return OTHER

        # Bare-name calls.
        if isinstance(func, ast.Name):
            callee = func.id
            bound = self.env.get(callee)
            if bound is not None and bound.kind is ValueKind.CALL_METHOD:
                return self._framework_call(node)
            if bound is not None and bound.kind is ValueKind.MATERIALIZE_METHOD:
                return self._materialize_call(node)
            if callee in GATEWAY_FACTORIES:
                self._eval_args(node)
                return Value(ValueKind.GATEWAY, node.lineno)
            if callee == "CallSite":
                self._declared_site(node)
                return OTHER
            local_function = self.builder.function_nodes.get(callee)
            if local_function is not None:
                return self._local_call(node, callee)
        self._eval_args(node)
        return OTHER

    def _eval_args(self, node: ast.Call) -> List[Value]:
        values = [self._eval(arg) for arg in node.args]
        values.extend(self._eval(keyword.value) for keyword in node.keywords)
        return values

    def _gateway_method(self, node: ast.Call, method: str) -> Optional[Value]:
        """Events for a method call on a gateway value (None = not ours)."""
        if method == "call":
            return self._framework_call(node)
        if method == "materialize":
            return self._materialize_call(node)
        if method in ("host_alloc", "host_write", "host_read"):
            tag = (
                _constant_str(node.args[0], self.builder.constants)
                if node.args else None
            )
            self._eval_args(node)
            if tag is not None:
                self.trace.events.append(HostOpEvent(
                    op=method[len("host_"):],
                    tag=tag,
                    line=node.lineno,
                    col=node.col_offset,
                ))
            return OTHER
        return None

    def _framework_call(self, node: ast.Call) -> Value:
        """A ``gateway.call(framework, api, *args)`` site."""
        if len(node.args) < 2:
            self._unresolved()
            return Value(ValueKind.HANDLE, node.lineno)
        framework = _constant_str(node.args[0], self.builder.constants)
        api = _constant_str(node.args[1], self.builder.constants)
        payload_args = node.args[2:]
        materialized: List[str] = []
        for arg in payload_args:
            value = self._eval(arg)
            if value.kind is ValueKind.MATERIALIZED:
                materialized.append(
                    arg.id if isinstance(arg, ast.Name) else "<expression>"
                )
        for keyword in node.keywords:
            value = self._eval(keyword.value)
            if value.kind is ValueKind.MATERIALIZED:
                materialized.append(keyword.arg or "<expression>")
        if framework is None or api is None:
            self._unresolved()
            return Value(ValueKind.HANDLE, node.lineno)
        event = CallEvent(
            framework=framework,
            api=api,
            line=node.lineno,
            col=node.col_offset,
            materialized_args=tuple(materialized),
        )
        self.trace.events.append(event)
        return Value(ValueKind.HANDLE, node.lineno)

    def _unresolved(self) -> None:
        """Count a call site whose framework/API names are not literal."""
        self.trace.unresolved_calls += 1
        self.builder.summary.unresolved_calls += 1

    def _materialize_call(self, node: ast.Call) -> Value:
        source = (
            node.args[0].id
            if node.args and isinstance(node.args[0], ast.Name) else None
        )
        self._eval_args(node)
        self.trace.events.append(MaterializeEvent(
            source_name=source,
            result_name=None,
            line=node.lineno,
            col=node.col_offset,
        ))
        return Value(ValueKind.MATERIALIZED, node.lineno)

    def _declared_site(self, node: ast.Call) -> None:
        """A ``CallSite(framework, api, ...)`` data record."""
        fields: Dict[str, ast.AST] = {}
        positional = ("framework", "api", "argspec", "api_type")
        for position, arg in enumerate(node.args[: len(positional)]):
            fields[positional[position]] = arg
        for keyword in node.keywords:
            if keyword.arg:
                fields[keyword.arg] = keyword.value
        framework = (
            _constant_str(fields["framework"], self.builder.constants)
            if "framework" in fields else None
        )
        api = (
            _constant_str(fields["api"], self.builder.constants)
            if "api" in fields else None
        )
        if framework is None or api is None:
            self.trace.unresolved_calls += 1
            self.builder.summary.unresolved_calls += 1
            return
        declared_type = (
            _api_type_literal(fields["api_type"])
            if "api_type" in fields else None
        )
        self.trace.events.append(CallEvent(
            framework=framework,
            api=api,
            line=node.lineno,
            col=node.col_offset,
            declared_only=True,
            declared_type=declared_type,
        ))

    def _local_call(self, node: ast.Call, callee: str) -> Value:
        """A call to another function defined in this module."""
        argument_values = self._eval_args(node)
        gateway_positions = [
            position for position, value in enumerate(argument_values[: len(node.args)])
            if value.kind is ValueKind.GATEWAY
        ]
        gateway_keywords = [
            keyword.arg
            for keyword, value in zip(
                node.keywords, argument_values[len(node.args):]
            )
            if keyword.arg and value.kind is ValueKind.GATEWAY
        ]
        if gateway_positions or gateway_keywords:
            self.builder.record_gateway_edge(
                callee, gateway_positions, gateway_keywords
            )
            self.trace.events.append(InlineCallEvent(
                callee=callee, line=node.lineno, col=node.col_offset,
            ))
        return OTHER


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------


class CallGraphBuilder:
    """Build a :class:`ModuleSummary` for one Python source file."""

    #: Fixpoint bound for interprocedural gateway propagation.
    MAX_PASSES = 5

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.summary = ModuleSummary(path=path)
        self._tree: Optional[ast.Module] = None
        self.constants: Dict[str, str] = {}
        self.module_level_names: Set[str] = set()
        self.function_nodes: Dict[str, ast.FunctionDef] = {}
        self._function_qualnames: Dict[str, str] = {}
        #: name → parameter names proven to receive gateway values.
        self._propagated: Dict[str, Set[str]] = {}
        self._edges_changed = False

    @classmethod
    def from_file(cls, path: str) -> "CallGraphBuilder":
        """Construct a builder by reading ``path``."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls(path, handle.read())

    def record_gateway_edge(
        self,
        callee: str,
        positions: Sequence[int],
        keywords: Sequence[str],
    ) -> None:
        """A caller passes gateway values into a module-local function."""
        node = self.function_nodes.get(callee)
        if node is None:
            return
        parameter_names = [argument.arg for argument in node.args.args]
        marked = self._propagated.setdefault(callee, set())
        before = len(marked)
        for position in positions:
            if position < len(parameter_names):
                marked.add(parameter_names[position])
        for keyword in keywords:
            if keyword in parameter_names:
                marked.add(keyword)
        if len(marked) != before:
            self._edges_changed = True

    def build(self) -> ModuleSummary:
        """Parse, prepass, and analyze every function to a fixpoint."""
        try:
            tree = ast.parse(self.source, filename=self.path)
        except SyntaxError as exc:
            self.summary.parse_error = f"{exc.msg} (line {exc.lineno})"
            return self.summary
        self._tree = tree
        self.summary.tree = tree
        self.constants = _module_prepass(tree, self.summary)
        self.summary.constants = self.constants

        for statement in tree.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        self.module_level_names.add(target.id)
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name):
                    self.module_level_names.add(statement.target.id)
        self.summary.module_level_names = self.module_level_names

        self._collect_functions(tree)
        for _ in range(self.MAX_PASSES):
            self._edges_changed = False
            self.summary.unresolved_calls = 0
            self._analyze_all()
            if not self._edges_changed:
                break
        return self.summary

    def _collect_functions(self, tree: ast.Module) -> None:
        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.function_nodes[statement.name] = statement
                self._function_qualnames[statement.name] = statement.name
            elif isinstance(statement, ast.ClassDef):
                for member in statement.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        qualname = f"{statement.name}.{member.name}"
                        # Methods are analyzed but only reachable by
                        # name for module-level functions; a method name
                        # clashing with a function keeps the function.
                        self.function_nodes.setdefault(member.name, member)
                        self._function_qualnames.setdefault(
                            member.name, qualname
                        )

    def _analyze_all(self) -> None:
        self.summary.functions.clear()
        module_trace = FunctionTrace(qualname="<module>", line=1, params=())
        module_walker = _FunctionWalker(self, module_trace, self._tree)
        module_walker.local_names.update(self.module_level_names)
        module_walker.walk()
        if module_trace.events or module_trace.unresolved_calls:
            self.summary.functions["<module>"] = module_trace
        for name, node in self.function_nodes.items():
            qualname = self._function_qualnames.get(name, name)
            trace = self._analyze_function(name, qualname, node)
            self.summary.functions[qualname] = trace

    def _analyze_function(
        self, name: str, qualname: str, node: ast.FunctionDef
    ) -> FunctionTrace:
        parameter_names = tuple(
            argument.arg
            for argument in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
        )
        gateway_params = {
            parameter for parameter in parameter_names
            if parameter in GATEWAY_PARAM_NAMES
            or parameter.endswith("_gateway")
        }
        gateway_params.update(self._propagated.get(name, set()))
        trace = FunctionTrace(
            qualname=qualname,
            line=node.lineno,
            params=parameter_names,
            gateway_params=gateway_params,
            tenant_scoped=any(
                parameter in TENANT_PARAM_NAMES
                or parameter.startswith("tenant")
                for parameter in parameter_names
            ),
        )
        walker = _FunctionWalker(self, trace, node)
        walker.walk()
        return trace


def build_module(path: str) -> ModuleSummary:
    """Convenience: build the call-graph summary of one file."""
    return CallGraphBuilder.from_file(path).build()
