"""The partition-policy rule classes of the static verifier.

Each rule reads the per-function :class:`~repro.staticcheck.inference.FunctionReport`
plans (and the raw module summary) and yields findings.  Severity
philosophy: a rule is an **error** when the runtime would punish the
code at execution time — frozen-state writes die by SIGSEGV, denied
syscalls kill the agent, cross-tenant replays raise
``TenantIsolationError`` — and a **warning** when the code runs but
undermines the partitioning (redundant host copies, dead specs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.apitypes import APIType
from repro.frameworks.syscall_pools import pool_for
from repro.staticcheck.callgraph import LocalSpec, ModuleSummary, ValueKind
from repro.staticcheck.dataflow import DataflowReport
from repro.staticcheck.inference import FunctionReport
from repro.staticcheck.privileges import AgentPrivilege, pool_excess
from repro.staticcheck.report import Finding, Severity


@dataclass
class RuleContext:
    """Everything one file's rules get to look at."""

    path: str
    summary: ModuleSummary
    reports: Dict[str, FunctionReport]
    unused_specs: List[LocalSpec] = field(default_factory=list)
    #: The interprocedural flow pass (None only if construction failed).
    dataflow: Optional[DataflowReport] = None
    #: Per-agent minimal privilege sets inferred from the plans.
    privileges: Dict[str, AgentPrivilege] = field(default_factory=dict)
    #: Opt-in gate for the advisory over-privileged-pool findings.
    strict_pools: bool = False


class Rule:
    """One verifier rule: an id, a severity, and a check over a file."""

    id: str = "abstract"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, context: RuleContext) -> Iterator[Finding]:
        """Yield findings for one analyzed file."""
        raise NotImplementedError

    def finding(
        self,
        context: RuleContext,
        line: int,
        col: int,
        message: str,
        function: Optional[str] = None,
    ) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=context.path,
            line=line,
            col=col,
            message=message,
            function=function,
        )


class FrozenWriteRule(Rule):
    """Host writes to tags frozen by an earlier phase transition.

    The runtime makes annotated host buffers read-only when the
    framework leaves the state they were defined in; a later
    ``host_write`` dies by SIGSEGV.  The sanctioned update path is
    ``host_alloc`` (a fresh buffer in the current state).
    """

    id = "frozen-write"
    severity = Severity.ERROR
    description = "write to a host variable frozen by a phase transition"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            for hit in report.frozen_writes:
                yield self.finding(
                    context, hit.event.line, hit.event.col,
                    f"host_write to '{hit.tag}' would fault: the buffer "
                    f"was defined during {hit.alloc_state.value} and is "
                    f"read-only once the framework moved on (write "
                    f"happens in {hit.write_state.value}); re-allocate "
                    "with host_alloc instead",
                    function=qualname,
                )


class PhaseOrderRule(Rule):
    """Storing before the trace's first loading call (Fig. 3 inversion).

    Only fires when the same trace *does* load later — a store-only
    helper that persists data handed in by its caller is legitimate.
    """

    id = "phase-order"
    severity = Severity.ERROR
    description = "storing call executes before the pipeline has loaded"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            concrete = [
                step for step in report.steps
                if not step.verdict.neutral
                and step.verdict.api_type.is_concrete
            ]
            load_positions = [
                position for position, step in enumerate(concrete)
                if step.verdict.api_type is APIType.LOADING
            ]
            if not load_positions:
                continue
            first_load = load_positions[0]
            for position, step in enumerate(concrete):
                if (
                    step.verdict.api_type is APIType.STORING
                    and position < first_load
                ):
                    later = concrete[first_load]
                    yield self.finding(
                        context, step.event.line, step.event.col,
                        f"{step.verdict.qualname} stores before the "
                        f"pipeline loads anything ("
                        f"{later.verdict.qualname} loads later at line "
                        f"{later.event.line}) — store-before-load "
                        "inverts the framework phase order",
                        function=qualname,
                    )


class SyscallPoolRule(Rule):
    """API syscall profile exceeds its predicted agent's allowlist.

    The agent running this site installs ``pool_for(agent_type)`` as its
    seccomp filter; a declared syscall outside that pool (or an
    init-only syscall outside pool + init allowance) means the agent is
    killed the first time the API runs.
    """

    id = "syscall-pool"
    severity = Severity.ERROR
    description = "declared syscalls outside the inferred agent's pool"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        seen: set = set()
        for qualname, report in context.reports.items():
            for step in report.steps:
                # One resolution path with the minimal-set inference:
                # the same membership check feeds over-privilege diffs.
                extra, extra_init = pool_excess(
                    step.verdict, step.effective_type
                )
                key = (step.event.line, step.event.col,
                       tuple(extra), tuple(extra_init))
                if (not extra and not extra_init) or key in seen:
                    continue
                seen.add(key)
                parts = []
                if extra:
                    parts.append(f"syscalls {', '.join(extra)}")
                if extra_init:
                    parts.append(
                        f"init-only syscalls {', '.join(extra_init)}"
                    )
                yield self.finding(
                    context, step.event.line, step.event.col,
                    f"{step.verdict.qualname} declares "
                    f"{' and '.join(parts)} outside the "
                    f"'{step.agent}' agent's seccomp pool — the agent "
                    "would be killed on first use",
                    function=qualname,
                )


class WrongPartitionDerefRule(Rule):
    """A materialized copy is passed back into an agent partition.

    ``materialize`` dereferences an ObjectRef into the host partition;
    feeding the copy back to a framework call re-ships the full payload
    to the agent.  Passing the ObjectRef instead keeps the transfer lazy
    and in-partition.
    """

    id = "wrong-partition-deref"
    severity = Severity.WARNING
    description = "materialized value flows back into an agent call"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            for step in report.steps:
                if not step.event.materialized_args:
                    continue
                names = ", ".join(step.event.materialized_args)
                yield self.finding(
                    context, step.event.line, step.event.col,
                    f"materialized value ({names}) passed into "
                    f"{step.verdict.qualname}, which runs in the "
                    f"'{step.agent}' agent — pass the ObjectRef and let "
                    "the runtime dereference in-partition",
                    function=qualname,
                )


#: Pseudo-frameworks the dead-api rule ignores: ``gateway.call("obs",
#: ...)`` sites are tracing annotations dispatched to the span tracer
#: (repro.core.gateway.OBS_FRAMEWORK), never to the API registry, so
#: they legitimately resolve to no known API.
OBS_FRAMEWORKS = frozenset({"obs"})


class DeadApiRule(Rule):
    """Call sites naming no known API, and in-file specs never called."""

    id = "dead-api"
    severity = Severity.WARNING
    description = "call site resolves to no known API, or spec is unused"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            for failure in report.failures:
                if failure.kind != "dead":
                    continue
                if failure.event.framework in OBS_FRAMEWORKS:
                    continue
                yield self.finding(
                    context, failure.event.line, failure.event.col,
                    failure.message,
                    function=qualname,
                )
        for spec in context.unused_specs:
            yield self.finding(
                context, spec.line, 0,
                f"in-file APISpec {spec.qualname} is registered but "
                "never called from this module",
            )


class UncategorizableRule(Rule):
    """Call sites the hybrid analysis cannot assign to any partition."""

    id = "uncategorizable"
    severity = Severity.ERROR
    description = "hybrid analysis cannot type this call site"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            for failure in report.failures:
                if failure.kind != "uncategorizable":
                    continue
                yield self.finding(
                    context, failure.event.line, failure.event.col,
                    failure.message,
                    function=qualname,
                )


class TenantRefLeakRule(Rule):
    """An ObjectRef escapes a tenant-scoped handler into shared state.

    The serve layer namespaces refs per tenant and raises
    ``TenantIsolationError`` on replay, but a ref parked in a module
    global or ``self`` attribute survives the request and leaks one
    tenant's handle into another tenant's scope.
    """

    id = "tenant-ref-leak"
    severity = Severity.ERROR
    description = "tenant handler stores an ObjectRef into shared state"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            if not report.trace.tenant_scoped:
                continue
            for store in report.shared_stores:
                if store.value_kind is not ValueKind.HANDLE:
                    continue
                yield self.finding(
                    context, store.line, store.col,
                    f"ObjectRef stored into shared state "
                    f"'{store.target}' from tenant-scoped handler — "
                    "another tenant's request can observe or replay it",
                    function=qualname,
                )


class CrossPartitionLeakRule(Rule):
    """A value produced in one partition crosses into another's API.

    The flow pass tracks partition provenance through assignments,
    containers, helper calls, and derivations; a *materialized* value
    (host copy of agent data) handed to an API that executes in a
    different agent moves one partition's data into another without an
    LDC transfer — exactly the cross-compartment leakage partitioning is
    supposed to prevent.
    """

    id = "cross-partition-leak"
    severity = Severity.ERROR
    description = "agent-produced value crosses into another partition"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        if context.dataflow is None:
            return
        # Direct materialized args are already the per-site
        # wrong-partition-deref rule's evidence; the flow rule owns the
        # indirect paths that rule cannot see (aliases, containers,
        # helper returns, derivations).
        direct: set = set()
        for report in context.reports.values():
            for step in report.steps:
                for name in step.event.materialized_args:
                    direct.add((step.event.line, step.event.col, name))
        for hit in context.dataflow.leaks:
            if (hit.line, hit.col, hit.value) in direct:
                continue
            produced = ", ".join(hit.produced_in)
            yield self.finding(
                context, hit.line, hit.col,
                f"value '{hit.value}' produced in the '{produced}' "
                f"partition is passed into {hit.api}, which runs in the "
                f"'{hit.consumed_in}' agent — keep it as an ObjectRef so "
                "the LDC transfer stays in-partition",
                function=hit.function,
            )


class TenantTaintEscapeRule(Rule):
    """Tenant-derived data reaching a shared or host sink.

    The tenant-ref-leak rule covers parked ObjectRefs; this covers the
    *data*: a value materialized (or derived from one) inside a
    tenant-scoped flow that lands in module/self/global state or a host
    buffer outlives the request and is visible to every other tenant.
    """

    id = "tenant-taint-escape"
    severity = Severity.ERROR
    description = "tenant-derived data reaches a shared or host sink"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        if context.dataflow is None:
            return
        for hit in context.dataflow.escapes:
            if hit.sink == "host":
                yield self.finding(
                    context, hit.line, hit.col,
                    f"tenant-derived data written into {hit.target} — "
                    "host buffers outlive the request and are readable "
                    "from every tenant's flow",
                    function=hit.function,
                )
            else:
                yield self.finding(
                    context, hit.line, hit.col,
                    f"tenant-derived data stored into shared state "
                    f"'{hit.target}' — it outlives the request and "
                    "leaks across tenant scopes",
                    function=hit.function,
                )


class FrozenAliasWriteRule(Rule):
    """A host_write through a string alias of a frozen tag.

    The per-site frozen-write rule only sees literal (or module
    constant) tag arguments; a tag reaching the write through a local
    variable dodges it while still faulting at runtime.  The flow pass
    resolves local string aliases and replays the same freeze machine.
    """

    id = "frozen-alias-write"
    severity = Severity.ERROR
    description = "aliased host_write targets a frozen tag"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        if context.dataflow is None:
            return
        for hit in context.dataflow.alias_writes:
            yield self.finding(
                context, hit.line, hit.col,
                f"host_write through alias '{hit.alias}' targets tag "
                f"'{hit.tag}', frozen since the framework left "
                f"{hit.alloc_state.value} (write happens in "
                f"{hit.write_state.value}) — the per-site check cannot "
                "see this alias; re-allocate with host_alloc",
                function=hit.function,
            )


class OverPrivilegedPoolRule(Rule):
    """A configured pool grants syscalls no resolved API requires.

    Advisory and opt-in (``--strict-pools``): the Table 7 pools are the
    paper's sound default, but a pipeline using a fraction of a pool
    carries attack surface it never needs.  The finding anchors at the
    first site placed in the agent; ``--emit-minimal-pools`` prints the
    tightened spec.
    """

    id = "over-privileged-pool"
    severity = Severity.WARNING
    description = "agent pool grants syscalls no resolved API declares"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        if not context.strict_pools:
            return
        for label in sorted(context.privileges):
            privilege = context.privileges[label]
            if privilege.sites == 0:
                continue
            surplus = privilege.pool_surplus()
            if not surplus:
                continue
            pool = pool_for(privilege.api_type) or frozenset()
            preview = ", ".join(surplus[:4])
            if len(surplus) > 4:
                preview += ", ..."
            line, col = privilege.anchor
            yield self.finding(
                context, line, col,
                f"the '{label}' agent's pool grants {len(surplus)} of "
                f"{len(pool)} syscalls that no resolved API declares "
                f"({preview}) — tighten with --emit-minimal-pools",
            )


#: Registry of every verifier rule, in reporting order.
ALL_RULES: Tuple[Rule, ...] = (
    FrozenWriteRule(),
    PhaseOrderRule(),
    SyscallPoolRule(),
    WrongPartitionDerefRule(),
    DeadApiRule(),
    UncategorizableRule(),
    TenantRefLeakRule(),
    CrossPartitionLeakRule(),
    TenantTaintEscapeRule(),
    FrozenAliasWriteRule(),
    OverPrivilegedPoolRule(),
)


def rule_ids() -> Tuple[str, ...]:
    """The stable ids accepted by ``# repro: ignore[...]``."""
    return tuple(rule.id for rule in ALL_RULES)
