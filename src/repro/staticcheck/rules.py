"""The partition-policy rule classes of the static verifier.

Each rule reads the per-function :class:`~repro.staticcheck.inference.FunctionReport`
plans (and the raw module summary) and yields findings.  Severity
philosophy: a rule is an **error** when the runtime would punish the
code at execution time — frozen-state writes die by SIGSEGV, denied
syscalls kill the agent, cross-tenant replays raise
``TenantIsolationError`` — and a **warning** when the code runs but
undermines the partitioning (redundant host copies, dead specs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.apitypes import APIType
from repro.frameworks.syscall_pools import INIT_ONLY_SYSCALLS, pool_for
from repro.staticcheck.callgraph import LocalSpec, ModuleSummary, ValueKind
from repro.staticcheck.inference import FunctionReport
from repro.staticcheck.report import Finding, Severity


@dataclass
class RuleContext:
    """Everything one file's rules get to look at."""

    path: str
    summary: ModuleSummary
    reports: Dict[str, FunctionReport]
    unused_specs: List[LocalSpec] = field(default_factory=list)


class Rule:
    """One verifier rule: an id, a severity, and a check over a file."""

    id: str = "abstract"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, context: RuleContext) -> Iterator[Finding]:
        """Yield findings for one analyzed file."""
        raise NotImplementedError

    def finding(
        self,
        context: RuleContext,
        line: int,
        col: int,
        message: str,
        function: Optional[str] = None,
    ) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=context.path,
            line=line,
            col=col,
            message=message,
            function=function,
        )


class FrozenWriteRule(Rule):
    """Host writes to tags frozen by an earlier phase transition.

    The runtime makes annotated host buffers read-only when the
    framework leaves the state they were defined in; a later
    ``host_write`` dies by SIGSEGV.  The sanctioned update path is
    ``host_alloc`` (a fresh buffer in the current state).
    """

    id = "frozen-write"
    severity = Severity.ERROR
    description = "write to a host variable frozen by a phase transition"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            for hit in report.frozen_writes:
                yield self.finding(
                    context, hit.event.line, hit.event.col,
                    f"host_write to '{hit.tag}' would fault: the buffer "
                    f"was defined during {hit.alloc_state.value} and is "
                    f"read-only once the framework moved on (write "
                    f"happens in {hit.write_state.value}); re-allocate "
                    "with host_alloc instead",
                    function=qualname,
                )


class PhaseOrderRule(Rule):
    """Storing before the trace's first loading call (Fig. 3 inversion).

    Only fires when the same trace *does* load later — a store-only
    helper that persists data handed in by its caller is legitimate.
    """

    id = "phase-order"
    severity = Severity.ERROR
    description = "storing call executes before the pipeline has loaded"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            concrete = [
                step for step in report.steps
                if not step.verdict.neutral
                and step.verdict.api_type.is_concrete
            ]
            load_positions = [
                position for position, step in enumerate(concrete)
                if step.verdict.api_type is APIType.LOADING
            ]
            if not load_positions:
                continue
            first_load = load_positions[0]
            for position, step in enumerate(concrete):
                if (
                    step.verdict.api_type is APIType.STORING
                    and position < first_load
                ):
                    later = concrete[first_load]
                    yield self.finding(
                        context, step.event.line, step.event.col,
                        f"{step.verdict.qualname} stores before the "
                        f"pipeline loads anything ("
                        f"{later.verdict.qualname} loads later at line "
                        f"{later.event.line}) — store-before-load "
                        "inverts the framework phase order",
                        function=qualname,
                    )


class SyscallPoolRule(Rule):
    """API syscall profile exceeds its predicted agent's allowlist.

    The agent running this site installs ``pool_for(agent_type)`` as its
    seccomp filter; a declared syscall outside that pool (or an
    init-only syscall outside pool + init allowance) means the agent is
    killed the first time the API runs.
    """

    id = "syscall-pool"
    severity = Severity.ERROR
    description = "declared syscalls outside the inferred agent's pool"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        seen: set = set()
        for qualname, report in context.reports.items():
            for step in report.steps:
                pool = pool_for(step.effective_type)
                if pool is None:
                    continue
                extra = sorted(set(step.verdict.syscalls) - pool)
                extra_init = sorted(
                    set(step.verdict.init_syscalls)
                    - pool - INIT_ONLY_SYSCALLS
                )
                key = (step.event.line, step.event.col,
                       tuple(extra), tuple(extra_init))
                if (not extra and not extra_init) or key in seen:
                    continue
                seen.add(key)
                parts = []
                if extra:
                    parts.append(f"syscalls {', '.join(extra)}")
                if extra_init:
                    parts.append(
                        f"init-only syscalls {', '.join(extra_init)}"
                    )
                yield self.finding(
                    context, step.event.line, step.event.col,
                    f"{step.verdict.qualname} declares "
                    f"{' and '.join(parts)} outside the "
                    f"'{step.agent}' agent's seccomp pool — the agent "
                    "would be killed on first use",
                    function=qualname,
                )


class WrongPartitionDerefRule(Rule):
    """A materialized copy is passed back into an agent partition.

    ``materialize`` dereferences an ObjectRef into the host partition;
    feeding the copy back to a framework call re-ships the full payload
    to the agent.  Passing the ObjectRef instead keeps the transfer lazy
    and in-partition.
    """

    id = "wrong-partition-deref"
    severity = Severity.WARNING
    description = "materialized value flows back into an agent call"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            for step in report.steps:
                if not step.event.materialized_args:
                    continue
                names = ", ".join(step.event.materialized_args)
                yield self.finding(
                    context, step.event.line, step.event.col,
                    f"materialized value ({names}) passed into "
                    f"{step.verdict.qualname}, which runs in the "
                    f"'{step.agent}' agent — pass the ObjectRef and let "
                    "the runtime dereference in-partition",
                    function=qualname,
                )


#: Pseudo-frameworks the dead-api rule ignores: ``gateway.call("obs",
#: ...)`` sites are tracing annotations dispatched to the span tracer
#: (repro.core.gateway.OBS_FRAMEWORK), never to the API registry, so
#: they legitimately resolve to no known API.
OBS_FRAMEWORKS = frozenset({"obs"})


class DeadApiRule(Rule):
    """Call sites naming no known API, and in-file specs never called."""

    id = "dead-api"
    severity = Severity.WARNING
    description = "call site resolves to no known API, or spec is unused"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            for failure in report.failures:
                if failure.kind != "dead":
                    continue
                if failure.event.framework in OBS_FRAMEWORKS:
                    continue
                yield self.finding(
                    context, failure.event.line, failure.event.col,
                    failure.message,
                    function=qualname,
                )
        for spec in context.unused_specs:
            yield self.finding(
                context, spec.line, 0,
                f"in-file APISpec {spec.qualname} is registered but "
                "never called from this module",
            )


class UncategorizableRule(Rule):
    """Call sites the hybrid analysis cannot assign to any partition."""

    id = "uncategorizable"
    severity = Severity.ERROR
    description = "hybrid analysis cannot type this call site"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            for failure in report.failures:
                if failure.kind != "uncategorizable":
                    continue
                yield self.finding(
                    context, failure.event.line, failure.event.col,
                    failure.message,
                    function=qualname,
                )


class TenantRefLeakRule(Rule):
    """An ObjectRef escapes a tenant-scoped handler into shared state.

    The serve layer namespaces refs per tenant and raises
    ``TenantIsolationError`` on replay, but a ref parked in a module
    global or ``self`` attribute survives the request and leaks one
    tenant's handle into another tenant's scope.
    """

    id = "tenant-ref-leak"
    severity = Severity.ERROR
    description = "tenant handler stores an ObjectRef into shared state"

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for qualname, report in context.reports.items():
            if not report.trace.tenant_scoped:
                continue
            for store in report.shared_stores:
                if store.value_kind is not ValueKind.HANDLE:
                    continue
                yield self.finding(
                    context, store.line, store.col,
                    f"ObjectRef stored into shared state "
                    f"'{store.target}' from tenant-scoped handler — "
                    "another tenant's request can observe or replay it",
                    function=qualname,
                )


#: Registry of every verifier rule, in reporting order.
ALL_RULES: Tuple[Rule, ...] = (
    FrozenWriteRule(),
    PhaseOrderRule(),
    SyscallPoolRule(),
    WrongPartitionDerefRule(),
    DeadApiRule(),
    UncategorizableRule(),
    TenantRefLeakRule(),
)


def rule_ids() -> Tuple[str, ...]:
    """The stable ids accepted by ``# repro: ignore[...]``."""
    return tuple(rule.id for rule in ALL_RULES)
