"""Static partition linter and policy verifier for host programs.

``repro.staticcheck`` is the first component of the reproduction that
reads *arbitrary user pipelines* rather than registered API specs: it
parses real host-program source with the stdlib ``ast`` module, builds a
PyCG-style call graph of framework API call sites (Section 4.2 of the
paper does this with PyCG for Python frameworks), infers the partition
plan those sites imply via the hybrid categorizer, replays the predicted
framework state machine, and verifies the partition policy *ahead of
enforcement* — so frozen-state writes, out-of-order phases, out-of-pool
syscalls, wrong-partition dereferences, dead API calls, and cross-tenant
reference leaks surface at lint time instead of as runtime kills.

Entry points:

* :func:`~repro.staticcheck.checker.run_check` — the library API;
* ``repro check <paths>`` — the CLI (text/JSON reporters, severity
  levels, ``# repro: ignore[rule]`` suppressions, nonzero exit on
  error-level findings).
"""

from repro.staticcheck.callgraph import CallGraphBuilder, ModuleSummary
from repro.staticcheck.checker import CheckResult, check_file, run_check
from repro.staticcheck.inference import FunctionReport, PartitionInferencer
from repro.staticcheck.report import (
    Finding,
    Severity,
    render_json,
    render_text,
)
from repro.staticcheck.rules import ALL_RULES, Rule, rule_ids

__all__ = [
    "ALL_RULES",
    "CallGraphBuilder",
    "CheckResult",
    "Finding",
    "FunctionReport",
    "ModuleSummary",
    "PartitionInferencer",
    "Rule",
    "Severity",
    "check_file",
    "render_json",
    "render_text",
    "rule_ids",
    "run_check",
]
