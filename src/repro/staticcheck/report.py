"""Finding model, suppression comments, and text/JSON reporters.

Severities are deliberately two-level: ``error`` findings are policy
violations the runtime would punish (kill, SIGSEGV, denied syscall) and
make ``repro check`` exit nonzero; ``warning`` findings flag code that
works but defeats the point of partitioning (redundant copies, dead
specs).  A finding is silenced by a ``# repro: ignore`` comment on its
own source line — bare to silence every rule, or ``ignore[rule-a,
rule-b]`` to silence specific rules.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """How bad a finding is (drives exit codes and reporter labels)."""

    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric order for sorting (errors first)."""
        return 0 if self is Severity.ERROR else 1


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    function: Optional[str] = None

    @property
    def location(self) -> str:
        """``path:line:col`` for reporters and stable sorting."""
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple[str, int, int, str, str, str]:
        """Deterministic reporting order — a *total* order.

        File, line, rule id first (what a reader scans by), then message
        and function so two findings of the same rule on the same line
        still order identically run to run.
        """
        return (
            self.path, self.line, self.col, self.rule,
            self.message, self.function or "",
        )


#: ``# repro: ignore`` or ``# repro: ignore[rule-a, rule-b]``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[a-z0-9_\-,\s]*)\])?"
)


def suppressions_on(source_line: str) -> Optional[FrozenSet[str]]:
    """The rules a source line suppresses.

    ``None`` means the line suppresses nothing; an *empty* frozenset
    means a bare ``# repro: ignore`` that silences every rule; otherwise
    the union of the rules named across every ``ignore[...]`` group on
    the line.  ``ignore[]`` with empty brackets names no rules and so
    suppresses nothing — it is not a bare ignore.
    """
    matches = list(_SUPPRESS_RE.finditer(source_line))
    if not matches:
        return None
    named: set = set()
    for match in matches:
        rules = match.group("rules")
        if rules is None:
            return frozenset()
        named.update(
            part.strip() for part in rules.split(",") if part.strip()
        )
    if not named:
        return None
    return frozenset(named)


def filter_suppressed(
    findings: Sequence[Finding], source_lines: Sequence[str]
) -> Tuple[List[Finding], int]:
    """Drop findings whose source line carries a matching suppression.

    Returns ``(kept, suppressed_count)``.
    """
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        line_text = (
            source_lines[finding.line - 1]
            if 0 < finding.line <= len(source_lines) else ""
        )
        rules = suppressions_on(line_text)
        if rules is not None and (not rules or finding.rule in rules):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def render_text(result) -> str:
    """Human-readable report of a :class:`~repro.staticcheck.checker.CheckResult`."""
    lines: List[str] = []
    for finding in sorted(result.findings, key=Finding.sort_key):
        scope = f" (in {finding.function})" if finding.function else ""
        lines.append(
            f"{finding.location}: {finding.severity.value}: "
            f"{finding.message}{scope} [{finding.rule}]"
        )
    noun = "file" if result.files_checked == 1 else "files"
    summary = (
        f"{result.errors} error(s), {result.warnings} warning(s) "
        f"in {result.files_checked} {noun}"
    )
    if result.suppressed:
        summary += f" ({result.suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result) -> str:
    """Machine-readable report (stable schema, version field first)."""
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "errors": result.errors,
        "warnings": result.warnings,
        "suppressed": result.suppressed,
        "findings": [
            {
                "rule": finding.rule,
                "severity": finding.severity.value,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "function": finding.function,
            }
            for finding in sorted(result.findings, key=Finding.sort_key)
        ],
    }
    return json.dumps(payload, indent=2)
