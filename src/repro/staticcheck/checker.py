"""File-level driver: discover sources, run every rule, collect findings.

``run_check`` is the library entry point behind ``repro check``: it
expands the given paths to ``.py`` files, builds each file's call-graph
summary, infers its partition plan, runs every rule, applies
``# repro: ignore`` suppressions, and returns one aggregated
:class:`CheckResult` whose :attr:`~CheckResult.exit_code` implements the
CLI contract (0 clean or warnings only, 1 on error findings).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.callgraph import CallGraphBuilder
from repro.staticcheck.dataflow import DataflowAnalysis
from repro.staticcheck.inference import PartitionInferencer
from repro.staticcheck.privileges import (
    AgentPrivilege,
    collect_privileges,
    merge_privileges,
)
from repro.staticcheck.report import Finding, Severity, filter_suppressed
from repro.staticcheck.rules import ALL_RULES, Rule, RuleContext


@dataclass
class CheckResult:
    """Aggregated outcome of one ``repro check`` run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Per-agent minimal privileges merged over every checked file
    #: (feeds ``--emit-minimal-pools`` and placement scoring).
    privileges: Dict[str, AgentPrivilege] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        """Number of error-severity findings."""
        return sum(
            1 for finding in self.findings
            if finding.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> int:
        """Number of warning-severity findings."""
        return sum(
            1 for finding in self.findings
            if finding.severity is Severity.WARNING
        )

    @property
    def exit_code(self) -> int:
        """0 when clean or warnings only; 1 when any error finding."""
        return 1 if self.errors else 0

    def by_rule(self) -> Dict[str, int]:
        """Finding counts per rule id (benchmark/report helper)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  Raises :class:`FileNotFoundError` for
    a path that does not exist (the CLI turns that into exit 2).
    """
    files: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            files.add(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name for name in dirnames
                    if not name.startswith(".") and name != "__pycache__"
                )
                for filename in filenames:
                    if filename.endswith(".py"):
                        files.add(os.path.join(root, filename))
        else:
            raise FileNotFoundError(path)
    return sorted(files)


def check_source(
    path: str,
    source: str,
    rules: Optional[Sequence[Rule]] = None,
    strict_pools: bool = False,
) -> Tuple[List[Finding], int]:
    """Check one in-memory source text; returns ``(findings, suppressed)``."""
    findings, suppressed, _ = _check_source(path, source, rules, strict_pools)
    return findings, suppressed


def _check_source(
    path: str,
    source: str,
    rules: Optional[Sequence[Rule]] = None,
    strict_pools: bool = False,
) -> Tuple[List[Finding], int, Dict[str, AgentPrivilege]]:
    """Full single-file pipeline: findings, suppressions, privileges."""
    builder = CallGraphBuilder(path, source)
    summary = builder.build()
    if summary.parse_error is not None:
        return (
            [Finding(
                rule="parse-error",
                severity=Severity.ERROR,
                path=path,
                line=1,
                col=0,
                message=f"cannot parse file: {summary.parse_error}",
            )],
            0,
            {},
        )
    inferencer = PartitionInferencer(summary)
    reports = inferencer.infer()
    try:
        dataflow = DataflowAnalysis(summary, inferencer).run()
    except RecursionError:
        # Pathologically deep ASTs: fall back to the per-site rules
        # rather than crashing the whole check run.
        dataflow = None
    privileges = collect_privileges(reports)
    context = RuleContext(
        path=path,
        summary=summary,
        reports=reports,
        unused_specs=inferencer.unused_specs(),
        dataflow=dataflow,
        privileges=privileges,
        strict_pools=strict_pools,
    )
    raw: List[Finding] = []
    seen: Set[Tuple[str, int, int, str]] = set()
    for rule in (rules if rules is not None else ALL_RULES):
        for finding in rule.check(context):
            # Inline splicing can surface the same event from both the
            # helper's own report and its caller's; report each source
            # location once per rule.
            key = (finding.rule, finding.line, finding.col, finding.message)
            if key in seen:
                continue
            seen.add(key)
            raw.append(finding)
    kept, suppressed = filter_suppressed(raw, source.splitlines())
    kept.sort(key=Finding.sort_key)
    return kept, suppressed, privileges


def check_file(
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    strict_pools: bool = False,
) -> CheckResult:
    """Check one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    findings, suppressed, privileges = _check_source(
        path, source, rules, strict_pools
    )
    return CheckResult(
        findings=findings,
        files_checked=1,
        suppressed=suppressed,
        privileges=privileges,
    )


def run_check(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    strict_pools: bool = False,
) -> CheckResult:
    """Check every ``.py`` file under ``paths`` and aggregate."""
    result = CheckResult()
    privilege_maps = []
    for path in iter_python_files(paths):
        single = check_file(path, rules, strict_pools)
        result.findings.extend(single.findings)
        result.files_checked += 1
        result.suppressed += single.suppressed
        privilege_maps.append(single.privileges)
    result.privileges = merge_privileges(privilege_maps)
    result.findings.sort(key=Finding.sort_key)
    return result
