"""Partition-plan inference over a module's extracted call graph.

For every function the :mod:`~repro.staticcheck.callgraph` builder
summarized, the inferencer resolves each framework call site to an
:class:`~repro.core.apitypes.APIType` — through the same hybrid
categorizer the runtime's offline phase uses — and replays the predicted
framework state machine over the call sequence.  The result is, per
function, the *partition plan the runtime would enforce*: which agent
each site executes in, where the state transitions fall, and which
annotated host variables are frozen at each point.  The rule classes in
:mod:`~repro.staticcheck.rules` read these reports; nothing here decides
severity or formats findings.

Resolution order for a site ``framework.api``:

1. the global framework registry via
   :func:`repro.core.hybrid.categorize_call_site` (static-then-dynamic
   hybrid verdict, cached per API);
2. an ``APISpec(...)`` literal declared in the analyzed module
   (``method == "declared"``) — host programs register custom
   frameworks at runtime, so the registry cannot know them at lint time;
3. the ``CallSite(..., api_type=...)`` literal for declarative sites;
4. otherwise a :class:`ResolutionFailure` (dead or uncategorizable).

Frameworks the module registers with *computed* spec names are skipped
entirely — the builder cannot enumerate their APIs, and guessing would
produce false dead-API findings (``examples/custom_framework.py``
registers two specs from a loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.apitypes import APIType, FrameworkState, api_type_of_state
from repro.core.hybrid import categorize_call_site
from repro.core.statemachine import next_state
from repro.errors import ReproError, UncategorizableAPI
from repro.staticcheck.callgraph import (
    CallEvent,
    FunctionTrace,
    HostOpEvent,
    InlineCallEvent,
    LocalSpec,
    MaterializeEvent,
    ModuleSummary,
    SharedStoreEvent,
    TraceEvent,
)

#: Agents only exist for the four concrete types; neutral calls run in
#: the agent of the current state, defaulting to processing — mirrors
#: ``FreePartGateway._route``.
_DEFAULT_AGENT = APIType.PROCESSING


@dataclass(frozen=True)
class ApiVerdict:
    """The resolved identity of one ``framework.api`` pair."""

    qualname: str
    api_type: APIType
    neutral: bool
    method: str  # "static" | "dynamic" | "declared"
    syscalls: Tuple[str, ...]
    init_syscalls: Tuple[str, ...]


@dataclass(frozen=True)
class ResolutionFailure:
    """A call site the hybrid categorizer could not type."""

    event: CallEvent
    kind: str  # "uncategorizable" | "dead"
    message: str


@dataclass(frozen=True)
class ResolvedCall:
    """One call site placed in the predicted state-machine trace."""

    event: CallEvent
    verdict: ApiVerdict
    state_before: FrameworkState
    state_after: FrameworkState

    @property
    def effective_type(self) -> APIType:
        """The type of the agent this site executes in."""
        if self.verdict.neutral or not self.verdict.api_type.is_concrete:
            return (
                api_type_of_state(self.state_before) or _DEFAULT_AGENT
            )
        return self.verdict.api_type

    @property
    def agent(self) -> str:
        """Predicted agent partition label (``APIType.value``)."""
        return self.effective_type.value


@dataclass(frozen=True)
class FrozenWriteHit:
    """A host write to a tag already frozen by a phase transition."""

    event: HostOpEvent
    tag: str
    alloc_state: FrameworkState
    write_state: FrameworkState


@dataclass
class FunctionReport:
    """The inferred partition plan of one function's trace."""

    trace: FunctionTrace
    steps: List[ResolvedCall] = field(default_factory=list)
    failures: List[ResolutionFailure] = field(default_factory=list)
    frozen_writes: List[FrozenWriteHit] = field(default_factory=list)
    shared_stores: List[SharedStoreEvent] = field(default_factory=list)

    @property
    def final_state(self) -> FrameworkState:
        """The framework state after the last resolved call."""
        if self.steps:
            return self.steps[-1].state_after
        return FrameworkState.INITIALIZATION

    def agents_used(self) -> Set[str]:
        """Every agent partition this function's plan touches."""
        return {step.agent for step in self.steps}


class PartitionInferencer:
    """Resolve and replay every function trace of one module summary."""

    #: Inline-splice depth bound (recursion / helper chains).
    MAX_DEPTH = 4

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        self._verdicts: Dict[
            Tuple[str, str],
            Union[ApiVerdict, Tuple[str, str], None],
        ] = {}
        #: bare name → qualname for inline-splice lookup.
        self._by_name: Dict[str, str] = {}
        for qualname in summary.functions:
            bare = qualname.rsplit(".", 1)[-1]
            self._by_name.setdefault(bare, qualname)
        self._called_keys: Set[Tuple[str, str]] = set()

    # -- public API ----------------------------------------------------

    def infer(self) -> Dict[str, FunctionReport]:
        """Produce a :class:`FunctionReport` per summarized function."""
        reports: Dict[str, FunctionReport] = {}
        for qualname, trace in self.summary.functions.items():
            reports[qualname] = self._infer_function(trace)
        return reports

    def resolve_event(
        self, event: CallEvent
    ) -> Union[ApiVerdict, ResolutionFailure, None]:
        """Public resolution entry point for the dataflow pass.

        Both passes must agree on what a call site *is* — same registry,
        same in-file specs, same declared fallbacks — so the taint
        analysis resolves through the inferencer instead of duplicating
        the lookup order.
        """
        return self._resolve(event)

    def unused_specs(self) -> List[LocalSpec]:
        """In-file API specs never referenced by any call site.

        Only meaningful for modules that *have* call sites — a library
        module that declares specs for other modules to call is not a
        dead-API finding.  Call after :meth:`infer`.
        """
        if not self._called_keys:
            return []
        return [
            spec
            for key, spec in sorted(self.summary.local_specs.items())
            if key not in self._called_keys
        ]

    # -- resolution ----------------------------------------------------

    def _resolve(
        self, event: CallEvent
    ) -> Union[ApiVerdict, ResolutionFailure, None]:
        """Type one call site; ``None`` means "skip, cannot be checked"."""
        key = (event.framework, event.api)
        self._called_keys.add(key)
        cached = self._verdicts.get(key, "miss")
        if cached != "miss":
            if isinstance(cached, ApiVerdict):
                return self._with_declared_fallback(event, cached)
            fallback = self._with_declared_fallback(event, None)
            if fallback is not None or cached is None:
                return fallback
            kind, message = cached
            return ResolutionFailure(event=event, kind=kind, message=message)

        outcome: Union[ApiVerdict, Tuple[str, str], None]
        try:
            entry = categorize_call_site(event.framework, event.api)
            outcome = ApiVerdict(
                qualname=entry.qualname,
                api_type=entry.api_type,
                neutral=entry.neutral,
                method=entry.method,
                syscalls=entry.syscalls,
                init_syscalls=entry.init_syscalls,
            )
        except UncategorizableAPI as exc:
            outcome = ("uncategorizable", str(exc))
        except ReproError as exc:
            outcome = self._resolve_locally(event, key, str(exc))
        self._verdicts[key] = outcome

        if isinstance(outcome, ApiVerdict):
            return self._with_declared_fallback(event, outcome)
        if outcome is None:
            return self._with_declared_fallback(event, None)
        kind, message = outcome
        fallback = self._with_declared_fallback(event, None)
        if fallback is not None:
            return fallback
        return ResolutionFailure(event=event, kind=kind, message=message)

    def _resolve_locally(
        self, event: CallEvent, key: Tuple[str, str], registry_error: str
    ) -> Union[ApiVerdict, Tuple[str, str], None]:
        """Fall back to in-file specs when the registry has no entry."""
        local = self.summary.local_specs.get(key)
        if local is not None:
            if local.api_type is None and not local.neutral:
                return (
                    "uncategorizable",
                    f"{local.qualname}: in-file spec declares no literal "
                    "APIType ground truth and is not neutral",
                )
            return ApiVerdict(
                qualname=local.qualname,
                api_type=local.api_type or APIType.NEUTRAL,
                neutral=local.neutral,
                method="declared",
                syscalls=local.syscalls,
                init_syscalls=local.init_syscalls,
            )
        if event.framework in self.summary.dynamic_spec_frameworks:
            # The module registers this framework with computed spec
            # names; its API surface is unknowable statically.
            return None
        if event.framework in self.summary.local_frameworks:
            return (
                "dead",
                f"{event.framework}.{event.api}: framework is registered "
                "in this module but declares no such API",
            )
        return (
            "dead",
            f"{event.framework}.{event.api}: dead call site "
            f"({registry_error})",
        )

    @staticmethod
    def _with_declared_fallback(
        event: CallEvent, verdict: Optional[ApiVerdict]
    ) -> Optional[ApiVerdict]:
        """Prefer a real verdict; fall back to a CallSite's declared type."""
        if verdict is not None:
            return verdict
        if event.declared_only and event.declared_type is not None:
            return ApiVerdict(
                qualname=f"{event.framework}.{event.api}",
                api_type=event.declared_type,
                neutral=not event.declared_type.is_concrete,
                method="declared",
                syscalls=(),
                init_syscalls=(),
            )
        return None

    # -- trace flattening ----------------------------------------------

    def _flatten(
        self, trace: FunctionTrace, depth: int, active: Set[str]
    ) -> List[TraceEvent]:
        """Trace events with module-local gateway calls spliced inline."""
        events: List[TraceEvent] = []
        for event in trace.events:
            if isinstance(event, InlineCallEvent):
                qualname = self._by_name.get(event.callee)
                if (
                    qualname is None
                    or qualname in active
                    or depth >= self.MAX_DEPTH
                ):
                    continue
                callee = self.summary.functions.get(qualname)
                if callee is None:
                    continue
                active.add(qualname)
                events.extend(self._flatten(callee, depth + 1, active))
                active.discard(qualname)
            else:
                events.append(event)
        return events

    # -- replay --------------------------------------------------------

    def _infer_function(self, trace: FunctionTrace) -> FunctionReport:
        report = FunctionReport(trace=trace)
        state = FrameworkState.INITIALIZATION
        tag_state: Dict[str, FrameworkState] = {}
        frozen: Set[str] = set()

        for event in self._flatten(trace, 0, {trace.qualname}):
            if isinstance(event, CallEvent):
                resolved = self._resolve(event)
                if resolved is None:
                    continue
                if isinstance(resolved, ResolutionFailure):
                    report.failures.append(resolved)
                    continue
                new_state = next_state(
                    state, resolved.api_type, resolved.neutral
                )
                after = new_state if new_state is not None else state
                if new_state is not None:
                    # Leaving `state` freezes every annotated tag whose
                    # buffer was defined during it (Fig. 3 / the
                    # runtime's ``_protect_state(previous)``).
                    for tag, alloc_state in tag_state.items():
                        if (
                            alloc_state is state
                            and tag in self.summary.annotated_tags
                        ):
                            frozen.add(tag)
                report.steps.append(ResolvedCall(
                    event=event,
                    verdict=resolved,
                    state_before=state,
                    state_after=after,
                ))
                state = after
            elif isinstance(event, HostOpEvent):
                if event.op == "alloc":
                    # host_alloc binds the tag to a *fresh* writable
                    # buffer in the current state (re-allocation is the
                    # sanctioned way to update data across phases).
                    tag_state[event.tag] = state
                    frozen.discard(event.tag)
                elif event.op == "write":
                    if event.tag in frozen:
                        report.frozen_writes.append(FrozenWriteHit(
                            event=event,
                            tag=event.tag,
                            alloc_state=tag_state.get(
                                event.tag, FrameworkState.INITIALIZATION
                            ),
                            write_state=state,
                        ))
                    tag_state.setdefault(event.tag, state)
            elif isinstance(event, SharedStoreEvent):
                report.shared_stores.append(event)
            elif isinstance(event, MaterializeEvent):
                pass  # value tracking already happened in the builder
        return report
