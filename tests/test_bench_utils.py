"""Bench harness utilities: runner, table rendering, JSON export."""

import json

import pytest

from repro.apps.base import Workload
from repro.apps.suite import make_app
from repro.bench.runner import (
    OverheadRow,
    average_overhead,
    overhead_for_sample,
    overhead_sweep,
    run_under,
    save_overhead_rows,
    save_reports,
)
from repro.bench.tables import render_bars, render_series, render_table

WORKLOAD = Workload(items=1, image_size=16)


class TestRunner:
    def test_run_under_native(self):
        report = run_under(make_app(4), "none", WORKLOAD)
        assert not report.failed
        assert report.processes == 1

    def test_run_under_baseline(self):
        report = run_under(make_app(4), "lib_entire", WORKLOAD)
        assert report.processes == 2

    def test_overhead_for_sample_positive(self):
        row = overhead_for_sample(4, workload=WORKLOAD)
        assert row.app_name == "lbpcascade_anime"
        assert row.overhead_percent > 0
        assert row.normalized_runtime > 1.0

    def test_overhead_sweep_and_average(self):
        rows = overhead_sweep((4, 6), workload=WORKLOAD)
        assert [r.sample_id for r in rows] == [4, 6]
        assert average_overhead(rows) == pytest.approx(
            sum(r.overhead_percent for r in rows) / 2
        )

    def test_average_of_empty(self):
        assert average_overhead([]) == 0.0

    def test_overhead_row_zero_baseline(self):
        row = OverheadRow(1, "x", 0.0, 1.0)
        assert row.overhead_percent == 0.0
        assert row.normalized_runtime == 1.0


class TestJsonExport:
    def test_report_to_dict_round_trips_json(self):
        report = run_under(make_app(4), "freepart", WORKLOAD)
        payload = report.to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["app_name"] == "lbpcascade_anime"
        assert decoded["processes"] == 5
        assert "result" not in decoded

    def test_save_reports(self, tmp_path):
        report = run_under(make_app(4), "none", WORKLOAD)
        path = save_reports([report], str(tmp_path / "reports.json"))
        loaded = json.loads(open(path).read())
        assert len(loaded) == 1
        assert loaded[0]["gateway"] == "NativeGateway"

    def test_save_overhead_rows(self, tmp_path):
        rows = overhead_sweep((4,), workload=WORKLOAD)
        path = save_overhead_rows(rows, str(tmp_path / "sweep.json"))
        loaded = json.loads(open(path).read())
        assert loaded[0]["sample_id"] == 4
        assert loaded[0]["overhead_percent"] > 0


class TestTables:
    def test_render_table_alignment_and_note(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], ["xx", 3]],
                            note="hello")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "2.50" in text
        assert "note: hello" in text

    def test_render_series(self):
        text = render_series("S", [1, 2], ["a", "b"], x_label="k", y_label="v")
        assert "k" in text and "v" in text
        assert text.count("\n") == 5

    def test_render_bars_scaling(self):
        text = render_bars("B", {"big": 100, "small": 1, "zero": 0}, width=10)
        big_line = next(l for l in text.splitlines() if l.startswith("big"))
        small_line = next(l for l in text.splitlines() if l.startswith("small"))
        zero_line = next(l for l in text.splitlines() if l.startswith("zero"))
        assert big_line.count("#") == 10
        assert small_line.count("#") == 1
        assert zero_line.count("#") == 0

    def test_render_bars_empty(self):
        assert render_bars("B", {}) == "B"
