"""The 'cluster' chaos target: node failures under the four invariants."""

import pytest

from repro.faults.campaign import ChaosSettings, run_campaign, run_target
from repro.faults.plan import FaultPlan, FaultRates


def _settings(**overrides):
    base = dict(target="cluster", seed=3, campaign=4, fault_rate=0.04,
                items=2, image_size=8, nodes=3)
    base.update(overrides)
    return ChaosSettings(**base)


def test_baseline_run_is_clean():
    outcome = run_target("cluster", _settings(), None)
    assert outcome.ok
    assert outcome.outputs  # every tenant's files, merged across nodes
    assert outcome.frozen_writes == 0
    assert outcome.stale_refs == 0
    assert outcome.fault_ids == ()


def test_campaign_invariants_hold():
    report = run_campaign(_settings())
    assert len(report.schedules) == 4
    assert report.passed, [
        (s.index, s.invariants) for s in report.schedules
    ]


def test_campaign_digest_is_rerun_stable():
    settings = _settings()
    assert run_campaign(settings).digest() == \
        run_campaign(settings).digest()


def test_node_failures_appear_and_are_survived():
    # A hot enough rate that node failures actually fire across the
    # campaign; every schedule must still pass all four invariants.
    report = run_campaign(_settings(seed=11, campaign=6, fault_rate=0.08))
    kinds = {}
    for schedule in report.schedules:
        for kind, count in schedule.injected.items():
            kinds[kind] = kinds.get(kind, 0) + count
    assert kinds.get("node-failure", 0) > 0
    assert report.passed, [
        (s.index, s.invariants) for s in report.schedules
    ]


def test_faulted_outcome_observes_every_fault():
    settings = _settings(seed=11, fault_rate=0.08)
    plan = FaultPlan(
        seed=settings.schedule_seed(0),
        rates=FaultRates().scaled(settings.fault_rate),
    )
    outcome = run_target("cluster", settings, plan)
    assert set(outcome.fault_ids) <= set(outcome.observed_fault_ids)


def test_nodes_field_lands_in_report_dict():
    report = run_campaign(_settings(campaign=1))
    assert report.to_dict()["nodes"] == 3


def test_unknown_target_mentions_cluster():
    with pytest.raises(ValueError, match="cluster"):
        run_target("warp-drive", _settings(), None)
