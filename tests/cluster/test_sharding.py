"""Dataset partitioners and the deterministic shard manifest."""

import pytest

from repro.cluster import (
    ClusterKernel,
    DirectoryPartitioner,
    HashPartitioner,
    LambdaPartitioner,
    ObjectPartitioner,
    make_partitioner,
    shard_dataset,
    stable_hash,
)

PATHS = [
    "/data/tenant-0/in-0.png",
    "/data/tenant-0/in-1.png",
    "/data/tenant-1/in-0.png",
    "/data/tenant-2/in-0.png",
    "/data/tenant-2/in-1.png",
    "/data/tenant-2/in-2.png",
]


class TestDirectoryPartitioner:
    def test_one_shard_per_directory(self):
        manifest = DirectoryPartitioner().split(PATHS)
        assert len(manifest.shards) == 3
        assert [shard.key for shard in manifest.shards] == [
            "/data/tenant-0", "/data/tenant-1", "/data/tenant-2",
        ]
        assert manifest.item_count == len(PATHS)

    def test_rootless_item_lands_in_root_shard(self):
        manifest = DirectoryPartitioner().split(["plain.png"])
        assert manifest.shards[0].key == "/"

    def test_shard_of_and_node_of(self):
        manifest = DirectoryPartitioner().split(PATHS)
        assert manifest.shard_of(PATHS[3]).key == "/data/tenant-2"
        assert manifest.node_of(PATHS[0], 2) == 0
        assert manifest.node_of(PATHS[3], 2) == 0  # shard 2 % 2 nodes
        with pytest.raises(ValueError):
            manifest.shard_of("/nope.png")


class TestObjectPartitioner:
    def test_groups_consecutive_items(self):
        manifest = ObjectPartitioner(objects_per_shard=2).split(PATHS)
        assert len(manifest.shards) == 3
        assert manifest.shards[0].items == tuple(PATHS[:2])
        assert manifest.shards[2].items == tuple(PATHS[4:])
        assert manifest.partitioner == "object:2"

    def test_rejects_nonpositive_group(self):
        with pytest.raises(ValueError):
            ObjectPartitioner(objects_per_shard=0)


class TestHashPartitioner:
    def test_stable_hash_is_process_independent(self):
        # sha256-derived, so a literal value is safe to pin.
        assert stable_hash("x") == stable_hash("x")
        assert stable_hash("x") != stable_hash("y")

    def test_buckets_cover_all_items(self):
        manifest = HashPartitioner(shards=4).split(PATHS)
        assert manifest.item_count == len(PATHS)
        assert manifest.partitioner == "hash:4"
        for shard in manifest.shards:
            assert shard.key.startswith("bucket-")

    def test_empty_buckets_omitted(self):
        manifest = HashPartitioner(shards=64).split(PATHS[:2])
        assert len(manifest.shards) <= 2


class TestLambdaPartitioner:
    def test_custom_key_function(self):
        splitter = LambdaPartitioner(
            lambda item: item.rsplit("-", 1)[-1], label="by-suffix"
        )
        manifest = splitter.split(PATHS)
        assert manifest.partitioner == "by-suffix"
        keys = {shard.key for shard in manifest.shards}
        assert keys == {"0.png", "1.png", "2.png"}


class TestManifest:
    def test_json_and_digest_are_stable(self):
        first = DirectoryPartitioner().split(PATHS)
        second = DirectoryPartitioner().split(PATHS)
        assert first.json() == second.json()
        assert first.digest() == second.digest()

    def test_digest_sees_partitioner_label(self):
        by_dir = DirectoryPartitioner().split(PATHS)
        by_object = ObjectPartitioner(objects_per_shard=6).split(PATHS)
        assert by_dir.digest() != by_object.digest()


class TestMakePartitioner:
    def test_specs_parse(self):
        assert isinstance(make_partitioner("directory"),
                          DirectoryPartitioner)
        assert make_partitioner("object:3").objects_per_shard == 3
        assert make_partitioner("hash:16").shards == 16
        assert make_partitioner("hash", default_shards=5).shards == 5

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            make_partitioner("zigzag")
        with pytest.raises(ValueError):
            make_partitioner("directory:2")


def test_shard_dataset_places_items_on_owner_nodes():
    cluster = ClusterKernel(nodes=2)
    manifest = DirectoryPartitioner().split(PATHS)
    payloads = {path: f"payload:{path}" for path in PATHS}
    assignment = shard_dataset(cluster, manifest, payloads)
    assert assignment == {0: 0, 1: 1, 2: 0}
    for shard in manifest.shards:
        node = cluster.node(assignment[shard.index])
        for item in shard.items:
            assert node.kernel.fs.read_file(item) == payloads[item]
