"""Placement policy: affinity keeps LDC derefs node-local."""

import os

import numpy as np
import pytest

from repro.cluster import (
    ClusterKernel,
    Placement,
    affinity_groups,
    affinity_placement,
    check_placement,
    inferred_affinity_groups,
    placement_violations,
    spread_placement,
)
from repro.cluster.gateway import ClusterGateway
from repro.cluster.trace import cluster_rollup
from repro.errors import PlacementError
from repro.serve.bench import standard_pipeline

FIXTURE = os.path.join(
    os.path.dirname(os.path.dirname(__file__)),
    "fixtures", "staticcheck", "phase_order_ok.py",
)


class FakeReport:
    def __init__(self, *agents):
        self._agents = set(agents)

    def agents_used(self):
        return self._agents


class TestPlacement:
    def test_node_for_and_labels_on(self):
        placement = Placement.of({"data_loading": 0, "storing": 1})
        assert placement.node_for("data_loading") == 0
        assert placement.labels_on(1) == ["storing"]
        assert placement.nodes_used() == [0, 1]

    def test_unplaced_label_raises(self):
        placement = Placement.of({"data_loading": 0})
        with pytest.raises(PlacementError):
            placement.node_for("storing")


class TestAffinityGroups:
    def test_transitive_merge(self):
        groups = affinity_groups([
            FakeReport("data_loading", "data_processing"),
            FakeReport("data_processing", "storing"),
            FakeReport("visualizing"),
        ])
        assert groups == [
            frozenset({"data_loading", "data_processing", "storing"}),
            frozenset({"visualizing"}),
        ]

    def test_order_independent(self):
        reports = [
            FakeReport("storing", "data_processing"),
            FakeReport("data_loading", "data_processing"),
        ]
        assert affinity_groups(reports) == affinity_groups(reports[::-1])

    def test_inferred_from_staticcheck_fixture(self):
        groups = inferred_affinity_groups([FIXTURE])
        assert frozenset(
            {"data_loading", "data_processing", "storing"}
        ) in groups


class TestCheckPlacement:
    GROUPS = [frozenset({"data_loading", "data_processing"})]

    def test_co_located_group_passes(self):
        placement = Placement.of(
            {"data_loading": 1, "data_processing": 1, "storing": 0}
        )
        check_placement(placement, self.GROUPS)

    def test_split_group_raises_with_description(self):
        placement = Placement.of(
            {"data_loading": 0, "data_processing": 1}
        )
        with pytest.raises(PlacementError) as excinfo:
            check_placement(placement, self.GROUPS)
        assert "data_loading" in str(excinfo.value)
        assert "framed inter-node byte copy" in str(excinfo.value)
        assert len(placement_violations(placement, self.GROUPS)) == 1

    def test_allow_split_opts_into_the_wire(self):
        placement = Placement.of(
            {"data_loading": 0, "data_processing": 1}
        )
        check_placement(placement, self.GROUPS, allow_split=True)


def _run_pipeline(placement=None, nodes=2):
    cluster = ClusterKernel(nodes=nodes)
    cluster.enable_tracing()
    gateway = ClusterGateway(cluster, placement=placement)
    rng = np.random.default_rng(0)
    image = rng.normal(size=(16, 16))
    for node in cluster.nodes:
        node.kernel.fs.write_file("/data/in.png", image)
    results = gateway.run(standard_pipeline("/data/in.png", "/out/out.png"))
    gateway.shutdown()
    return cluster, gateway, results


class TestClusterGateway:
    def test_affinity_placement_has_zero_cross_node_derefs(self):
        cluster, gateway, results = _run_pipeline()
        assert gateway.placement == affinity_placement(gateway.plan)
        assert len(results) == 4
        assert cluster.accounting.cross_node_derefs == 0
        assert cluster.accounting.inter_node_messages == 0
        # The whole pipeline ran on node 0; node 1 stayed idle.
        assert cluster.node(1).kernel.clock.now_ns == 0
        out = cluster.node(0).kernel.fs.read_file("/out/out.png")
        assert out is not None

    def test_spread_placement_pays_counted_derefs(self):
        cluster = ClusterKernel(nodes=2)
        probe = ClusterGateway(cluster)  # just to borrow the plan
        placement = spread_placement(probe.plan, 2)
        cluster, gateway, results = _run_pipeline(placement=placement)
        assert cluster.accounting.cross_node_derefs > 0
        assert cluster.accounting.cross_node_deref_bytes > 0
        derefs = cluster.node(
            gateway.node_for_call("opencv", "GaussianBlur")
        ).kernel.metrics.counter("cluster.cross_node_derefs").value
        assert derefs > 0
        cluster.verify_accounting()

    def test_spread_derefs_show_in_the_rollup(self):
        cluster = ClusterKernel(nodes=2)
        probe = ClusterGateway(cluster)
        placement = spread_placement(probe.plan, 2)
        cluster, _, _ = _run_pipeline(placement=placement)
        rows = {row.category: row for row in cluster_rollup(cluster)}
        assert "inter_node" in rows
        assert rows["inter_node"].self_ns > 0
        assert rows["inter_node"].spans >= 2  # send + recv per crossing

    def test_affinity_run_outputs_match_spread_run(self):
        _, _, affinity_results = _run_pipeline()
        cluster = ClusterKernel(nodes=2)
        probe = ClusterGateway(cluster)
        placement = spread_placement(probe.plan, 2)
        spread_cluster, spread_gateway, spread_results = _run_pipeline(
            placement=placement
        )
        # Same pipeline, same inputs: crossing nodes must not change
        # the data, only the accounting.
        store_node = spread_gateway.node_for_call("opencv", "imwrite")
        affinity_out = _run_pipeline()[0].node(0).kernel.fs.read_file(
            "/out/out.png"
        )
        spread_out = spread_cluster.node(store_node).kernel.fs.read_file(
            "/out/out.png"
        )
        np.testing.assert_array_equal(
            np.asarray(affinity_out.data), np.asarray(spread_out.data)
        )

    def test_placement_on_missing_node_rejected_up_front(self):
        cluster = ClusterKernel(nodes=2)
        probe = ClusterGateway(cluster)
        bad = Placement.of(
            {partition.label: 7 for partition in probe.plan.partitions}
        )
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            ClusterGateway(ClusterKernel(nodes=2), placement=bad)
