"""Privilege-aware placement: exposure scoring and affinity interplay."""

import pytest

from repro.core.apitypes import APIType
from repro.errors import PlacementError
from repro.cluster.placement import (
    exposure_by_node,
    privilege_placement,
)
from repro.staticcheck.privileges import AgentPrivilege, privileges_for_app


def privilege(label, api_type, syscalls):
    return AgentPrivilege(
        label=label, api_type=api_type, syscalls=set(syscalls)
    )


THREE = {
    "data_loading": privilege(
        "data_loading", APIType.LOADING, {"openat", "read", "brk"}
    ),
    "data_processing": privilege(
        "data_processing", APIType.PROCESSING, {"brk", "mmap"}
    ),
    "visualizing": privilege(
        "visualizing", APIType.VISUALIZING, {"write", "poll"}
    ),
}


def test_single_node_gets_everything():
    placement = privilege_placement(THREE, 1)
    assert placement.nodes_used() == [0]


def test_spreading_lowers_worst_node_exposure():
    one = privilege_placement(THREE, 1)
    two = privilege_placement(THREE, 2)
    exposure_one = exposure_by_node(one, THREE)
    exposure_two = exposure_by_node(two, THREE)
    assert max(exposure_two.values()) < max(exposure_one.values())
    assert len(two.nodes_used()) == 2


def test_placement_is_deterministic():
    first = privilege_placement(THREE, 2)
    second = privilege_placement(dict(reversed(THREE.items())), 2)
    assert first.assignments == second.assignments


def test_affinity_group_stays_whole():
    group = frozenset({"data_loading", "visualizing"})
    placement = privilege_placement(THREE, 2, groups=[group])
    assert (
        placement.node_for("data_loading")
        == placement.node_for("visualizing")
    )


def test_rejects_zero_nodes():
    with pytest.raises(PlacementError):
        privilege_placement(THREE, 0)


def test_exposure_counts_budget_unions_not_sums():
    # Overlapping budgets on one node must not double-count.
    overlapping = {
        "a": privilege("a", APIType.PROCESSING, {"brk", "mmap"}),
        "b": privilege("b", APIType.PROCESSING, {"brk", "mmap"}),
    }
    placement = privilege_placement(overlapping, 1)
    exposure = exposure_by_node(placement, overlapping)
    # brk + mmap + the init grace syscalls, once each.
    assert exposure[0] == 4


def test_app_inferred_privileges_drive_placement():
    from repro.apps.suite import make_app

    privileges = privileges_for_app(make_app(8))
    assert len(privileges) >= 2
    placement = privilege_placement(privileges, 2)
    exposure = exposure_by_node(placement, privileges)
    assert set(placement.to_dict()) == set(privileges)
    assert sum(1 for _ in exposure) == len(placement.nodes_used())
