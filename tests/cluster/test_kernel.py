"""ClusterKernel: per-node clocks, costed links, exact accounting."""

import numpy as np
import pytest

from repro.cluster import ClusterKernel, ClusterTopology, InterNodeLink
from repro.errors import AccountingError, ClusterError, NodeDown


@pytest.fixture
def cluster():
    return ClusterKernel(nodes=3)


class TestTopology:
    def test_default_link_everywhere(self):
        topology = ClusterTopology(nodes=4)
        assert topology.link_between(0, 3) is topology.link
        assert topology.link_between(2, 1) is topology.link

    def test_override_takes_precedence(self):
        fast = InterNodeLink(latency_ns=10, bandwidth_ns_per_byte=0.01,
                             per_message_ns=5)
        topology = ClusterTopology(nodes=2, overrides={(0, 1): fast})
        assert topology.link_between(0, 1) is fast
        assert topology.link_between(1, 0) is topology.link

    def test_transmit_scales_with_bytes(self):
        link = InterNodeLink(bandwidth_ns_per_byte=0.5)
        assert link.transmit_ns(1000) == 500
        assert link.transmit_ns(2000) > link.transmit_ns(1000)

    def test_bad_override_endpoint_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology(nodes=2, overrides={(0, 5): InterNodeLink()})


class TestNodes:
    def test_independent_clocks(self, cluster):
        cluster.node(0).kernel.clock.advance(100)
        assert cluster.node(1).kernel.clock.now_ns == 0
        assert cluster.makespan_ns == 100

    def test_makespan_is_max_not_sum(self, cluster):
        cluster.node(0).kernel.clock.advance(100)
        cluster.node(1).kernel.clock.advance(250)
        cluster.node(2).kernel.clock.advance(40)
        assert cluster.makespan_ns == 250

    def test_node_bounds_checked(self, cluster):
        with pytest.raises(ClusterError):
            cluster.node(3)
        with pytest.raises(ClusterError):
            cluster.node(-1)

    def test_needs_at_least_one_node(self):
        with pytest.raises(ClusterError):
            ClusterKernel(nodes=0)

    def test_topology_width_must_match(self):
        with pytest.raises(ClusterError):
            ClusterKernel(nodes=3, topology=ClusterTopology(nodes=2))


class TestTransfer:
    def test_charges_sender_and_records_lane(self, cluster):
        payload = np.zeros((64, 64))
        nbytes = cluster.transfer(0, 1, payload)
        assert nbytes == payload.nbytes
        assert cluster.node(0).kernel.clock.now_ns > 0
        assert cluster.accounting.inter_node_messages == 1
        assert cluster.accounting.inter_node_bytes == nbytes
        assert cluster.accounting.per_link[(0, 1)] == [1, nbytes]

    def test_receiver_catches_up_to_arrival(self, cluster):
        cluster.transfer(0, 1, b"x" * 100)
        link = cluster.topology.link_between(0, 1)
        # Receiver was at 0, so it must wait out latency + transmit
        # past the sender's send-completion time.
        assert (cluster.node(1).kernel.clock.now_ns
                >= cluster.node(0).kernel.clock.now_ns + link.latency_ns)

    def test_receiver_already_past_arrival_waits_zero(self, cluster):
        cluster.node(1).kernel.clock.advance(10**12)
        before = cluster.node(1).kernel.clock.now_ns
        cluster.transfer(0, 1, b"x")
        assert cluster.node(1).kernel.clock.now_ns == before

    def test_same_node_transfer_rejected(self, cluster):
        with pytest.raises(ClusterError):
            cluster.transfer(1, 1, b"x")

    def test_deref_counted_separately(self, cluster):
        cluster.transfer(0, 1, b"x" * 10, deref=True)
        cluster.transfer(0, 1, b"x" * 10)
        assert cluster.accounting.cross_node_derefs == 1
        assert cluster.accounting.cross_node_deref_bytes == 10
        assert cluster.accounting.inter_node_messages == 2

    def test_transfer_emits_inter_node_spans(self, cluster):
        cluster.enable_tracing()
        cluster.transfer(0, 2, b"x" * 100, kind="ldc-deref", deref=True)
        send = [s for s in cluster.node(0).kernel.tracer.closed_spans()
                if s.category == "inter_node"]
        recv = [s for s in cluster.node(2).kernel.tracer.closed_spans()
                if s.category == "inter_node"]
        assert [s.name for s in send] == ["inter_node_send"]
        assert [s.name for s in recv] == ["inter_node_recv"]
        assert send[0].attrs["peer"] == 2 and recv[0].attrs["peer"] == 0
        assert send[0].attrs["deref"] is True

    def test_transfer_to_dead_node_raises(self, cluster):
        cluster.fail_node(1)
        with pytest.raises(NodeDown):
            cluster.transfer(0, 1, b"x")
        with pytest.raises(NodeDown):
            cluster.transfer(1, 0, b"x")


class TestFailure:
    def test_fail_node_crashes_its_processes(self, cluster):
        node = cluster.node(1)
        process = node.kernel.spawn("agent", role="agent")
        cluster.fail_node(1)
        assert not node.alive
        assert not process.alive
        assert cluster.node_failures == 1
        assert [n.index for n in cluster.living()] == [0, 2]

    def test_fail_node_twice_raises(self, cluster):
        cluster.fail_node(1)
        with pytest.raises(NodeDown):
            cluster.fail_node(1)

    def test_failure_traced_on_victim(self, cluster):
        cluster.enable_tracing()
        cluster.fail_node(2)
        instants = [s for s in cluster.node(2).kernel.tracer.closed_spans()
                    if s.name == "node_failure"]
        assert len(instants) == 1
        assert instants[0].category == "cluster"

    def test_maybe_fail_never_kills_last_node(self):
        class KillEverything:
            def node_failure(self, candidates):
                return candidates[0]

        cluster = ClusterKernel(nodes=3)
        cluster.injectors = {
            node.index: type("I", (), {
                "node_failure": lambda self, c: c[0],
            })()
            for node in cluster.nodes
        }
        assert cluster.maybe_fail_node() == 0
        assert cluster.maybe_fail_node() == 1
        assert cluster.maybe_fail_node() is None
        assert len(cluster.living()) == 1

    def test_maybe_fail_without_plan_is_noop(self, cluster):
        assert cluster.maybe_fail_node() is None
        assert cluster.node_failures == 0


class TestAccounting:
    def test_verify_passes_after_transfers(self, cluster):
        cluster.transfer(0, 1, b"x" * 100)
        cluster.transfer(1, 2, b"y" * 50, deref=True)
        cluster.verify_accounting()

    def test_verify_names_the_off_lane(self, cluster):
        cluster.transfer(0, 1, b"x" * 100)
        cluster.accounting.inter_node_bytes += 7
        with pytest.raises(AccountingError) as excinfo:
            cluster.verify_accounting()
        assert "inter_node.bytes" in str(excinfo.value)
        assert "+7" in str(excinfo.value)

    def test_summary_reconciles_and_reports(self, cluster):
        cluster.transfer(0, 1, b"x" * 100)
        summary = cluster.summary()
        assert summary["nodes"] == 3
        assert summary["living_nodes"] == 3
        assert summary["inter_node"]["inter_node.messages"] == 1
        assert summary["inter_node"]["inter_node.links"] == 1
        assert len(summary["per_node"]) == 3

    def test_cluster_bytes_include_node_and_link_lanes(self, cluster):
        kernel = cluster.node(0).kernel
        sender = kernel.spawn("a", role="agent")
        receiver = kernel.spawn("b", role="agent")
        kernel.transfer(sender, receiver, b"z" * 200)
        cluster.transfer(0, 1, b"x" * 100)
        assert cluster.data_transferred_bytes == (
            kernel.data_transferred_bytes + 100
        )
        cluster.verify_accounting()
