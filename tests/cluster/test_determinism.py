"""Byte-identical cluster artifacts: traces, manifests, bench JSON."""

import json

from repro.cluster.bench import (
    SingleNodeFailurePlan,
    run_cluster_benchmark,
    run_cluster_config,
)
from repro.cluster.kernel import ClusterKernel
from repro.cluster.serve import ClusterServer
from repro.cluster.sharding import DirectoryPartitioner
from repro.cluster.trace import render_cluster_trace
from repro.faults.plan import FaultPlan, FaultRates
from repro.obs.export import validate_chrome_trace
from repro.serve.bench import standard_pipeline

import numpy as np


def _traced_run(fault_plan=None):
    cluster = ClusterKernel(nodes=3)
    cluster.enable_tracing()
    if fault_plan is not None:
        cluster.inject_faults(fault_plan)
    server = ClusterServer(cluster=cluster, pool_size=2, batching=True)
    rng = np.random.default_rng(0)
    paths = [
        f"/data/tenant-{t}/in-{r}.png" for t in range(4) for r in range(2)
    ]
    payloads = {p: rng.normal(size=(8, 8)) for p in paths}
    manifest = DirectoryPartitioner().split(paths)
    server.load_dataset(manifest, payloads)
    for t in range(4):
        server.pin_tenant_to_item(
            f"tenant-{t}", f"/data/tenant-{t}/in-0.png"
        )
    for t in range(4):
        for r in range(2):
            server.submit(
                f"tenant-{t}",
                standard_pipeline(
                    f"/data/tenant-{t}/in-{r}.png",
                    f"/out/tenant-{t}/out-{r}.png",
                ),
            )
    server.drain()
    stats = server.stats()
    server.shutdown()
    return cluster, manifest, stats


def test_cluster_trace_and_manifest_byte_identical():
    first_cluster, first_manifest, _ = _traced_run()
    second_cluster, second_manifest, _ = _traced_run()
    assert render_cluster_trace(first_cluster) == \
        render_cluster_trace(second_cluster)
    assert first_manifest.json() == second_manifest.json()
    assert first_manifest.digest() == second_manifest.digest()


def test_cluster_trace_byte_identical_under_node_failure():
    first, _, first_stats = _traced_run(
        SingleNodeFailurePlan(victim=1, after=3)
    )
    second, _, second_stats = _traced_run(
        SingleNodeFailurePlan(victim=1, after=3)
    )
    assert first_stats["node_failures"] == 1
    assert render_cluster_trace(first) == render_cluster_trace(second)
    assert first_stats == second_stats


def test_cluster_trace_byte_identical_under_seeded_faults():
    def plan():
        return FaultPlan(seed=13, rates=FaultRates().scaled(0.05))

    first, _, first_stats = _traced_run(plan())
    second, _, second_stats = _traced_run(plan())
    assert render_cluster_trace(first) == render_cluster_trace(second)
    assert first_stats == second_stats


def test_merged_trace_validates_and_namespaces_nodes():
    cluster, _, _ = _traced_run()
    payload = json.loads(render_cluster_trace(cluster))
    assert validate_chrome_trace(payload) == []
    names = [
        event["args"]["name"] for event in payload["traceEvents"]
        if event["ph"] == "M"
    ]
    prefixes = {name.split(":", 1)[0] for name in names}
    assert {"node0", "node1", "node2"} <= prefixes


def test_bench_result_json_byte_identical():
    kwargs = dict(nodes=3, tenants=4, requests_per_tenant=2,
                  pool_size=2, image_size=8)
    first = json.dumps(run_cluster_benchmark(**kwargs), sort_keys=True)
    second = json.dumps(run_cluster_benchmark(**kwargs), sort_keys=True)
    assert first == second


def test_stats_identical_across_reruns_without_tracing():
    kwargs = dict(nodes=2, tenants=4, requests_per_tenant=2,
                  pool_size=2, image_size=8, partitioner="hash:4")
    _, first = run_cluster_config(**kwargs)
    _, second = run_cluster_config(**kwargs)
    assert first == second
