"""ClusterServer: sticky routing, node-failure recovery, goodput."""

import numpy as np
import pytest

from repro.cluster.bench import SingleNodeFailurePlan
from repro.cluster.kernel import ClusterKernel
from repro.cluster.serve import ClusterServer
from repro.cluster.sharding import DirectoryPartitioner, stable_hash
from repro.errors import ClusterError
from repro.serve.bench import standard_pipeline


def _dataset(tenants, requests, size=8):
    rng = np.random.default_rng(0)
    paths = [
        f"/data/tenant-{t}/in-{r}.png"
        for t in range(tenants) for r in range(requests)
    ]
    return paths, {p: rng.normal(size=(size, size)) for p in paths}


def _loaded_server(nodes=3, tenants=6, requests=1, fault_plan=None):
    cluster = ClusterKernel(nodes=nodes)
    if fault_plan is not None:
        cluster.inject_faults(fault_plan)
    server = ClusterServer(cluster=cluster, pool_size=2, batching=True)
    paths, payloads = _dataset(tenants, requests)
    manifest = DirectoryPartitioner().split(paths)
    server.load_dataset(manifest, payloads)
    for t in range(tenants):
        server.pin_tenant_to_item(
            f"tenant-{t}", f"/data/tenant-{t}/in-0.png"
        )
    return server, paths


def _submit_all(server, tenants, requests):
    for t in range(tenants):
        for r in range(requests):
            server.submit(
                f"tenant-{t}",
                standard_pipeline(
                    f"/data/tenant-{t}/in-{r}.png",
                    f"/out/tenant-{t}/out-{r}.png",
                ),
            )


class TestRouting:
    def test_pinned_tenant_follows_its_shard(self):
        server, _ = _loaded_server(nodes=3, tenants=6)
        for t in range(6):
            shard = server.manifest.shard_of(f"/data/tenant-{t}/in-0.png")
            assert server.route(f"tenant-{t}") == \
                server.shard_assignment[shard.index]

    def test_routing_is_sticky(self):
        server, _ = _loaded_server()
        first = server.route("tenant-0")
        assert server.route("tenant-0") == first

    def test_unpinned_tenant_hashes_onto_living_nodes(self):
        server, _ = _loaded_server()
        living = [n.index for n in server.cluster.living()]
        expected = living[stable_hash("walk-in") % len(living)]
        assert server.route("walk-in") == expected

    def test_pin_requires_manifest(self):
        server = ClusterServer(nodes=2)
        with pytest.raises(ClusterError):
            server.pin_tenant_to_item("tenant-0", "/data/x.png")

    def test_all_nodes_down_is_an_error(self):
        server = ClusterServer(nodes=2)
        server.cluster.fail_node(0)
        server.cluster.fail_node(1)
        with pytest.raises(ClusterError):
            server.route("tenant-0")


class TestServing:
    def test_requests_run_on_the_tenants_home_node(self):
        server, _ = _loaded_server(nodes=3, tenants=6)
        _submit_all(server, tenants=6, requests=1)
        responses = server.drain()
        assert all(r.ok for r in responses)
        for t in range(6):
            home = server.route(f"tenant-{t}")
            out = server.cluster.node(home).kernel.fs.read_file(
                f"/out/tenant-{t}/out-0.png"
            )
            assert out is not None
        # Sticky routing means zero cross-node traffic at all.
        assert server.cluster.accounting.inter_node_messages == 0

    def test_stats_aggregate_across_nodes(self):
        server, _ = _loaded_server(nodes=3, tenants=6)
        _submit_all(server, tenants=6, requests=1)
        server.drain()
        stats = server.stats()
        assert stats["requests"] == 6
        assert stats["ok"] == 6
        assert stats["goodput"] == 1.0
        assert stats["makespan_seconds"] == max(
            node["makespan_seconds"] for node in stats["per_node"].values()
        )
        assert stats["requests_per_second"] > 0

    def test_multi_node_beats_single_node_makespan(self):
        single, _ = _loaded_server(nodes=1, tenants=6)
        _submit_all(single, tenants=6, requests=1)
        single.drain()
        multi, _ = _loaded_server(nodes=3, tenants=6)
        _submit_all(multi, tenants=6, requests=1)
        multi.drain()
        assert (multi.stats()["makespan_seconds"]
                < single.stats()["makespan_seconds"])


class TestNodeFailure:
    def _failed_run(self, tenants=6, requests=2):
        server, _ = _loaded_server(
            nodes=3, tenants=tenants, requests=requests,
            fault_plan=SingleNodeFailurePlan(victim=1, after=2),
        )
        _submit_all(server, tenants=tenants, requests=requests)
        responses = server.drain()
        return server, responses

    def test_victims_shards_are_re_placed(self):
        server, _ = self._failed_run()
        assert server.cluster.node_failures == 1
        assert server.shards_replaced > 0
        assert not server.cluster.nodes[1].alive
        for shard_index, node_index in server.shard_assignment.items():
            assert node_index != 1

    def test_goodput_retained_through_failure(self):
        server, responses = self._failed_run()
        stats = server.stats()
        assert stats["node_failures"] == 1
        assert stats["client_requests"] == 12
        assert stats["goodput"] == 1.0
        assert stats["resubmissions"] > 0
        # Every output was produced: requests served before the failure
        # wrote to the (now dead) victim's fs, everything after landed
        # on survivors — nothing vanished without a response.
        for t in range(6):
            for r in range(2):
                path = f"/out/tenant-{t}/out-{r}.png"
                assert any(
                    node.kernel.fs.exists(path)
                    for node in server.cluster.nodes
                ), path

    def test_evicted_requests_counted_not_lost(self):
        server, responses = self._failed_run()
        ok = sum(1 for r in responses if r.ok)
        assert ok == server.stats()["client_requests"]
        queue_stats = server.servers[1].queue.stats
        assert queue_stats.evicted > 0

    def test_failed_tenants_re_route_to_survivors(self):
        server, _ = self._failed_run()
        for t in range(6):
            assert server.route(f"tenant-{t}") != 1


class TestEvictPending:
    def test_evict_pending_empties_in_fair_share_order(self):
        from repro.serve.admission import AdmissionQueue
        from repro.sim.clock import VirtualClock

        queue = AdmissionQueue(VirtualClock(), capacity=8)
        for tenant in ("a", "a", "b", "a", "b"):
            queue.submit(type("R", (), {
                "tenant_id": tenant, "enqueued_at_ns": 0,
                "deadline_ns": None, "timed_out": False,
            })())
        evicted = queue.evict_pending()
        assert [r.tenant_id for r in evicted] == ["a", "b", "a", "b", "a"]
        assert queue.next_request() is None
        assert queue.pending == 0
        assert queue.stats.evicted == 5
        assert queue.stats.dispatched == 0
