"""Circuit breakers: state machine unit tests + server-level shedding."""

import numpy as np
import pytest

from repro.core.gateway import ApiCall
from repro.serve import PREV, PipelineServer
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.sim.clock import VirtualClock


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker("processing", clock,
                          failure_threshold=3, cooldown_ns=1_000)


def test_closed_allows_and_success_resets(breaker):
    assert breaker.allow()
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    assert breaker.consecutive_failures == 0
    assert breaker.state is BreakerState.CLOSED


def test_opens_at_threshold_and_blocks(breaker):
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.opened_count == 1
    assert not breaker.allow()


def test_cooldown_grants_exactly_one_probe(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1_000)
    assert breaker.allow()  # the probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow()  # second caller is still shed
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()


def test_failed_probe_reopens_with_doubled_cooldown(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1_000)
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state is BreakerState.OPEN
    assert breaker.opened_count == 2
    assert breaker.reopened_count == 1
    assert not breaker.allow()
    # A failed probe doubles the next cooldown: the base wait is no
    # longer enough.
    clock.advance(1_000)
    assert not breaker.allow()
    clock.advance(1_000)
    assert breaker.allow()


def test_probe_success_resets_cooldown_backoff(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1_000)
    assert breaker.allow()
    breaker.record_failure()  # probe failed -> cooldown doubles to 2_000
    clock.advance(2_000)
    assert breaker.allow()
    breaker.record_success()  # probe succeeded -> closed, backoff reset
    assert breaker.state is BreakerState.CLOSED
    assert breaker.current_cooldown_ns == breaker.cooldown_ns
    for _ in range(3):
        breaker.record_failure()
    assert not breaker.allow()
    clock.advance(1_000)  # base cooldown is enough again
    assert breaker.allow()


def test_cooldown_backoff_is_capped(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    for _ in range(6):  # keep failing every probe
        clock.advance(breaker.max_cooldown_ns)
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.current_cooldown_ns == breaker.max_cooldown_ns
    assert breaker.max_cooldown_ns == breaker.cooldown_ns * 8


def test_release_probe_returns_the_slot(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1_000)
    assert breaker.allow()
    breaker.release_probe()
    assert breaker.allow()  # the slot is available again


def test_snapshot_counts(breaker):
    breaker.record_failure()
    breaker.record_shed()
    snap = breaker.snapshot()
    assert snap["consecutive_failures"] == 1
    assert snap["shed_requests"] == 1
    assert snap["state"] == "closed"


# ----------------------------------------------------------------------
# Server integration
# ----------------------------------------------------------------------


def _pipeline(path, out):
    return [
        ApiCall("opencv", "imread", (path,)),
        ApiCall("opencv", "GaussianBlur", (PREV,)),
        ApiCall("opencv", "imwrite", (out, PREV)),
    ]


def test_server_has_one_breaker_per_partition():
    server = PipelineServer(pool_size=1)
    assert set(server.breakers) == {
        p.label for p in server.plan.partitions
    }
    server.shutdown()


def test_open_breaker_sheds_to_degraded_response(seed_inputs):
    server = PipelineServer(pool_size=2)
    paths = seed_inputs(server, tenants=1, requests=2)
    # Force the processing partition's breaker open by hand.
    breaker = server.breakers["data_processing"]
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()
    server.submit("tenant-0", _pipeline(paths[(0, 0)], "/out/shed"))
    (response,) = server.drain()
    assert not response.ok
    assert response.degraded
    assert "CircuitOpen" in response.error
    assert "data_processing" in response.error
    # No agent was dispatched: nothing was written.
    assert not server.kernel.fs.exists("/out/shed")
    assert server.degraded_responses == 1
    assert server.tenants["tenant-0"].requests_degraded == 1
    assert breaker.shed_requests >= 1
    server.shutdown()


def test_breaker_recovers_after_cooldown(seed_inputs):
    server = PipelineServer(pool_size=2)
    paths = seed_inputs(server, tenants=1, requests=2)
    breaker = server.breakers["data_processing"]
    for _ in range(breaker.failure_threshold):
        breaker.record_failure()
    server.kernel.clock.advance(breaker.cooldown_ns)
    # The next request is the half-open probe; it succeeds and closes
    # the breaker for everyone after it.
    server.submit("tenant-0", _pipeline(paths[(0, 0)], "/out/probe"))
    server.submit("tenant-0", _pipeline(paths[(0, 1)], "/out/after"))
    responses = server.drain()
    assert all(r.ok for r in responses), [r.error for r in responses]
    assert breaker.state is BreakerState.CLOSED
    assert server.kernel.fs.exists("/out/probe")
    assert server.kernel.fs.exists("/out/after")
    server.shutdown()


def test_stats_expose_breaker_snapshots():
    server = PipelineServer(pool_size=1)
    stats = server.stats()
    assert "degraded_responses" in stats
    assert set(stats["breakers"]) == set(server.breakers)
    server.shutdown()
