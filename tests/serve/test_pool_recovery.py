"""Pool crash recovery: restart in place, retry at-least-once.

A pooled agent killed mid-request must be restarted without shrinking
the pool, the victim request must be retried (at-least-once execution),
and every other tenant's in-flight work must complete untouched.
"""

import pytest

from repro.errors import ProcessCrashed
from repro.frameworks.registry import get_api
from repro.serve import PipelineServer


class CrashOnce:
    """Wrap an API impl so its first N invocations kill the agent."""

    def __init__(self, inner, crashes=1):
        self.inner = inner
        self.crashes = crashes
        self.calls = 0

    def __call__(self, ctx, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.crashes:
            ctx.process.crash("injected mid-request kill")
            raise ProcessCrashed(ctx.process.pid, "injected mid-request kill")
        return self.inner(ctx, *args, **kwargs)


@pytest.fixture
def server():
    server = PipelineServer(pool_size=2, max_retries=1)
    yield server
    server.shutdown()


def _submit_all(server, image_pipeline, seed_inputs, tenants=3):
    paths = seed_inputs(server, tenants=tenants, requests=1)
    for t in range(tenants):
        server.submit(
            f"tenant-{t}",
            image_pipeline(paths[(t, 0)], f"/out/tenant-{t}/r0"),
        )


def test_crash_mid_request_is_retried_and_succeeds(
    server, image_pipeline, seed_inputs, monkeypatch
):
    api = get_api("opencv", "GaussianBlur")
    crasher = CrashOnce(api.impl, crashes=1)
    monkeypatch.setattr(api, "impl", crasher)

    _submit_all(server, image_pipeline, seed_inputs, tenants=3)
    responses = server.drain()

    by_tenant = {r.tenant_id: r for r in responses}
    victim = by_tenant["tenant-0"]  # first dispatched, hits the crash
    assert victim.ok, victim.error
    assert victim.retries == 1
    # At-least-once: the crashed call ran again on the fresh generation.
    # 3 requests x 1 blur each, plus the one that died mid-flight.
    assert crasher.calls == 4


def test_pool_is_repaired_not_shrunk(
    server, image_pipeline, seed_inputs, monkeypatch
):
    api = get_api("opencv", "GaussianBlur")
    monkeypatch.setattr(api, "impl", CrashOnce(api.impl, crashes=1))

    _submit_all(server, image_pipeline, seed_inputs, tenants=3)
    server.drain()

    assert server.pools.total_restarts() == 1
    for pool in server.pools.pools.values():
        assert pool.size == 2
        assert pool.free_count() == 2  # every lease was returned
        for member in pool.members:
            assert member.agent.process.alive


def test_other_tenants_unaffected_by_crash(
    server, image_pipeline, seed_inputs, monkeypatch
):
    api = get_api("opencv", "GaussianBlur")
    monkeypatch.setattr(api, "impl", CrashOnce(api.impl, crashes=1))

    _submit_all(server, image_pipeline, seed_inputs, tenants=4)
    responses = server.drain()

    by_tenant = {r.tenant_id: r for r in responses}
    for tenant_id, response in by_tenant.items():
        assert response.ok, f"{tenant_id}: {response.error}"
        if tenant_id != "tenant-0":
            assert response.retries == 0
    for t in range(4):
        assert server.kernel.fs.exists(f"/out/tenant-{t}/r0")


def test_persistent_crash_exhausts_retries(
    server, image_pipeline, seed_inputs, monkeypatch
):
    api = get_api("opencv", "GaussianBlur")
    # Crashes forever: retry budget (1) cannot save the request.
    monkeypatch.setattr(api, "impl", CrashOnce(api.impl, crashes=10**9))

    _submit_all(server, image_pipeline, seed_inputs, tenants=1)
    responses = server.drain()

    assert len(responses) == 1
    assert not responses[0].ok
    assert responses[0].retries == 1
    assert "FrameworkCrash" in responses[0].error
    # Even after repeated crashes the pool is whole again.
    for pool in server.pools.pools.values():
        assert pool.free_count() == pool.size


def test_crash_evicts_dead_generation_refs(
    server, image_pipeline, seed_inputs, monkeypatch
):
    api = get_api("opencv", "GaussianBlur")
    monkeypatch.setattr(api, "impl", CrashOnce(api.impl, crashes=1))

    _submit_all(server, image_pipeline, seed_inputs, tenants=1)
    responses = server.drain()
    assert responses[0].ok

    # Refs surviving in the registry all point at live generations.
    live = {
        (member.agent.process.pid, member.agent.process.generation)
        for pool in server.pools.pools.values()
        for member in pool.members
    }
    for pid, generation, _buffer in server.registry._owners:
        assert (pid, generation) in live
