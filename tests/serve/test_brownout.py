"""Brownout: the degraded tier between healthy and circuit-open.

The floor state machine (trip after consecutive burning cells, recover
in priority order), the admission shed path, and how brownout relates
to the circuit breakers: a shed is refused at the front door, so it
never consumes a breaker probe or flips breaker state.
"""

import pytest

from repro.errors import BrownoutShed
from repro.obs.slo import FAST_WINDOW, RequestEvent
from repro.serve.autoscale import (
    BrownoutConfig,
    BrownoutController,
    control_slo,
)
from repro.serve.breaker import BreakerState
from repro.serve.loadgen import BRONZE, GOLD, SILVER
from repro.serve.server import PipelineServer
from repro.sim.kernel import SimKernel

CELL_NS = FAST_WINDOW.window_ns
BUDGET_NS = 2_000_000


def good(at_ns):
    return RequestEvent(at_ns=at_ns, latency_ns=BUDGET_NS // 2, ok=True)


def bad(at_ns):
    return RequestEvent(at_ns=at_ns, latency_ns=BUDGET_NS * 5, ok=True)


def _controller(**overrides):
    kwargs = dict(classes=3, min_floor=1, trip_cells=2, recover_cells=2)
    kwargs.update(overrides)
    return BrownoutController(
        config=BrownoutConfig(**kwargs), spec=control_slo(BUDGET_NS)
    )


def drive(controller, pattern, start_cell=0):
    """One event per cell ('b' burning / 'c' calm) plus a final closer."""
    for offset, verdict in enumerate(pattern):
        event = bad if verdict == "b" else good
        controller.observe(event((start_cell + offset) * CELL_NS))
    controller.observe(good((start_cell + len(pattern)) * CELL_NS))


# ----------------------------------------------------------------------
# The floor state machine
# ----------------------------------------------------------------------


def test_floor_starts_open_and_sheds_nobody():
    controller = _controller()
    assert controller.floor == 3
    for priority in (GOLD, SILVER, BRONZE):
        assert not controller.sheds(priority)


def test_one_burning_cell_does_not_trip():
    controller = _controller(trip_cells=2)
    drive(controller, "b")
    assert controller.floor == 3
    assert controller.events == []


def test_consecutive_burning_cells_drop_the_floor():
    controller = _controller(trip_cells=2)
    drive(controller, "bb")
    assert controller.floor == 2  # bronze shed first
    assert controller.sheds(BRONZE)
    assert not controller.sheds(SILVER)
    assert controller.events[0].direction == "brownout"


def test_calm_cell_resets_the_burn_streak():
    controller = _controller(trip_cells=2)
    drive(controller, "bcb")  # never two burning cells in a row
    assert controller.floor == 3


def test_floor_never_drops_below_min_floor():
    controller = _controller(trip_cells=1)
    drive(controller, "bbbbbb")
    assert controller.floor == 1
    assert controller.sheds(SILVER) and controller.sheds(BRONZE)
    assert not controller.sheds(GOLD)  # gold is sacred


def test_recovery_readmits_in_priority_order():
    controller = _controller(trip_cells=1, recover_cells=2)
    drive(controller, "bbbb")
    assert controller.floor == 1
    drive(controller, "cccc", start_cell=5)
    transitions = [
        (event.floor_before, event.floor_after)
        for event in controller.events
        if event.direction == "recover"
    ]
    # Silver (floor 1 -> 2) re-admits before bronze (2 -> 3).
    assert transitions == [(1, 2), (2, 3)]
    assert controller.floor == 3


def test_recovery_needs_the_full_calm_streak():
    controller = _controller(trip_cells=1, recover_cells=4)
    drive(controller, "bb")
    floor = controller.floor
    drive(controller, "cc", start_cell=3)
    assert controller.floor == floor  # 3 calm closes < 4


@pytest.mark.parametrize("kwargs,match", [
    (dict(classes=0), "class"),
    (dict(min_floor=0), "min_floor"),
    (dict(min_floor=4), "min_floor"),
    (dict(trip_cells=0), "trip_cells"),
    (dict(recover_cells=0), "trip_cells and recover_cells"),
])
def test_config_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        BrownoutController(config=BrownoutConfig(**kwargs))


# ----------------------------------------------------------------------
# The shed path and the breakers
# ----------------------------------------------------------------------


def _server():
    return PipelineServer(
        kernel=SimKernel(), pool_size=2, batching=True,
        queue_capacity=64,
    )


def test_shed_counts_land_in_server_stats():
    server = _server()
    server.enable_brownout()
    server.brownout.floor = 1
    for priority in (SILVER, BRONZE, BRONZE):
        with pytest.raises(BrownoutShed):
            server.submit("tenant-tail", [], priority=priority)
    stats = server.stats()
    assert stats["admission"]["shed"] == 3
    assert stats["brownout"]["shed_requests"] == 3
    assert stats["brownout"]["sheds_by_priority"] == {"1": 1, "2": 2}
    server.shutdown()


def test_shed_never_touches_a_breaker(image_pipeline, seed_inputs):
    """A brownout refusal happens at the front door: breaker probes,
    counters, and state are untouched, and admitted gold traffic still
    flows through closed breakers."""
    server = _server()
    server.enable_brownout()
    server.brownout.floor = 1
    before = {
        label: breaker.snapshot()
        for label, breaker in server.breakers.items()
    }
    with pytest.raises(BrownoutShed):
        server.submit("tenant-tail", [], priority=BRONZE)
    after = {
        label: breaker.snapshot()
        for label, breaker in server.breakers.items()
    }
    assert after == before

    paths = seed_inputs(server, tenants=1, requests=1)
    server.submit(
        "tenant-0", image_pipeline(paths[(0, 0)], "/out/t0/out-0.png"),
        priority=GOLD,
    )
    responses = server.drain()
    assert [response.ok for response in responses] == [True]
    assert all(
        breaker.state is BreakerState.CLOSED
        for breaker in server.breakers.values()
    )
    server.shutdown()
