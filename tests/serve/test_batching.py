"""RPC batching: planning, framing bytes, IPC savings, equivalence."""

import numpy as np
import pytest

from repro.core.gateway import ApiCall
from repro.core.rpc import (
    BATCH_HEADER_BYTES,
    BATCH_ITEM_FRAME_BYTES,
    BATCH_OFFSET_ENTRY_BYTES,
    FUSED_ITEM_HEADER_BYTES,
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    BatchChain,
    RpcBatchRequest,
    RpcBatchResponse,
    RpcRequest,
    RpcResponse,
)
from repro.serve import PREV, PipelineServer, plan_batches


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------

def _calls(n):
    return [ApiCall("opencv", f"api{i}") for i in range(n)]


def test_adjacent_same_partition_coalesce():
    groups = plan_batches(_calls(4), [1, 1, 1, 1])
    assert len(groups) == 1
    assert len(groups[0]) == 4
    assert groups[0].partition_index == 1


def test_partition_change_splits():
    groups = plan_batches(_calls(4), [0, 1, 1, 3])
    assert [(g.partition_index, len(g)) for g in groups] == \
        [(0, 1), (1, 2), (3, 1)]


def test_non_adjacent_same_partition_do_not_merge():
    # load, process, load again: the two loads must NOT merge across the
    # processing call (observation order is the state machine's input).
    groups = plan_batches(_calls(3), [0, 1, 0])
    assert [g.partition_index for g in groups] == [0, 1, 0]


def test_max_batch_calls_caps_run_length():
    groups = plan_batches(_calls(5), [1] * 5, max_batch_calls=2)
    assert [len(g) for g in groups] == [2, 2, 1]


def test_group_start_indices():
    groups = plan_batches(_calls(4), [0, 1, 1, 3])
    assert [g.start for g in groups] == [0, 1, 3]


def test_length_mismatch_raises():
    with pytest.raises(ValueError):
        plan_batches(_calls(2), [0])


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------

def _request(seq, payload):
    return RpcRequest(
        seq=seq, api_qualname="cv2.x", args=(payload,), kwargs=(),
        state_label="processing",
    )


def test_batch_request_bytes_are_exact():
    # Fused framing: one envelope, an offset-table entry plus a reduced
    # item header per request, payload bytes unchanged.
    first = _request(1, np.zeros(4))
    second = _request(2, np.zeros(8))
    batch = RpcBatchRequest(requests=(first, second))
    assert batch.nbytes == (
        BATCH_HEADER_BYTES
        + 2 * (BATCH_OFFSET_ENTRY_BYTES + FUSED_ITEM_HEADER_BYTES)
        + (first.nbytes - REQUEST_HEADER_BYTES)
        + (second.nbytes - REQUEST_HEADER_BYTES)
    )


def test_batch_request_fused_savings_vs_envelopes():
    # Savings vs the per-message-envelope framing: the old 16-byte item
    # frame plus the full request header, minus what fusing still pays.
    batch = RpcBatchRequest(
        requests=(_request(1, np.zeros(4)), _request(2, np.zeros(8)))
    )
    per_item = (
        BATCH_ITEM_FRAME_BYTES + REQUEST_HEADER_BYTES
        - BATCH_OFFSET_ENTRY_BYTES - FUSED_ITEM_HEADER_BYTES
    )
    assert per_item > 0
    assert batch.fused_savings == 2 * per_item
    envelope_nbytes = BATCH_HEADER_BYTES + sum(
        BATCH_ITEM_FRAME_BYTES + r.nbytes for r in batch.requests
    )
    assert envelope_nbytes - batch.nbytes == batch.fused_savings


def test_batch_response_bytes_are_exact():
    responses = (RpcResponse(seq=1, value=1.0), RpcResponse(seq=2, value=2.0))
    batch = RpcBatchResponse(responses=responses)
    assert batch.nbytes == (
        BATCH_HEADER_BYTES
        + 2 * (BATCH_OFFSET_ENTRY_BYTES + FUSED_ITEM_HEADER_BYTES)
        + sum(r.nbytes - RESPONSE_HEADER_BYTES for r in responses)
    )
    assert batch.fused_savings == 2 * (
        BATCH_ITEM_FRAME_BYTES + RESPONSE_HEADER_BYTES
        - BATCH_OFFSET_ENTRY_BYTES - FUSED_ITEM_HEADER_BYTES
    )


def test_chain_placeholder_is_tiny():
    assert BatchChain(1).nbytes == 16


# ----------------------------------------------------------------------
# End-to-end: batched vs sequential serving
# ----------------------------------------------------------------------

def _serve_one(batching, image_pipeline):
    server = PipelineServer(pool_size=1, batching=batching)
    rng = np.random.default_rng(7)
    server.kernel.fs.write_file("/data/in.png", rng.normal(size=(16, 16)))
    server.submit("t0", image_pipeline("/data/in.png", "/out/r0"))
    responses = server.drain()
    assert len(responses) == 1 and responses[0].ok, responses[0].error
    return server, responses[0]


def test_batching_preserves_results(image_pipeline):
    batched_server, batched = _serve_one(True, image_pipeline)
    plain_server, plain = _serve_one(False, image_pipeline)
    # Same pipeline outcome: the stored artifact exists in both runs.
    assert batched_server.kernel.fs.exists("/out/r0")
    assert plain_server.kernel.fs.exists("/out/r0")


def test_batching_sends_fewer_ipc_messages(image_pipeline):
    batched_server, _ = _serve_one(True, image_pipeline)
    plain_server, _ = _serve_one(False, image_pipeline)
    assert batched_server.kernel.ipc.messages < plain_server.kernel.ipc.messages
    stats = batched_server.batch_stats
    assert stats.messages_saved > 0
    # blur→threshold chains inside the processing agent's batch.
    assert stats.chains_local >= 1


def test_batching_is_faster(image_pipeline):
    batched_server, batched = _serve_one(True, image_pipeline)
    plain_server, plain = _serve_one(False, image_pipeline)
    assert batched.service_ns < plain.service_ns
