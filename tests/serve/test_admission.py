"""Admission control: bounded queue, fair share, virtual deadlines."""

import pytest

from repro.errors import AdmissionRejected
from repro.serve.admission import AdmissionQueue
from repro.sim.clock import VirtualClock


class FakeRequest:
    def __init__(self, tenant_id, deadline_ns=None):
        self.tenant_id = tenant_id
        self.deadline_ns = deadline_ns
        self.enqueued_at_ns = None
        self.timed_out = False


@pytest.fixture
def clock():
    return VirtualClock()


def test_submit_stamps_enqueue_time(clock):
    queue = AdmissionQueue(clock)
    clock.advance(123)
    request = FakeRequest("a")
    queue.submit(request)
    assert request.enqueued_at_ns == 123


def test_capacity_bound_rejects(clock):
    queue = AdmissionQueue(clock, capacity=2)
    queue.submit(FakeRequest("a"))
    queue.submit(FakeRequest("b"))
    with pytest.raises(AdmissionRejected):
        queue.submit(FakeRequest("c"))
    assert queue.stats.rejected_capacity == 1


def test_per_tenant_budget_rejects_only_the_hog(clock):
    queue = AdmissionQueue(clock, capacity=10, per_tenant_limit=2)
    queue.submit(FakeRequest("hog"))
    queue.submit(FakeRequest("hog"))
    with pytest.raises(AdmissionRejected):
        queue.submit(FakeRequest("hog"))
    queue.submit(FakeRequest("quiet"))  # other tenants unaffected
    assert queue.stats.rejected_tenant_budget == 1
    assert queue.pending == 3


def test_fair_share_round_robin(clock):
    queue = AdmissionQueue(clock, capacity=10)
    # Tenant "noisy" floods before "quiet" submits one request.
    for _ in range(3):
        queue.submit(FakeRequest("noisy"))
    queue.submit(FakeRequest("quiet"))
    order = [queue.next_request().tenant_id for _ in range(4)]
    # quiet is served second, not fourth: round-robin, not global FIFO.
    assert order == ["noisy", "quiet", "noisy", "noisy"]


def test_within_tenant_fifo(clock):
    queue = AdmissionQueue(clock, capacity=10)
    first = FakeRequest("a")
    second = FakeRequest("a")
    queue.submit(first)
    queue.submit(second)
    assert queue.next_request() is first
    assert queue.next_request() is second


def test_deadline_expiry_marks_timed_out(clock):
    queue = AdmissionQueue(clock, capacity=10)
    expired = FakeRequest("a", deadline_ns=100)
    fresh = FakeRequest("b", deadline_ns=10_000)
    queue.submit(expired)
    queue.submit(fresh)
    clock.advance(500)  # past tenant a's deadline, not b's
    popped = queue.next_request()
    assert popped is expired and popped.timed_out
    popped = queue.next_request()
    assert popped is fresh and not popped.timed_out
    assert queue.stats.timed_out == 1
    assert queue.stats.dispatched == 1


def test_empty_queue_returns_none(clock):
    queue = AdmissionQueue(clock)
    assert queue.next_request() is None


def test_pending_accounting(clock):
    queue = AdmissionQueue(clock, capacity=10)
    queue.submit(FakeRequest("a"))
    queue.submit(FakeRequest("b"))
    assert queue.pending == 2
    assert queue.pending_for("a") == 1
    queue.next_request()
    assert queue.pending == 1
