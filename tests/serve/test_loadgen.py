"""Seeded open-loop traffic: profiles, populations, schedules, drivers.

Includes the PR's hypothesis properties: same seed + profile produces a
byte-identical schedule, and merging disjoint tenant streams preserves
each tenant's arrival order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BrownoutShed
from repro.serve.loadgen import (
    BRONZE,
    GOLD,
    PROFILE_NAMES,
    SILVER,
    Arrival,
    ArrivalSchedule,
    TenantPopulation,
    generate_schedule,
    merge_schedules,
    profile_by_name,
    run_open_loop,
)
from repro.serve.server import PipelineServer
from repro.sim.kernel import SimKernel


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------


def test_diurnal_runs_trough_to_peak():
    profile = profile_by_name("diurnal", base_rps=100.0)
    assert profile.multiplier_at(0) == pytest.approx(profile.diurnal_trough)
    assert profile.multiplier_at(
        profile.diurnal_period_ns // 2
    ) == pytest.approx(profile.diurnal_peak)
    assert profile.rate_at(0) == pytest.approx(
        100.0 * profile.diurnal_trough
    )


def test_burst_storms_at_multiplier():
    profile = profile_by_name(
        "burst", storm_every_ns=100_000_000, storm_ns=20_000_000,
        storm_offset_ns=30_000_000, storm_multiplier=5.0,
    )
    assert profile.multiplier_at(0) == 1.0
    assert profile.multiplier_at(29_999_999) == 1.0
    assert profile.multiplier_at(30_000_000) == 5.0
    assert profile.multiplier_at(49_999_999) == 5.0
    assert profile.multiplier_at(50_000_000) == 1.0
    # Periodic: the next storm window.
    assert profile.multiplier_at(130_000_000) == 5.0


def test_flash_decays_exponentially_from_onset():
    profile = profile_by_name(
        "flash", flash_onset_ns=10_000_000, flash_multiplier=9.0,
        flash_decay_ns=5_000_000,
    )
    assert profile.multiplier_at(0) == 1.0
    assert profile.multiplier_at(10_000_000) == pytest.approx(9.0)
    later = profile.multiplier_at(20_000_000)
    assert 1.0 < later < 9.0
    assert profile.multiplier_at(60_000_000) < later


def test_unknown_profile_name_rejected():
    with pytest.raises(ValueError, match="unknown load profile"):
        profile_by_name("tsunami")
    with pytest.raises(ValueError, match="base_rps"):
        profile_by_name("burst", base_rps=0.0)
    with pytest.raises(ValueError, match="duration_ns"):
        profile_by_name("burst", duration_ns=0)


# ----------------------------------------------------------------------
# Tenant population
# ----------------------------------------------------------------------


def test_population_priorities_follow_rank():
    population = TenantPopulation(10, gold_fraction=0.2,
                                  silver_fraction=0.3)
    assert population.priority(0) == GOLD
    assert population.priority(1) == GOLD
    assert population.priority(2) == SILVER
    assert population.priority(4) == SILVER
    assert population.priority(5) == BRONZE
    assert population.priority(9) == BRONZE


def test_population_draw_is_rank_weighted():
    population = TenantPopulation(5, zipf_alpha=1.1)
    assert population.draw(0.0) == 0
    assert population.draw(1.0) == 4
    ranks = [population.draw(u / 100) for u in range(100)]
    # Zipf head: rank 0 is drawn more often than rank 4.
    assert ranks.count(0) > ranks.count(4)


def test_population_needs_a_tenant():
    with pytest.raises(ValueError, match=">= 1 tenant"):
        TenantPopulation(0)


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------


def _small_schedule(seed=7, prefix="tenant"):
    return generate_schedule(
        profile_by_name("burst", base_rps=400.0, duration_ns=20_000_000),
        seed=seed, tenants=6, tenant_prefix=prefix,
    )


def test_schedule_is_sorted_and_bounded():
    schedule = _small_schedule()
    times = [arrival.at_ns for arrival in schedule.arrivals]
    assert times == sorted(times)
    assert all(0 <= t < 20_000_000 for t in times)
    assert schedule.counts()["arrivals"] == len(schedule.arrivals)


def test_slow_clients_carry_inflated_payloads():
    schedule = generate_schedule(
        profile_by_name("diurnal", base_rps=2000.0,
                        duration_ns=50_000_000),
        seed=3, tenants=6, slow_fraction=0.3,
        image_size=8, slow_multiplier=4,
    )
    sizes = {a.slow: a.image_size for a in schedule.arrivals}
    assert sizes[False] == 8
    assert sizes[True] == 32


def test_digest_covers_every_arrival_field():
    schedule = _small_schedule()
    tampered = ArrivalSchedule(
        profile=schedule.profile, seed=schedule.seed,
        arrivals=schedule.arrivals[:-1] + (Arrival(
            at_ns=schedule.arrivals[-1].at_ns,
            tenant=schedule.arrivals[-1].tenant,
            priority=schedule.arrivals[-1].priority,
            slow=not schedule.arrivals[-1].slow,
            image_size=schedule.arrivals[-1].image_size,
        ),),
    )
    assert tampered.digest() != schedule.digest()


def test_merge_is_sorted_and_complete():
    first = _small_schedule(seed=1, prefix="acme")
    second = _small_schedule(seed=2, prefix="globex")
    merged = merge_schedules(first, second)
    assert len(merged.arrivals) == (
        len(first.arrivals) + len(second.arrivals)
    )
    times = [arrival.at_ns for arrival in merged.arrivals]
    assert times == sorted(times)
    assert merged.seed == first.seed ^ second.seed


# ----------------------------------------------------------------------
# Hypothesis properties (the PR's two headline invariants)
# ----------------------------------------------------------------------


profile_names = st.sampled_from(PROFILE_NAMES)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=20, deadline=None)
@given(name=profile_names, seed=seeds)
def test_same_seed_and_profile_is_byte_identical(name, seed):
    profile = profile_by_name(name, base_rps=500.0,
                              duration_ns=10_000_000)
    first = generate_schedule(profile, seed=seed, tenants=5)
    second = generate_schedule(profile, seed=seed, tenants=5)
    assert first.arrivals == second.arrivals
    assert first.digest() == second.digest()


@settings(max_examples=20, deadline=None)
@given(seed_a=seeds, seed_b=seeds)
def test_merge_preserves_per_tenant_arrival_order(seed_a, seed_b):
    first = _small_schedule(seed=seed_a, prefix="acme")
    second = _small_schedule(seed=seed_b, prefix="globex")
    merged = merge_schedules(first, second)

    def per_tenant(arrivals):
        streams = {}
        for arrival in arrivals:
            streams.setdefault(arrival.tenant, []).append(arrival)
        return streams

    originals = per_tenant(first.arrivals + second.arrivals)
    for tenant, stream in per_tenant(merged.arrivals).items():
        assert stream == originals[tenant]


# ----------------------------------------------------------------------
# The open-loop driver
# ----------------------------------------------------------------------


def _server(**kwargs):
    return PipelineServer(
        kernel=SimKernel(), pool_size=2, batching=True,
        queue_capacity=256, **kwargs,
    )


def test_open_loop_accounts_every_arrival():
    schedule = _small_schedule()
    server = _server()
    result = run_open_loop(server, schedule)
    assert result.offered == len(schedule.arrivals)
    assert result.admitted == result.offered
    assert result.rejected == 0 and result.shed == 0
    assert result.served_ok + result.served_failed == result.admitted
    # The client remembers every offered arrival.
    assert len(result.client_events) == result.offered
    server.shutdown()


def test_open_loop_replay_is_deterministic():
    schedule = _small_schedule()
    runs = []
    for _ in range(2):
        server = _server()
        result = run_open_loop(server, schedule)
        runs.append((
            result.to_dict(10_000_000),
            tuple(sorted(server.events)),
        ))
        server.shutdown()
    assert runs[0] == runs[1]


def test_open_loop_records_sheds_as_client_misses():
    schedule = _small_schedule()
    server = _server()
    server.enable_brownout()
    server.brownout.floor = 1  # shed silver and bronze at the door
    result = run_open_loop(server, schedule)
    assert result.shed > 0
    assert result.offered == result.admitted + result.shed
    refusals = [event for event in result.client_events if not event.ok]
    assert len(refusals) >= result.shed
    assert "gold" not in result.sheds_by_priority
    server.shutdown()


def test_brownout_shed_raises_before_taking_a_queue_slot():
    server = _server()
    server.enable_brownout()
    server.brownout.floor = 1
    with pytest.raises(BrownoutShed):
        server.submit("tenant-tail", [], priority=BRONZE)
    assert server.queue.stats.shed == 1
    assert server.brownout.shed_requests == 1
    assert server.queue.pending == 0
    server.shutdown()
