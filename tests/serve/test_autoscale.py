"""The SLO-burn-driven pool autoscaler and its incremental monitor."""

import pytest

from repro.obs.slo import FAST_WINDOW, RequestEvent
from repro.serve.autoscale import (
    AutoscaleConfig,
    BurnMonitor,
    PoolAutoscaler,
    control_slo,
)

CELL_NS = FAST_WINDOW.window_ns
BUDGET_NS = 2_000_000


def good(at_ns):
    return RequestEvent(at_ns=at_ns, latency_ns=BUDGET_NS // 2, ok=True)


def bad(at_ns):
    return RequestEvent(at_ns=at_ns, latency_ns=BUDGET_NS * 5, ok=True)


class StubServer:
    """Just enough server for the autoscaler: a pool size and scale_to."""

    class _Pools:
        def __init__(self, size):
            self.size = size

    def __init__(self, size=2):
        self.pools = self._Pools(size)
        self.calls = []

    def scale_to(self, size, reason="", at_ns=None):
        self.calls.append((size, at_ns))
        self.pools.size = size
        return size


# ----------------------------------------------------------------------
# BurnMonitor
# ----------------------------------------------------------------------


def test_monitor_verdicts_only_on_cell_boundaries():
    monitor = BurnMonitor(control_slo(BUDGET_NS))
    assert monitor.observe(bad(10)) is None
    assert monitor.observe(bad(20)) is None  # same cell: no verdict yet
    assert monitor.observe(good(CELL_NS + 1)) is True  # closed burning
    assert monitor.observe(good(2 * CELL_NS + 1)) is False  # closed calm
    assert monitor.cells_closed == 2
    assert monitor.burning_cells == 1


def test_monitor_all_good_cell_is_calm():
    monitor = BurnMonitor(control_slo(BUDGET_NS))
    for offset in range(5):
        monitor.observe(good(offset * 100))
    assert monitor.observe(good(CELL_NS + 1)) is False


def test_monitor_folds_late_events_into_current_cell():
    # An event landing in an already-closed cell must not crash or
    # reopen history — it folds into the current cell (conservative).
    monitor = BurnMonitor(control_slo(BUDGET_NS))
    monitor.observe(good(CELL_NS * 3))
    assert monitor.observe(bad(CELL_NS)) is None
    assert monitor.cells_closed == 0


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kwargs,match", [
    (dict(min_size=0), "min_size"),
    (dict(min_size=4, max_size=2), "max_size"),
    (dict(scale_up_step=0), "steps"),
    (dict(scale_down_step=0), "steps"),
    (dict(scale_budget=-1), "scale_budget"),
])
def test_config_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        PoolAutoscaler(StubServer(), config=AutoscaleConfig(**kwargs))


# ----------------------------------------------------------------------
# Scaling decisions
# ----------------------------------------------------------------------


def _autoscaler(server, **overrides):
    kwargs = dict(
        min_size=2, max_size=8, scale_up_step=2, scale_down_step=1,
        up_cooldown_ns=2 * CELL_NS, down_cooldown_ns=4 * CELL_NS,
        calm_cells_for_down=3, scale_budget=16,
    )
    kwargs.update(overrides)
    return PoolAutoscaler(
        server, config=AutoscaleConfig(**kwargs),
        spec=control_slo(BUDGET_NS),
    )


def drive(scaler, pattern):
    """One event per cell ('b' burning / 'c' calm) plus a final closer.

    Cell ``k``'s verdict is delivered by the event that opens cell
    ``k + 1``, i.e. at ``(k + 1) * CELL_NS``.
    """
    for cell, verdict in enumerate(pattern):
        event = bad if verdict == "b" else good
        scaler.on_request(event(cell * CELL_NS))
    scaler.on_request(good(len(pattern) * CELL_NS))


def test_burning_cell_scales_up_by_step_at_event_time():
    server = StubServer(size=2)
    scaler = _autoscaler(server)
    drive(scaler, "b")
    assert server.pools.size == 4
    assert scaler.scale_ups == 1
    event = scaler.events[0]
    assert event.direction == "up"
    assert (event.from_size, event.to_size) == (2, 4)
    # The decision is stamped from the event stream, not a wall clock.
    assert event.at_ns == CELL_NS
    assert server.calls == [(4, event.at_ns)]


def test_up_cooldown_suppresses_consecutive_scale_ups():
    server = StubServer(size=2)
    scaler = _autoscaler(server, up_cooldown_ns=10 * CELL_NS,
                         calm_cells_for_down=100)
    # Cell 0 scales up (verdict at 1 ms); cell 1's burn at 2 ms is
    # inside the cooldown; cell 11's burn at 12 ms is past it.
    drive(scaler, "bb" + "c" * 9 + "b")
    assert scaler.scale_ups == 2
    assert [event.at_ns for event in scaler.events] == [
        CELL_NS, 12 * CELL_NS,
    ]


def test_scale_up_respects_max_size_and_budget():
    server = StubServer(size=2)
    scaler = _autoscaler(server, max_size=5, scale_up_step=4,
                         up_cooldown_ns=0)
    drive(scaler, "bb")
    assert server.pools.size == 5  # clamped to max_size, then no-op
    assert scaler.scale_ups == 1

    tight = StubServer(size=2)
    scaler = _autoscaler(tight, scale_budget=1, up_cooldown_ns=0)
    drive(scaler, "bb")
    assert tight.pools.size == 3  # budget allowed one member set only
    assert scaler.spawned == 1


def test_scale_down_needs_a_calm_streak():
    shallow = StubServer(size=6)
    scaler = _autoscaler(shallow, calm_cells_for_down=3,
                         down_cooldown_ns=0)
    drive(scaler, "cc")
    assert scaler.scale_downs == 0  # streak of 2 < 3
    deep = StubServer(size=6)
    scaler = _autoscaler(deep, calm_cells_for_down=3,
                         down_cooldown_ns=0)
    drive(scaler, "ccc")
    assert scaler.scale_downs == 1
    assert deep.pools.size == 5


def test_burning_cell_resets_the_calm_streak():
    server = StubServer(size=6)
    scaler = _autoscaler(server, calm_cells_for_down=3,
                         down_cooldown_ns=0)
    drive(scaler, "ccbcc")  # the burn wipes the first two calm cells
    assert scaler.scale_downs == 0
    assert scaler.scale_ups == 1


def test_scale_down_floors_at_min_size():
    server = StubServer(size=2)
    scaler = _autoscaler(server, min_size=2, calm_cells_for_down=1,
                         down_cooldown_ns=0)
    drive(scaler, "cccc")
    assert server.pools.size == 2
    assert scaler.scale_downs == 0


def test_snapshot_reports_the_loop_state():
    server = StubServer(size=2)
    scaler = _autoscaler(server)
    drive(scaler, "b")
    snapshot = scaler.snapshot()
    assert snapshot["scale_ups"] == 1
    assert snapshot["final_pool_size"] == 4
    assert snapshot["burning_cells"] == 1
    assert snapshot["events"][0]["direction"] == "up"
