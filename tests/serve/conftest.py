"""Shared fixtures for the serving-layer tests."""

import numpy as np
import pytest

from repro.core.gateway import ApiCall
from repro.serve import PREV


@pytest.fixture
def image_pipeline():
    """A standard 4-call pipeline: load → blur → threshold → store."""

    def build(path: str, out: str):
        return [
            ApiCall("opencv", "imread", (path,)),
            ApiCall("opencv", "GaussianBlur", (PREV,)),
            ApiCall("opencv", "threshold", (PREV,)),
            ApiCall("opencv", "imwrite", (out, PREV)),
        ]

    return build


@pytest.fixture
def seed_inputs():
    """Write one input image per (tenant, request) into a server's fs."""

    def seed(server, tenants: int, requests: int, size: int = 16):
        rng = np.random.default_rng(0)
        paths = {}
        for t in range(tenants):
            for r in range(requests):
                path = f"/data/tenant-{t}/in-{r}.png"
                server.kernel.fs.write_file(
                    path, rng.normal(size=(size, size))
                )
                paths[(t, r)] = path
        return paths

    return seed
