"""Agent pools: lease/restore, round-robin reuse, in-place repair."""

import pytest

from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import AgentUnavailable
from repro.serve.pool import PoolSet
from repro.sim.kernel import SimKernel


@pytest.fixture
def poolset():
    kernel = SimKernel()
    config = FreePartConfig()
    freepart = FreePart(kernel=kernel, config=config)
    categorization = freepart.analyze()
    plan = freepart.build_plan(categorization)
    return PoolSet(kernel, plan, categorization, config, size=2)


def test_pool_spawns_size_agents_per_partition(poolset):
    for pool in poolset.pools.values():
        assert pool.size == 2
        assert pool.free_count() == 2


def test_lease_set_gives_one_agent_per_partition(poolset):
    leased = poolset.lease_set("tenant-a")
    assert set(leased) == set(poolset.pools)
    for index, member in leased.items():
        assert member.leased_to == "tenant-a"
        assert member.agent.partition.index == index


def test_restore_frees_members(poolset):
    leased = poolset.lease_set("tenant-a")
    poolset.restore_set(leased)
    for pool in poolset.pools.values():
        assert pool.free_count() == pool.size


def test_exhausted_pool_raises(poolset):
    poolset.lease_set("a")
    poolset.lease_set("b")
    with pytest.raises(AgentUnavailable):
        poolset.lease_set("c")


def test_failed_lease_set_releases_partial_leases(poolset):
    # Exhaust a single partition's pool so lease_set fails midway.
    pool = next(iter(poolset.pools.values()))
    for member in pool.members:
        member.leased_to = "hog"
    with pytest.raises(AgentUnavailable):
        poolset.lease_set("victim")
    # Partitions leased before the failure were rolled back.
    for other in poolset.pools.values():
        if other is pool:
            continue
        assert other.free_count() == other.size


def test_round_robin_spreads_leases(poolset):
    pool = next(iter(poolset.pools.values()))
    first = pool.lease("a")
    pool.restore(first)
    second = pool.lease("a")
    assert second.slot != first.slot


def test_dead_member_repaired_on_restore(poolset):
    pool = next(iter(poolset.pools.values()))
    member = pool.lease("a")
    member.agent.process.crash("boom")
    old_generation = member.agent.process.generation
    pool.restore(member)
    assert member.agent.alive
    assert member.agent.process.generation == old_generation + 1
    assert pool.stats.restarts == 1
    assert pool.size == 2  # the pool never shrinks


def test_dead_member_repaired_on_lease(poolset):
    pool = next(iter(poolset.pools.values()))
    for member in pool.members:
        member.agent.process.crash("poison")
    member = pool.lease("a")
    assert member.agent.alive
    assert pool.stats.restarts >= 1


def test_shutdown_exits_all_members(poolset):
    poolset.shutdown()
    for pool in poolset.pools.values():
        for member in pool.members:
            assert not member.agent.process.alive
