"""Regression: ceil-rank percentile (the round-based index under-read p99)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.metrics import ServingTimeline, percentile


def test_percentile_ceil_rank_on_ten_element_sample():
    values = list(range(1, 11))  # 1..10, already sorted
    assert percentile(values, 0.50) == 5
    # The old round(f * (n-1)) picked index 9*0.99 -> 9 only after
    # rounding 8.91; worse, p90 picked 8.1 -> 8 (value 9).  Ceil-rank
    # pins the definition: smallest value covering the fraction.
    assert percentile(values, 0.90) == 9
    assert percentile(values, 0.99) == 10
    assert percentile(values, 1.00) == 10


def test_percentile_edge_cases():
    assert percentile([], 0.99) == 0
    assert percentile([7], 0.50) == 7
    assert percentile([1, 2], 0.0) == 1
    assert percentile([1, 2], 0.5) == 1
    assert percentile([1, 2], 0.51) == 2


def test_timeline_p99_reports_the_maximum_of_small_samples():
    timeline = ServingTimeline(lanes=1)
    for index in range(10):
        timeline.observe(
            request_id=index, tenant_id="t",
            arrival_ns=0, service_ns=(index + 1) * 1_000_000,
        )
    summary = timeline.summary()
    assert summary["p99_latency_ms"] == max(
        t.latency_ns for t in timeline.timings
    ) / 1e6
    assert summary["p99_latency_ms"] >= summary["p50_latency_ms"] > 0


def test_timeline_feeds_optional_registry():
    registry = MetricsRegistry()
    timeline = ServingTimeline(lanes=2, registry=registry)
    timeline.observe(1, "t", arrival_ns=0, service_ns=5_000)
    timeline.observe(2, "t", arrival_ns=100, service_ns=7_000)
    assert registry.counter("serve.requests").value == 2
    assert registry.histogram("serve.latency_ns").count == 2
    assert registry.histogram("serve.service_ns").total == 12_000
