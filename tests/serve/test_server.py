"""End-to-end serving: multi-tenant drain, isolation, timeouts, speedup."""

import numpy as np
import pytest

from repro.core.gateway import ApiCall
from repro.core.rpc import RemoteHandle
from repro.errors import AdmissionRejected
from repro.serve import PREV, NaiveServer, PipelineServer


def test_multi_tenant_drain_all_succeed(image_pipeline, seed_inputs):
    server = PipelineServer(pool_size=2)
    paths = seed_inputs(server, tenants=4, requests=2)
    for (t, r), path in paths.items():
        server.submit(f"tenant-{t}", image_pipeline(path, f"/out/t{t}-r{r}"))
    responses = server.drain()
    assert len(responses) == 8
    assert all(r.ok for r in responses), [r.error for r in responses]
    for (t, r) in paths:
        assert server.kernel.fs.exists(f"/out/t{t}-r{r}")
    server.shutdown()


def test_fair_share_interleaves_tenants(image_pipeline, seed_inputs):
    server = PipelineServer(pool_size=2)
    paths = seed_inputs(server, tenants=2, requests=2)
    # Tenant 0 floods first; tenant 1 submits after.
    for r in range(2):
        server.submit("tenant-0", image_pipeline(paths[(0, r)], f"/out/a{r}"))
    for r in range(2):
        server.submit("tenant-1", image_pipeline(paths[(1, r)], f"/out/b{r}"))
    order = [resp.tenant_id for resp in server.drain()]
    assert order == ["tenant-0", "tenant-1", "tenant-0", "tenant-1"]
    server.shutdown()


def test_cross_tenant_ref_replay_is_rejected(seed_inputs):
    """Tenant B replaying tenant A's RemoteHandle must be refused."""
    server = PipelineServer(pool_size=2)
    paths = seed_inputs(server, tenants=1, requests=1)
    # Tenant A's pipeline ends without a store: the last value is a
    # RemoteHandle into the shared processing agent.
    server.submit("tenant-a", [
        ApiCall("opencv", "imread", (paths[(0, 0)],)),
        ApiCall("opencv", "GaussianBlur", (PREV,)),
    ])
    (first,) = server.drain()
    assert first.ok
    stolen = first.values[-1]
    assert isinstance(stolen, RemoteHandle)

    # Tenant B presents A's handle as its own input.
    server.submit("tenant-b", [
        ApiCall("opencv", "imwrite", ("/out/stolen.png", stolen)),
    ])
    (attack,) = server.drain()
    assert not attack.ok
    assert "TenantIsolationError" in attack.error
    assert not server.kernel.fs.exists("/out/stolen.png")
    assert server.registry.violations == 1
    assert server.tenants["tenant-b"].isolation_violations == 1
    # The rightful owner can still use its handle.
    server.submit("tenant-a", [
        ApiCall("opencv", "imwrite", ("/out/mine.png", stolen)),
    ])
    (legit,) = server.drain()
    assert legit.ok, legit.error
    assert server.kernel.fs.exists("/out/mine.png")
    server.shutdown()


def test_deadline_in_queue_times_out(image_pipeline, seed_inputs):
    server = PipelineServer(pool_size=1)
    paths = seed_inputs(server, tenants=1, requests=2)
    server.submit(
        "tenant-0", image_pipeline(paths[(0, 0)], "/out/slow"),
    )
    # Deadline already unreachable: the first request's service time
    # (well over 1 virtual ns) will expire it while it waits.
    doomed = server.submit(
        "tenant-0", image_pipeline(paths[(0, 1)], "/out/late"),
        deadline_ns=server.kernel.clock.now_ns + 1,
    )
    responses = server.drain()
    by_id = {r.request_id: r for r in responses}
    assert by_id[doomed.request_id].timed_out
    assert not by_id[doomed.request_id].ok
    assert "RequestTimeout" in by_id[doomed.request_id].error
    server.shutdown()


def test_admission_backpressure_rejects_submit(image_pipeline):
    server = PipelineServer(pool_size=1, queue_capacity=1)
    calls = image_pipeline("/data/x.png", "/out/x")
    server.submit("tenant-0", calls)
    with pytest.raises(AdmissionRejected):
        server.submit("tenant-0", calls)
    server.shutdown()


def test_pooled_beats_naive_by_2x(image_pipeline):
    """The acceptance bar: ≥2x requests/sec at 8 concurrent tenants."""
    tenants, requests = 8, 2

    def load(server):
        rng = np.random.default_rng(1)
        for t in range(tenants):
            for r in range(requests):
                path = f"/data/t{t}/in{r}.png"
                server.kernel.fs.write_file(path, rng.normal(size=(16, 16)))
                server.submit(
                    f"tenant-{t}", image_pipeline(path, f"/out/t{t}-r{r}")
                )
        responses = server.drain()
        assert all(resp.ok for resp in responses)
        return server.stats()["requests_per_second"]

    naive_rps = load(NaiveServer())
    pooled = PipelineServer(pool_size=4, batching=True)
    pooled_rps = load(pooled)
    pooled.shutdown()
    assert pooled_rps >= 2 * naive_rps


def test_stats_shape(image_pipeline, seed_inputs):
    server = PipelineServer(pool_size=2, batching=True)
    paths = seed_inputs(server, tenants=2, requests=1)
    for (t, r), path in paths.items():
        server.submit(f"tenant-{t}", image_pipeline(path, f"/out/s{t}{r}"))
    server.drain()
    stats = server.stats()
    assert stats["requests"] == 2
    assert stats["lanes"] == 2
    assert stats["requests_per_second"] > 0
    assert stats["p99_latency_ms"] >= stats["p50_latency_ms"] > 0
    assert stats["admission"]["admitted"] == 2
    assert stats["admission"]["dispatched"] == 2
    assert stats["batching_stats"]["batches"] >= 1
    assert stats["tenant_refs_minted"] > 0
    assert stats["per_tenant_requests"] == {"tenant-0": 1, "tenant-1": 1}
    server.shutdown()
