"""Per-tenant ObjectRef namespacing: foreign, forged, and stale refs."""

import pytest

from repro.core.rpc import ObjectRef, RemoteHandle
from repro.errors import TenantIsolationError
from repro.serve.tenancy import TenantRegistry


def _ref(pid=100, generation=0, buffer_id=1, payload=4096):
    return ObjectRef(
        owner_pid=pid, owner_generation=generation,
        buffer_id=buffer_id, payload_bytes=payload,
    )


@pytest.fixture
def registry():
    return TenantRegistry()


def test_owner_passes_check(registry):
    ref = registry.mint("alice", _ref())
    registry.check("alice", ref)  # no raise
    assert registry.violations == 0


def test_foreign_ref_raises(registry):
    ref = registry.mint("alice", _ref())
    with pytest.raises(TenantIsolationError, match="owned by tenant 'alice'"):
        registry.check("mallory", ref)
    assert registry.violations == 1


def test_forged_ref_raises(registry):
    with pytest.raises(TenantIsolationError, match="forged or stale"):
        registry.check("mallory", _ref(buffer_id=999))


def test_stale_ref_raises_after_eviction(registry):
    ref = registry.mint("alice", _ref(pid=100, generation=0))
    survivor = registry.mint("alice", _ref(pid=101, generation=0))
    evicted = registry.evict_generation(pid=100, generation=0)
    assert evicted == 1
    # The dead generation's ref is gone even for its rightful owner...
    with pytest.raises(TenantIsolationError, match="forged or stale"):
        registry.check("alice", ref)
    # ...while refs from other address spaces still resolve.
    registry.check("alice", survivor)


def test_check_value_recurses_into_containers(registry):
    owned = registry.mint("alice", _ref(buffer_id=1))
    foreign = registry.mint("bob", _ref(buffer_id=2))
    registry.check_value("alice", [RemoteHandle(owned), "text", 3])
    with pytest.raises(TenantIsolationError):
        registry.check_value("alice", {"data": (RemoteHandle(foreign),)})


def test_refs_of_counts_per_tenant(registry):
    registry.mint("alice", _ref(buffer_id=1))
    registry.mint("alice", _ref(buffer_id=2))
    registry.mint("bob", _ref(buffer_id=3))
    assert registry.refs_of("alice") == 2
    assert registry.refs_of("bob") == 1
