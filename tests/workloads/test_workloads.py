"""Synthetic workload generators."""

import numpy as np
import pytest

from repro.sim.kernel import SimKernel
from repro.workloads import (
    ImageDataset,
    blob_image,
    corpus,
    gradient_image,
    install_camera,
    moving_blob_source,
    noise_image,
    omr_sheet,
    score_table,
    standard_eval_dataset,
    static_scene_source,
    token_ids,
    token_sequence,
)


class TestImages:
    def test_noise_image_deterministic(self):
        assert np.array_equal(noise_image(1), noise_image(1))
        assert not np.array_equal(noise_image(1), noise_image(2))

    def test_noise_image_channels(self):
        assert noise_image(1, size=8, channels=1).shape == (8, 8)
        assert noise_image(1, size=8, channels=3).shape == (8, 8, 3)

    def test_gradient_has_increasing_trend(self):
        image = gradient_image(3, size=16)
        assert image[15, 15] > image[0, 0]

    def test_blob_image_has_bright_regions(self):
        image = blob_image(4, size=16)
        assert image.max() > 200
        assert image.min() < 50

    def test_omr_sheet_marks(self):
        boxes = [[1, 1, 3, 3], [8, 8, 3, 3]]
        sheet = omr_sheet(boxes, [True, False], size=16)
        assert sheet[2, 2].mean() > 200
        assert sheet[9, 9].mean() < 50

    def test_dataset_materializes_files(self):
        kernel = SimKernel()
        dataset = ImageDataset(name="d", count=3, size=8)
        paths = dataset.materialize(kernel)
        assert len(paths) == 3
        assert all(kernel.fs.exists(p) for p in paths)

    def test_dataset_iteration_and_determinism(self):
        dataset = ImageDataset(name="d", count=2, size=8, kind="blob", seed=9)
        first = list(dataset)
        second = list(dataset)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_standard_eval_dataset(self):
        dataset = standard_eval_dataset(items=4)
        assert dataset.count == 4


class TestVideo:
    def test_moving_blob_moves(self):
        source = moving_blob_source(size=16, step=2)
        a, b = source(0), source(1)
        assert not np.array_equal(a, b)

    def test_static_scene_is_stable(self):
        source = static_scene_source(size=8)
        difference = np.abs(source(0) - source(1)).mean()
        assert difference < 10

    def test_install_camera(self):
        kernel = SimKernel()
        camera = install_camera(kernel, moving_blob_source(), frame_limit=2)
        assert kernel.devices.camera is camera
        camera.open()
        assert camera.read_frame() is not None
        camera.read_frame()
        assert camera.read_frame() is None


class TestText:
    def test_token_sequence_deterministic(self):
        assert token_sequence(1) == token_sequence(1)
        assert len(token_sequence(1, length=10)) == 10

    def test_token_ids_dtype(self):
        ids = token_ids(2, length=8)
        assert ids.dtype == np.int64

    def test_corpus_written_to_fs(self):
        kernel = SimKernel()
        paths = corpus(kernel, documents=3, length=16)
        assert len(paths) == 3
        assert isinstance(kernel.fs.read_file(paths[0]), str)

    def test_score_table_shape(self):
        table = score_table(rows=5)
        assert table[0] == ["sheet", "score"]
        assert len(table) == 6
