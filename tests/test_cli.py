"""The ``python -m repro`` experiment driver."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_apps_lists_all_23(capsys):
    code, out = run_cli(capsys, "apps")
    assert code == 0
    assert "OMRChecker" in out
    assert "Semantic-Seg" in out
    assert out.count("\n") >= 23


def test_categorize_summary(capsys):
    code, out = run_cli(capsys, "categorize", "json")
    assert code == 0
    assert "accuracy" in out
    assert "100.0%" in out


def test_categorize_verbose_lists_apis(capsys):
    code, out = run_cli(capsys, "categorize", "gtk", "-v")
    assert code == 0
    assert "Gtk.RecentManager.get_items" in out


def test_syscalls_prints_table7(capsys):
    code, out = run_cli(capsys, "syscalls")
    assert code == 0
    assert "Loading (43)" in out
    assert "Visualizing (56)" in out


def test_overhead_selected_samples(capsys):
    code, out = run_cli(capsys, "overhead", "--samples", "4,6", "--items", "1")
    assert code == 0
    assert "lbpcascade_anime" in out
    assert "AVERAGE" in out


def test_overhead_no_ldc_flag(capsys):
    code, out = run_cli(capsys, "overhead", "--samples", "4",
                        "--items", "1", "--no-ldc")
    assert code == 0
    assert "DISABLED" in out


def test_attack_runs_both_modes(capsys):
    code, out = run_cli(capsys, "attack", "CVE-2021-29618")
    assert code == 0
    assert "SUCCEEDED" in out     # unprotected
    assert "prevented" in out     # freepart


def test_attack_single_technique(capsys):
    code, out = run_cli(capsys, "attack", "CVE-2017-12597",
                        "--technique", "freepart")
    assert code == 0
    assert "none" not in out.splitlines()[3:][0]


def test_motivating_row(capsys):
    code, out = run_cli(capsys, "motivating", "--technique", "memory_based")
    assert code == 0
    assert "mem-write-template" in out
    assert "FAILED" in out        # DoS attacks get through memory-based


def test_studies(capsys):
    code, out = run_cli(capsys, "studies")
    assert code == 0
    assert "241" not in ""  # smoke
    assert "tensorflow" in out
    assert "Table 3" in out


def test_serve_bench_emits_json(capsys):
    code, out = run_cli(capsys, "serve-bench",
                        "--tenants", "2", "--requests", "1",
                        "--pool-size", "2", "--batching", "on")
    assert code == 0
    result = json.loads(out)
    assert result["workload"]["tenants"] == 2
    names = [c["name"] for c in result["configs"]]
    assert names[0] == "naive (runtime per request)"
    assert "pooled x2, batching on" in names
    pooled = result["configs"][1]
    assert pooled["speedup_vs_naive"] > 1.0
    assert result["best_pooled"] == pooled["name"]


def test_serve_bench_batching_both_measures_two_pooled_configs(capsys):
    code, out = run_cli(capsys, "serve-bench",
                        "--tenants", "2", "--requests", "1",
                        "--pool-size", "2")
    assert code == 0
    result = json.loads(out)
    pooled = [c for c in result["configs"] if c["pool_size"] == 2]
    assert {c["batching"] for c in pooled} == {True, False}


def test_serve_bench_default_flags_parse():
    args = build_parser().parse_args(["serve-bench"])
    assert args.tenants == 8
    assert args.pool_size == 4
    assert args.batching == "both"


def test_check_clean_paths_exit_zero(capsys):
    code, out = run_cli(capsys, "check", "examples/")
    assert code == 0
    assert "0 error(s)" in out


def test_check_violating_fixture_exits_one(capsys):
    code, out = run_cli(
        capsys,
        "check", "tests/fixtures/staticcheck/frozen_write_violation.py",
    )
    assert code == 1
    assert "[frozen-write]" in out


def test_check_json_format(capsys):
    code, out = run_cli(
        capsys,
        "check", "--format", "json",
        "tests/fixtures/staticcheck/phase_order_violation.py",
    )
    assert code == 1
    payload = json.loads(out)
    assert payload["findings"][0]["rule"] == "phase-order"


def test_check_missing_path_exits_two(capsys):
    code = main(["check", "no/such/path"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error" in captured.err
    assert "usage:" in captured.err


def test_unknown_subcommand_exits_two(capsys):
    with pytest.raises(SystemExit) as err:
        main(["frobnicate"])
    assert err.value.code == 2


def test_bad_samples_value_exits_two_with_message(capsys):
    code = main(["overhead", "--samples", "1,x"])
    captured = capsys.readouterr()
    assert code == 2
    assert "comma-separated integers" in captured.err
    assert "usage:" in captured.err


def test_unknown_framework_exits_two(capsys):
    code = main(["categorize", "no-such-framework"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown framework" in captured.err


def test_unknown_cve_exits_two(capsys):
    code = main(["attack", "CVE-0000-0000"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown CVE" in captured.err


# ----------------------------------------------------------------------
# loadgen
# ----------------------------------------------------------------------


def test_loadgen_schedule_only_emits_digest_and_counts(capsys):
    code, out = run_cli(capsys, "loadgen", "--profile", "flash",
                        "--schedule-only")
    assert code == 0
    payload = json.loads(out)
    assert payload["profile"] == "flash"
    assert len(payload["digest"]) == 64
    assert payload["arrivals"] == sum(payload["by_priority"].values())
    assert payload["params"]["name"] == "flash"


def test_loadgen_schedule_only_is_seed_deterministic(capsys):
    first = run_cli(capsys, "loadgen", "--schedule-only")
    second = run_cli(capsys, "loadgen", "--schedule-only")
    reseeded = run_cli(capsys, "loadgen", "--schedule-only",
                       "--seed", "7")
    assert first == second
    assert json.loads(reseeded[1])["digest"] != \
        json.loads(first[1])["digest"]


def test_loadgen_small_replay_emits_json(capsys):
    code, out = run_cli(capsys, "loadgen", "--profile", "diurnal",
                        "--duration-ms", "30", "--base-rps", "200",
                        "--tenants", "6", "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["offered"] == payload["admitted"]
    assert payload["served_failed"] == 0
    assert payload["shed"] == 0


def test_loadgen_unknown_profile_exits_two(capsys):
    code = main(["loadgen", "--profile", "tsunami"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown --profile" in captured.err
    assert "usage:" in captured.err


def test_loadgen_negative_scale_bounds_exit_two(capsys):
    code = main(["loadgen", "--min-pool", "-2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--min-pool must be >= 1" in captured.err
    assert "usage:" in captured.err

    code = main(["loadgen", "--max-pool", "0"])
    captured = capsys.readouterr()
    assert code == 2
    assert "--max-pool must be >= 1" in captured.err


def test_loadgen_inverted_scale_bounds_exit_two(capsys):
    code = main(["loadgen", "--min-pool", "4", "--max-pool", "2"])
    captured = capsys.readouterr()
    assert code == 2
    assert "must be >= --min-pool" in captured.err


def test_chaos_loadgen_unknown_profile_exits_two(capsys):
    code = main(["chaos", "loadgen", "--profile", "nope"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown --profile" in captured.err
    assert "usage:" in captured.err
