"""Behavioural tests of the Scikit-learn analogue."""

import numpy as np
import pytest

from repro.core.apitypes import APIType
from repro.frameworks.base import ExecutionContext, Model, Tensor, Tracer
from repro.frameworks.minisklearn import SKLEARN, sample_matrix
from repro.sim.kernel import SimKernel


@pytest.fixture
def ctx():
    kernel = SimKernel()
    return ExecutionContext(kernel, kernel.spawn("t", charge=False),
                            tracer=Tracer())


def call(ctx, name, *args, **kwargs):
    return ctx.invoke(SKLEARN.get(name), *args, **kwargs)


def test_registered_in_the_global_registry():
    from repro.frameworks.registry import get_framework

    assert get_framework("sklearn") is SKLEARN
    assert len(SKLEARN) >= 12


def test_standard_scaler_zero_mean_unit_std(ctx):
    scaled = call(ctx, "StandardScaler_fit_transform", sample_matrix())
    assert np.allclose(scaled.data.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(scaled.data.std(axis=0), 1.0, atol=1e-6)


def test_minmax_scaler_range(ctx):
    scaled = call(ctx, "MinMaxScaler_fit_transform", sample_matrix(3))
    assert scaled.data.min() >= 0.0
    assert scaled.data.max() <= 1.0 + 1e-9


def test_pca_reduces_dimensions(ctx):
    reduced = call(ctx, "PCA_fit_transform", sample_matrix(5), components=2)
    assert reduced.data.shape == (12, 2)


def test_pca_components_orthogonal_variance_ordered(ctx):
    reduced = call(ctx, "PCA_fit_transform", sample_matrix(7), components=2)
    variances = reduced.data.var(axis=0)
    assert variances[0] >= variances[1]


def test_kmeans_separates_two_blobs(ctx):
    blob_a = np.zeros((6, 2))
    blob_b = np.full((6, 2), 10.0)
    data = Tensor(np.vstack([blob_a, blob_b]))
    labels = call(ctx, "KMeans_fit_predict", data, clusters=2)
    assert len(set(labels.data[:6])) == 1
    assert labels.data[0] != labels.data[6]


def test_fit_then_predict_roundtrip(ctx):
    data = sample_matrix(9)
    model = call(ctx, "LogisticRegression_fit", data)
    assert isinstance(model, Model)
    predictions = call(ctx, "predict", model, data)
    assert set(np.unique(predictions.data)) <= {0, 1}
    # The one-step separator recovers the majority of its own labels.
    targets = (data.data.sum(axis=1) > np.median(data.data.sum(axis=1)))
    agreement = (predictions.data == targets.astype(int)).mean()
    assert agreement >= 0.7


def test_train_test_split_sizes(ctx):
    train, test = call(ctx, "train_test_split", sample_matrix(11), ratio=0.75)
    assert len(train) == 9 and len(test) == 3


def test_accuracy_score(ctx):
    a = Tensor(np.array([1.0, 0.0, 1.0, 1.0]))
    assert call(ctx, "metrics_accuracy_score", a, a) == 1.0
    b = Tensor(np.array([0.0, 0.0, 1.0, 1.0]))
    assert call(ctx, "metrics_accuracy_score", a, b) == pytest.approx(0.75)


def test_joblib_dump_load_roundtrip(ctx):
    model = Model({"coef": np.ones(4)}, architecture="logreg")
    call(ctx, "joblib_dump", model, "/m.joblib")
    loaded = call(ctx, "joblib_load", "/m.joblib")
    assert isinstance(loaded, Model)
    assert np.array_equal(loaded.data["coef"], np.ones(4))


def test_hybrid_categorization_is_perfect():
    from repro.core.hybrid import HybridAnalyzer

    categorization = HybridAnalyzer().categorize_framework(SKLEARN)
    assert categorization.accuracy() == 1.0
    counts = categorization.counts_by_type()
    assert counts[APIType.LOADING] == 3
    assert counts[APIType.STORING] == 2
    assert counts[APIType.VISUALIZING] == 0


def test_sklearn_pipeline_under_freepart():
    from repro.core.runtime import FreePart

    freepart = FreePart()
    gateway = freepart.deploy(used_apis=list(SKLEARN))
    kernel = freepart.kernel
    rng = np.random.default_rng(40)
    kernel.fs.write_file("/data/iris.csv", rng.normal(size=(12, 4)))
    data = gateway.call("sklearn", "datasets_load_files", "/data/iris.csv")
    scaled = gateway.call("sklearn", "StandardScaler_fit_transform", data)
    model = gateway.call("sklearn", "LogisticRegression_fit", scaled)
    gateway.call("sklearn", "joblib_dump", model, "/out/model.joblib")
    assert kernel.fs.exists("/out/model.joblib")
    assert gateway.machine.state_label == "storing"
    assert kernel.ipc.lazy_fraction == 1.0
