"""Behavioural tests of the PyTorch / TensorFlow / Caffe analogues."""

import numpy as np
import pytest

from repro.core.dataflow import categorize_flows
from repro.core.apitypes import APIType
from repro.frameworks.base import ExecutionContext, Model, Tensor, Blob, Tracer
from repro.frameworks.minicaffe import CAFFE, sample_blob
from repro.frameworks.minitf import TENSORFLOW
from repro.frameworks.minitorch import PYTORCH, sample_tensor, sample_weights
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


@pytest.fixture
def ctx(kernel):
    return ExecutionContext(kernel, kernel.spawn("t", charge=False), tracer=Tracer())


def call(ctx, framework, name, *args, **kwargs):
    return ctx.invoke(framework.get(name), *args, **kwargs)


class TestPyTorch:
    def test_save_load_roundtrip(self, ctx):
        model = Model(sample_weights(), architecture="resnet")
        call(ctx, PYTORCH, "save", model, "/m.pt")
        loaded = call(ctx, PYTORCH, "load", "/m.pt")
        assert isinstance(loaded, Model)
        assert set(loaded.data) == set(model.data)
        assert loaded.data is not model.data  # fresh copy

    def test_hub_load_downloads_through_cache(self, ctx):
        ctx.kernel.devices.network.host_content(
            "https://model-zoo.example/resnet.pt", Model(sample_weights(5))
        )
        loaded = call(ctx, PYTORCH, "hub_load")
        assert isinstance(loaded, Model)
        # The reduction makes the observed flows a loading pattern.
        assert categorize_flows(ctx.tracer.flows.flows) is APIType.LOADING

    def test_dataset_then_dataloader(self, ctx):
        from repro.frameworks.minitorch import _SAMPLE_DATASET_DIR, _ensure_sample_files

        _ensure_sample_files(ctx)
        dataset = call(ctx, PYTORCH, "datasets_MNIST", _SAMPLE_DATASET_DIR)
        assert len(dataset) == 2
        batches = call(ctx, PYTORCH, "DataLoader", dataset, batch_size=1)
        assert len(batches) == 2

    def test_relu_clamps_negative(self, ctx):
        result = call(ctx, PYTORCH, "relu", Tensor(np.array([-1.0, 2.0])))
        assert np.array_equal(result.data, [0.0, 2.0])

    def test_softmax_sums_to_one(self, ctx):
        result = call(ctx, PYTORCH, "softmax", Tensor(np.array([1.0, 2.0, 3.0])))
        assert result.data.sum() == pytest.approx(1.0)

    def test_matmul_shapes(self, ctx):
        result = call(ctx, PYTORCH, "matmul", sample_tensor(1, 4), sample_tensor(2, 4))
        assert result.data.shape == (4, 4)

    def test_load_state_dict_merges(self, ctx):
        model = Model({}, architecture="net")
        call(ctx, PYTORCH, "load_state_dict", model, sample_weights())
        assert "conv1.weight" in model.data

    def test_summary_writer_add_scalar_persists(self, ctx):
        writer = call(ctx, PYTORCH, "SummaryWriter", "/logs")
        call(ctx, PYTORCH, "SummaryWriter_add_scalar", writer, "loss", 0.25)
        events = ctx.kernel.fs.read_file("/logs/events.out")
        assert events == [("loss", 0.25)]

    def test_onnx_export_writes_architecture(self, ctx):
        call(ctx, PYTORCH, "onnx_export", Model(sample_weights(), "resnet"), "/m.onnx")
        payload = ctx.kernel.fs.read_file("/m.onnx")
        assert payload["architecture"] == "resnet"


class TestTensorFlow:
    def test_get_file_stages_via_tempfile(self, ctx):
        ctx.kernel.devices.network.host_content(
            "https://datasets.example/flowers.tgz", np.ones((4, 4))
        )
        payload = call(ctx, TENSORFLOW, "utils_get_file")
        assert np.array_equal(payload, np.ones((4, 4)))
        assert categorize_flows(ctx.tracer.flows.flows) is APIType.LOADING

    def test_image_dataset_from_directory(self, ctx):
        from repro.frameworks.minitf import _SAMPLE_DATASET_DIR, _ensure_sample_files

        _ensure_sample_files(ctx)
        batch = call(ctx, TENSORFLOW, "image_dataset_from_directory",
                     _SAMPLE_DATASET_DIR)
        assert len(batch) == 2
        assert all(isinstance(t, Tensor) for t in batch)

    def test_one_hot_shape(self, ctx):
        result = call(ctx, TENSORFLOW, "one_hot", Tensor(np.array([0, 1, 2])))
        assert result.data.shape == (3, 4)

    def test_cast_to_float32(self, ctx):
        result = call(ctx, TENSORFLOW, "cast", Tensor(np.array([1.0])))
        assert result.data.dtype == np.float32

    def test_save_weights_roundtrip(self, ctx):
        model = Model({"k": np.ones(2)}, architecture="keras")
        call(ctx, TENSORFLOW, "Model_save_weights", model, "/w.h5")
        stored = ctx.kernel.fs.read_file("/w.h5")
        assert isinstance(stored, Model)
        assert "k" in stored.data

    def test_estimator_train_is_stateful(self):
        from repro.frameworks.base import StatefulKind

        spec = TENSORFLOW.get("estimator_DNNClassifier_train").spec
        assert spec.stateful is StatefulKind.DATA_STATE


class TestCaffe:
    def test_net_combines_proto_and_weights(self, ctx):
        from repro.frameworks.minicaffe import _ensure_sample_files

        _ensure_sample_files(ctx)
        net = call(ctx, CAFFE, "Net")
        assert isinstance(net, Model)
        assert "conv1" in net.data
        assert "conv1" in net.architecture or "+" in net.architecture

    def test_forward_is_deterministic_and_nonnegative(self, ctx):
        net = Model({"conv1": np.ones((3, 3))})
        out1 = call(ctx, CAFFE, "Forward", net, sample_blob(1))
        out2 = call(ctx, CAFFE, "Forward", net, sample_blob(1))
        assert np.array_equal(out1.data, out2.data)
        assert (out1.data >= 0).all()

    def test_copy_trained_layers(self, ctx):
        destination = Model({}, architecture="a")
        source = Model({"fc": np.ones((2, 2))})
        merged = call(ctx, CAFFE, "CopyTrainedLayersFrom", destination, source)
        assert "fc" in merged.data

    def test_solver_step_returns_loss(self, ctx):
        loss = call(ctx, CAFFE, "Solver_step", Model({}), Blob(np.ones(4)))
        assert loss == pytest.approx(1.0)

    def test_snapshot_writes_model(self, ctx):
        call(ctx, CAFFE, "Snapshot", Model({"w": np.ones(1)}), "/snap")
        assert isinstance(ctx.kernel.fs.read_file("/snap"), Model)

    def test_write_proto_handles_non_dict(self, ctx):
        call(ctx, CAFFE, "WriteProtoToTextFile", Blob(np.ones(1)), "/p.prototxt")
        assert ctx.kernel.fs.read_file("/p.prototxt") == {"proto": "Blob"}


class TestUtilityFrameworks:
    def test_pandas_read_csv(self, ctx):
        from repro.frameworks.miniutil import PANDAS

        ctx.kernel.fs.write_file("/t.csv", [["a", 1]])
        rows = call(ctx, PANDAS, "read_csv", "/t.csv")
        assert rows == [["a", 1]]

    def test_json_roundtrip(self, ctx):
        from repro.frameworks.miniutil import JSONLIB

        call(ctx, JSONLIB, "dump", {"k": 1}, "/c.json")
        assert call(ctx, JSONLIB, "load", "/c.json") == {"k": 1}

    def test_matplotlib_plot_then_savefig(self, ctx):
        from repro.frameworks.miniutil import MATPLOTLIB

        call(ctx, MATPLOTLIB, "plot", np.arange(4.0))
        call(ctx, MATPLOTLIB, "savefig", "/fig.png")
        assert np.array_equal(ctx.kernel.fs.read_file("/fig.png"), np.arange(4.0))

    def test_pillow_open_updates_recent_files(self, ctx):
        from repro.frameworks.miniutil import PILLOW

        ctx.kernel.fs.write_file("/photo.png", np.ones((4, 4)))
        call(ctx, PILLOW, "Image_open", "/photo.png")
        assert ctx.kernel.gui.recent_files == ["/photo.png"]

    def test_gtk_recent_manager(self, ctx):
        from repro.frameworks.miniutil import GTK

        call(ctx, GTK, "RecentManager_add_item", "/a.cbz")
        call(ctx, GTK, "RecentManager_add_item", "/b.cbz")
        items = call(ctx, GTK, "RecentManager_get_items")
        assert items == ["/b.cbz", "/a.cbz"]
