"""Framework API model: specs, data objects, execution contexts, guard."""

import numpy as np
import pytest

from repro.core.apitypes import APIType
from repro.core.dataflow import Storage, process_flow
from repro.errors import ReproError
from repro.frameworks.base import (
    APISpec,
    DataObject,
    ExecutionContext,
    Framework,
    Mat,
    Model,
    StatefulKind,
    Tensor,
    Tracer,
    coerce_model,
    is_crafted,
    is_data_object,
)
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


@pytest.fixture
def ctx(kernel):
    process = kernel.spawn("p", charge=False)
    return ExecutionContext(kernel, process, tracer=Tracer())


def make_spec(**overrides):
    defaults = dict(
        name="op", framework="testfw", qualname="testfw.op",
        ground_truth=APIType.PROCESSING, flows=(process_flow(),),
        syscalls=("brk",),
    )
    defaults.update(overrides)
    return APISpec(**defaults)


class TestDataObjects:
    def test_nbytes_follows_payload(self):
        assert Mat(np.zeros((4, 4))).nbytes == 128

    def test_copy_is_deep(self):
        data = np.zeros(4)
        original = Tensor(data)
        duplicate = original.copy()
        duplicate.data[0] = 9
        assert data[0] == 0

    def test_shapes(self):
        assert Mat(np.zeros((2, 3))).shape == (2, 3)
        assert Tensor(None).shape == ()

    def test_model_holds_weights_and_trojan(self):
        model = Model({"w": np.ones(2)}, architecture="cnn", trojan="payload")
        assert model.architecture == "cnn"
        assert model.trojan == "payload"
        assert model.nbytes > 0

    def test_is_data_object(self):
        assert is_data_object(Mat(np.zeros(1)))
        assert is_data_object(np.zeros(1))
        assert not is_data_object([1, 2])

    def test_coerce_model_passthrough_and_wrap(self):
        model = Model({"w": np.ones(1)})
        assert coerce_model(model) is model
        wrapped = coerce_model(Tensor(np.ones(3)))
        assert isinstance(wrapped, Model)
        assert "raw" in wrapped.data
        assert coerce_model(np.ones(2)).architecture == "raw"


class TestFrameworkRegistry:
    def test_register_and_get(self):
        fw = Framework("testfw")
        api = fw.add(make_spec(), lambda ctx: 1)
        assert fw.get("op") is api
        assert "op" in fw
        assert len(fw) == 1

    def test_duplicate_name_rejected(self):
        fw = Framework("testfw")
        fw.add(make_spec(), lambda ctx: 1)
        with pytest.raises(ReproError):
            fw.add(make_spec(), lambda ctx: 2)

    def test_get_missing_raises(self):
        with pytest.raises(ReproError):
            Framework("f").get("nothing")

    def test_apis_of_type(self):
        fw = Framework("testfw")
        fw.add(make_spec(name="a"), lambda ctx: 1)
        fw.add(make_spec(name="b", ground_truth=APIType.LOADING,
                         qualname="testfw.b"), lambda ctx: 1)
        assert [a.name for a in fw.apis_of_type(APIType.LOADING)] == ["b"]

    def test_replace_spec_keeps_impl(self):
        fw = Framework("testfw")
        fw.add(make_spec(), lambda ctx: 41)
        fw.replace_spec("op", make_spec().with_vulnerabilities("CVE-X"))
        assert fw.get("op").spec.vulnerabilities == ("CVE-X",)

    def test_covered_counts_test_cases(self):
        fw = Framework("testfw")
        fw.add(make_spec(name="a"), lambda ctx: 1)
        fw.add(make_spec(name="b", qualname="t.b",
                         example_args=lambda ctx: ((), {})), lambda ctx: 1)
        assert [a.name for a in fw.covered()] == ["b"]


class TestExecutionContext:
    def test_invoke_charges_compute_cost(self, ctx):
        spec = make_spec(base_cost_ns=10_000)
        api = Framework("f").add(spec, lambda c: "done")
        before = ctx.kernel.clock.now_ns
        assert ctx.invoke(api, ) == "done"
        assert ctx.kernel.clock.now_ns - before >= 10_000

    def test_invoke_charges_per_byte_for_data_args(self, ctx):
        spec = make_spec(base_cost_ns=0, cost_ns_per_byte=1.0)
        api = Framework("f").add(spec, lambda c, x: None)
        before = ctx.kernel.clock.now_ns
        ctx.invoke(api, Mat(np.zeros(128)))
        assert ctx.kernel.clock.now_ns - before >= 1024

    def test_init_syscalls_once_per_process(self, ctx):
        spec = make_spec(init_syscalls=("mprotect",))
        api = Framework("f").add(spec, lambda c: None)
        ctx.invoke(api)
        ctx.invoke(api)
        names = [r.name for r in ctx.process.syscall_log]
        assert names.count("mprotect") == 1

    def test_init_syscalls_deduped_across_apis(self, ctx):
        fw = Framework("f")
        a = fw.add(make_spec(name="a", init_syscalls=("connect",)), lambda c: None)
        b = fw.add(make_spec(name="b", qualname="f.b",
                             init_syscalls=("connect",)), lambda c: None)
        ctx.invoke(a)
        ctx.invoke(b)
        names = [r.name for r in ctx.process.syscall_log]
        assert names.count("connect") == 1

    def test_read_file_records_loading_flow(self, ctx):
        ctx.kernel.fs.write_file("/x", np.zeros(4))
        spec = make_spec()
        api = Framework("f").add(spec, lambda c: c.read_file("/x"))
        ctx.invoke(api)
        flows = ctx.tracer.flows.flows
        assert any(f.source is Storage.FILE and f.dest is Storage.MEM for f in flows)

    def test_write_file_records_storing_flow(self, ctx):
        api = Framework("f").add(make_spec(), lambda c: c.write_file("/o", [1]))
        ctx.invoke(api)
        assert any(
            f.dest is Storage.FILE and f.source is Storage.MEM
            for f in ctx.tracer.flows.flows
        )
        assert ctx.kernel.fs.read_file("/o") == [1]

    def test_gui_show_connect_once(self, ctx):
        api = Framework("f").add(
            make_spec(), lambda c: c.gui_show("w", np.zeros(2))
        )
        ctx.invoke(api)
        ctx.invoke(api)
        names = [r.name for r in ctx.process.syscall_log]
        assert names.count("connect") == 1
        assert ctx.kernel.gui.window("w").shown_count == 2

    def test_stage_via_tempfile_reduces_to_processing(self, ctx):
        from repro.core.dataflow import categorize_flows

        api = Framework("f").add(
            make_spec(), lambda c: c.stage_via_tempfile(np.zeros(4), label="cache")
        )
        ctx.invoke(api)
        assert categorize_flows(ctx.tracer.flows.flows) is APIType.PROCESSING

    def test_charge_costs_disabled(self, kernel):
        process = kernel.spawn("p", charge=False)
        quiet = ExecutionContext(kernel, process, charge_costs=False)
        api = Framework("f").add(make_spec(base_cost_ns=1_000_000), lambda c: 1)
        before = kernel.clock.now_ns
        quiet.invoke(api)
        assert kernel.clock.now_ns == before


class FakeCrafted:
    cve_id = "CVE-TEST-1"
    cover = "benign"

    def __init__(self):
        self.fired = 0

    def trigger(self, ctx):
        self.fired += 1


class TestGuard:
    def test_is_crafted_duck_typing(self):
        assert is_crafted(FakeCrafted())
        assert not is_crafted("just data")
        assert not is_crafted(None)

    def test_guard_fires_on_vulnerable_api(self, ctx):
        crafted = FakeCrafted()
        spec = make_spec(vulnerabilities=("CVE-TEST-1",))
        api = Framework("f").add(spec, lambda c, x: c.guard(x))
        assert ctx.invoke(api, crafted) == "benign"
        # fired twice: once by the central arg scan, once by the impl guard
        assert crafted.fired >= 1

    def test_guard_skips_non_vulnerable_api(self, ctx):
        crafted = FakeCrafted()
        api = Framework("f").add(make_spec(), lambda c, x: c.guard(x))
        assert ctx.invoke(api, crafted) == "benign"
        assert crafted.fired == 0

    def test_guard_passes_plain_values(self, ctx):
        ctx.current_spec = make_spec()
        assert ctx.guard(42) == 42
