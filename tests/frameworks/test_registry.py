"""Framework registry, CVE wiring, and cost calibration."""

import pytest

from repro.attacks.cves import ALL_CVES
from repro.core.apitypes import APIType
from repro.errors import ReproError
from repro.frameworks.registry import (
    FRAMEWORKS,
    MAJOR_FRAMEWORKS,
    all_frameworks,
    get_api,
    get_framework,
    iter_apis,
)


def test_major_frameworks_present():
    assert set(MAJOR_FRAMEWORKS) == {"opencv", "pytorch", "tensorflow", "caffe"}
    for name in MAJOR_FRAMEWORKS:
        assert len(get_framework(name)) > 0


def test_unknown_framework_raises():
    with pytest.raises(ReproError):
        get_framework("scikit")


def test_every_cve_is_wired_to_its_api():
    for record in ALL_CVES:
        api = get_api(record.framework, record.api_name)
        assert record.cve_id in api.spec.vulnerabilities, record.cve_id


def test_cve_api_types_match_registry():
    # A CVE whose record says DL must sit on a loading API, etc.
    for record in ALL_CVES:
        api = get_api(record.framework, record.api_name)
        assert api.spec.ground_truth is record.api_type, record.cve_id


def test_iter_apis_all():
    total = sum(len(fw) for fw in all_frameworks())
    assert len(iter_apis()) == total
    assert total > 400  # the reproduction models a large API surface


def test_iter_apis_selected():
    apis = iter_apis(["opencv"])
    assert all(a.spec.framework == "opencv" for a in apis)


def test_framework_api_scale_matches_paper_shape():
    # OpenCV has by far the most APIs; each major framework has a
    # loading/processing/storing surface.
    opencv = get_framework("opencv")
    assert len(opencv.apis_of_type(APIType.PROCESSING)) >= 75
    assert len(opencv.apis_of_type(APIType.VISUALIZING)) >= 6
    for name in MAJOR_FRAMEWORKS:
        framework = get_framework(name)
        assert framework.apis_of_type(APIType.LOADING)
        assert framework.apis_of_type(APIType.PROCESSING)
        assert framework.apis_of_type(APIType.STORING)


def test_only_opencv_like_frameworks_have_visualizing():
    # Table 4 footnote: Caffe, PyTorch, TensorFlow have no visualizing APIs.
    for name in ("pytorch", "tensorflow", "caffe"):
        assert get_framework(name).apis_of_type(APIType.VISUALIZING) == []


def test_costs_are_calibrated_up():
    # The calibration pass must leave compute >> per-call IPC cost.
    from repro.sim.clock import CostModel

    ipc = CostModel().ipc_message_ns
    processing = get_framework("opencv").apis_of_type(APIType.PROCESSING)
    average = sum(a.spec.base_cost_ns for a in processing) / len(processing)
    assert average > 10 * ipc


def test_neutral_apis_exist_in_opencv():
    opencv = get_framework("opencv")
    neutrals = [a.spec.name for a in opencv if a.spec.neutral]
    assert "cvtColor" in neutrals
    assert "cvCreateMemStorage" in neutrals


def test_vulnerable_apis_listing():
    opencv = get_framework("opencv")
    names = [a.spec.name for a in opencv.vulnerable_apis()]
    assert "imread" in names
    assert "imshow" in names
