"""Behavioural tests of the OpenCV-analogue implementations."""

import numpy as np
import pytest

from repro.frameworks.base import ExecutionContext, Mat, Model, Tracer
from repro.frameworks.minicv import OPENCV, sample_image
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


@pytest.fixture
def ctx(kernel):
    return ExecutionContext(kernel, kernel.spawn("t", charge=False), tracer=Tracer())


def call(ctx, name, *args, **kwargs):
    return ctx.invoke(OPENCV.get(name), *args, **kwargs)


def test_imread_returns_file_contents(ctx):
    image = sample_image()
    ctx.kernel.fs.write_file("/img.png", image)
    result = call(ctx, "imread", "/img.png")
    assert isinstance(result, Mat)
    assert np.array_equal(result.data, image)


def test_imwrite_then_imread_roundtrip(ctx):
    image = Mat(sample_image(3))
    assert call(ctx, "imwrite", "/out.png", image) is True
    back = call(ctx, "imread", "/out.png")
    assert np.array_equal(back.data, image.data)


def test_gaussian_blur_smooths(ctx):
    noisy = Mat(sample_image(5))
    blurred = call(ctx, "GaussianBlur", noisy, sigma=2.0)
    assert blurred.data.std() < noisy.data.std()


def test_threshold_binarizes(ctx):
    result = call(ctx, "threshold", Mat(sample_image(6)), 127.0, 255.0)
    assert set(np.unique(result.data)) <= {0.0, 255.0}


def test_erode_dilate_monotone(ctx):
    image = Mat(sample_image(7))
    eroded = call(ctx, "erode", image)
    dilated = call(ctx, "dilate", image)
    assert eroded.data.mean() <= dilated.data.mean()


def test_canny_detects_edge(ctx):
    flat = np.zeros((16, 16))
    flat[:, 8:] = 255.0
    edges = call(ctx, "Canny", Mat(flat))
    assert edges.data.max() == 255.0
    assert edges.data[0, 0] == 0.0


def test_flip_is_involution(ctx):
    image = Mat(sample_image(9))
    twice = call(ctx, "flip", call(ctx, "flip", image, 0), 0)
    assert np.array_equal(twice.data, image.data.astype(float))


def test_equalize_hist_spreads_range(ctx):
    narrow = Mat(np.full((8, 8), 100.0) + np.arange(64).reshape(8, 8) * 0.1)
    result = call(ctx, "equalizeHist", narrow)
    assert np.ptp(result.data) > np.ptp(narrow.data)


def test_resize_halves(ctx):
    image = Mat(sample_image(10))
    small = call(ctx, "resize", image)
    assert small.data.shape[0] == image.data.shape[0] // 2


def test_detect_multi_scale_finds_bright_blob(ctx):
    field = np.zeros((20, 20))
    field[4:8, 6:11] = 255.0
    classifier = Model({"threshold": 150.0, "min_area": 2})
    rects = call(ctx, "CascadeClassifier_detectMultiScale",
                 classifier, Mat(field))
    assert rects == [(6, 4, 5, 4)]


def test_detect_multi_scale_empty_on_dark_image(ctx):
    classifier = Model({"threshold": 150.0, "min_area": 2})
    rects = call(ctx, "CascadeClassifier_detectMultiScale",
                 classifier, Mat(np.zeros((8, 8))))
    assert rects == []


def test_classifier_load_reads_params(ctx):
    ctx.kernel.fs.write_file("/c.xml", {"threshold": 99.0})
    classifier = call(ctx, "CascadeClassifier")
    assert call(ctx, "CascadeClassifier_load", classifier, "/c.xml") is True
    assert classifier.data["threshold"] == 99.0


def test_find_contours_count(ctx):
    field = np.zeros((20, 20))
    field[2:5, 2:5] = 255.0
    field[10:14, 10:15] = 255.0
    contours = call(ctx, "findContours", Mat(field))
    assert len(contours) == 2


def test_bounding_rect_of_contour(ctx):
    contour = np.array([[2, 3], [7, 3], [7, 9], [2, 9]])
    rect = call(ctx, "boundingRect", contour)
    assert rect == (2, 3, 6, 7)


def test_rectangle_draws_border(ctx):
    canvas = Mat(np.zeros((16, 16)))
    drawn = call(ctx, "rectangle", canvas, (2, 2), (10, 10))
    assert drawn.data[2, 5] == 255.0
    assert drawn.data[0, 0] == 0.0


def test_puttext_stamps_row(ctx):
    canvas = Mat(np.zeros((16, 16)))
    drawn = call(ctx, "putText", canvas, "hi", (1, 3))
    assert drawn.data[3, 1] == 255.0


def test_video_capture_reads_frames(ctx):
    ctx.kernel.devices.camera._frame_limit = 2
    capture = call(ctx, "VideoCapture", 0)
    first = call(ctx, "VideoCapture_read", capture)
    second = call(ctx, "VideoCapture_read", capture)
    assert first is not None and second is not None
    assert call(ctx, "VideoCapture_read", capture) is None


def test_imshow_updates_gui(ctx):
    call(ctx, "imshow", "win", Mat(sample_image(11)))
    assert ctx.kernel.gui.window("win").shown_count == 1


def test_pollkey_consumes_queue(ctx):
    ctx.kernel.gui.queue_keys("q")
    assert call(ctx, "pollKey") == "q"
    assert call(ctx, "pollKey") == ""


def test_video_writer_appends_frames(ctx):
    writer = call(ctx, "VideoWriter", "/out.avi")
    call(ctx, "VideoWriter_write", writer, Mat(sample_image(12)))
    call(ctx, "VideoWriter_write", writer, Mat(sample_image(13)))
    stored = ctx.kernel.fs.read_file("/out.avi")
    assert len(stored) == 2


def test_cvtcolor_is_neutral_and_grayscales(ctx):
    spec = OPENCV.get("cvtColor").spec
    assert spec.neutral
    gray = call(ctx, "cvtColor", Mat(sample_image(14)))
    assert gray.data.ndim == 2


def test_match_template_peak_location(ctx):
    image = np.zeros((16, 16))
    image[5:9, 5:9] = 255.0
    template = np.full((4, 4), 255.0)
    response = call(ctx, "matchTemplate", Mat(image), Mat(template))
    peak = np.unravel_index(np.argmax(response.data), response.data.shape)
    assert peak == (5, 5)


def test_kmeans_two_clusters(ctx):
    data = np.array([0.0, 0.1, 0.2, 10.0, 10.1, 10.2])
    labels, centers = call(ctx, "kmeans", Mat(data), 2)
    assert len(set(labels[:3])) == 1
    assert len(set(labels[3:])) == 1
    assert labels[0] != labels[3]


def test_connected_components_count(ctx):
    field = np.zeros((10, 10))
    field[1:3, 1:3] = 255.0
    field[6:8, 6:8] = 255.0
    count, labelled = call(ctx, "connectedComponents", Mat(field))
    assert count == 2


def test_uncovered_apis_have_no_examples():
    for name in ("grabCut", "watershed", "inpaint"):
        assert not OPENCV.get(name).spec.has_test_case
