"""Per-type syscall pools (Table 7) and their invariants."""

import pytest

from repro.core.apitypes import APIType
from repro.frameworks.registry import FRAMEWORKS
from repro.frameworks.syscall_pools import (
    INIT_ONLY_SYSCALLS,
    LOADING_POOL,
    POOLS,
    PROCESSING_POOL,
    STORING_POOL,
    VISUALIZING_POOL,
    pool_for,
)


def test_pool_sizes_match_table7():
    # Table 7: Loading 43, Processing 22, Visualizing 56, Storing 27.
    assert len(LOADING_POOL) == 43
    assert len(PROCESSING_POOL) == 22
    assert len(VISUALIZING_POOL) == 56
    assert len(STORING_POOL) == 27


def test_pool_for_rejects_neutral():
    with pytest.raises(ValueError):
        pool_for(APIType.NEUTRAL)


def test_loading_and_processing_cannot_write_out():
    # Section 5.3: loading/processing agents cannot write data to disk or
    # other devices — that's what breaks exfiltration.
    for name in ("write", "sendto", "sendmsg", "pwrite64", "writev"):
        assert name not in LOADING_POOL, name
        assert name not in PROCESSING_POOL, name


def test_no_pool_allows_fork_or_exec():
    for api_type, pool in POOLS.items():
        for name in ("fork", "clone", "execve", "vfork"):
            assert name not in pool, (api_type, name)


def test_no_pool_allows_mprotect_or_shm_open():
    # mprotect is init-phase only; shm_open is reserved to the runtime.
    for api_type, pool in POOLS.items():
        assert "mprotect" not in pool, api_type
        assert "shm_open" not in pool, api_type


def test_storing_can_write_files():
    for name in ("openat", "write", "close"):
        assert name in STORING_POOL


def test_visualizing_can_reach_gui_socket():
    for name in ("connect", "sendto", "select", "futex", "eventfd2"):
        assert name in VISUALIZING_POOL


def test_loading_can_reach_camera_and_receive():
    for name in ("ioctl", "select", "recvfrom", "openat", "read", "mmap"):
        assert name in LOADING_POOL


def test_paper_named_syscalls_per_type():
    # Spot checks against the partial lists printed in Table 7.
    for name in ("bind", "fstat", "futex", "getcwd", "getpid", "listen",
                 "mkdir", "openat", "recvfrom"):
        assert name in LOADING_POOL, name
    for name in ("getrandom", "gettimeofday", "open", "openat", "read",
                 "close", "clock_gettime"):
        assert name in PROCESSING_POOL, name
    for name in ("access", "connect", "eventfd2", "futex", "getuid",
                 "lseek", "select", "sendto"):
        assert name in VISUALIZING_POOL, name
    for name in ("accept", "close", "dup", "lstat", "mkdir", "umask",
                 "uname", "unlink"):
        assert name in STORING_POOL, name


def test_init_only_set():
    assert INIT_ONLY_SYSCALLS == {"mprotect", "connect"}


def test_every_api_declared_syscalls_within_its_pool():
    """Fig. 12: an agent's allowlist (the pool) covers every syscall its
    APIs require; init-only syscalls are covered by the grace phase."""
    for framework in FRAMEWORKS.values():
        for api in framework:
            spec = api.spec
            if spec.ground_truth is APIType.NEUTRAL:
                continue
            pool = pool_for(spec.ground_truth)
            missing = set(spec.syscalls) - pool
            assert not missing, f"{spec.qualname}: {sorted(missing)}"
            uncovered_init = (
                set(spec.init_syscalls) - pool - INIT_ONLY_SYSCALLS
            )
            assert not uncovered_init, f"{spec.qualname}: {sorted(uncovered_init)}"


def test_neutral_apis_fit_every_pool():
    """Type-neutral APIs can run in any agent, so their syscalls must be
    in the intersection of all pools."""
    intersection = (
        LOADING_POOL & PROCESSING_POOL & VISUALIZING_POOL & STORING_POOL
    )
    for framework in FRAMEWORKS.values():
        for api in framework:
            if api.spec.neutral:
                missing = set(api.spec.syscalls) - intersection
                assert not missing, f"{api.spec.qualname}: {sorted(missing)}"
