"""Every covered API executes its own test case successfully.

This is the reproduction's equivalent of running the frameworks' example
suites: for each API with a dynamic-analysis test case, run it in a
scratch kernel and assert it completes, issues only its declared
syscalls, and (when it returns an array-like) returns finite data.
"""

import numpy as np
import pytest

from repro.frameworks.base import DataObject, ExecutionContext, Tracer
from repro.frameworks.registry import FRAMEWORKS
from repro.sim.kernel import SimKernel

ALL_COVERED = [
    (framework_name, api.spec.name)
    for framework_name, framework in FRAMEWORKS.items()
    for api in framework
    if api.spec.has_test_case
]


@pytest.mark.parametrize("framework_name,api_name", ALL_COVERED)
def test_api_executes_and_respects_declared_syscalls(framework_name, api_name):
    framework = FRAMEWORKS[framework_name]
    api = framework.get(api_name)
    spec = api.spec
    kernel = SimKernel()
    process = kernel.spawn(f"exec:{spec.qualname}", charge=False)
    ctx = ExecutionContext(kernel, process, tracer=Tracer())
    args, kwargs = spec.example_args(ctx)
    result = ctx.invoke(api, *args, **kwargs)

    declared = set(spec.syscalls) | set(spec.init_syscalls)
    used = set(process.syscalls_used())
    undeclared = used - declared
    assert not undeclared, (
        f"{spec.qualname} issued undeclared syscalls: {sorted(undeclared)}"
    )

    if isinstance(result, DataObject) and isinstance(result.data, np.ndarray):
        assert np.all(np.isfinite(result.data)), f"{spec.qualname} returned non-finite data"
    if isinstance(result, np.ndarray):
        assert np.all(np.isfinite(result))
