"""End-to-end integration: the paper's headline results in miniature."""

import pytest

from repro.apps.base import Workload
from repro.apps.suite import SAMPLE_IDS
from repro.attacks.scenarios import run_motivating_example, run_table5_attacks
from repro.bench.runner import average_overhead, overhead_sweep, run_under
from repro.core.runtime import FreePartConfig

WORKLOAD = Workload(items=2, image_size=16)
SMOKE_SAMPLES = (1, 5, 8, 12, 16, 20, 23)


def test_headline_overhead_band():
    """Fig. 13: FreePart's average overhead is a few percent (paper: 3.68%,
    per-app 2.6%-5.7%)."""
    rows = overhead_sweep(SMOKE_SAMPLES, workload=WORKLOAD)
    for row in rows:
        assert 0.0 < row.overhead_percent < 8.0, row.app_name
    assert 1.5 < average_overhead(rows) < 6.0


def test_ldc_ablation_roughly_doubles_overhead():
    """Section 5.2: disabling lazy data copy raises the overhead
    substantially (paper: 3.68% -> 9.7%)."""
    with_ldc = overhead_sweep(SMOKE_SAMPLES, workload=WORKLOAD)
    without_ldc = overhead_sweep(
        SMOKE_SAMPLES, workload=WORKLOAD, config=FreePartConfig(ldc=False)
    )
    assert average_overhead(without_ldc) > 1.7 * average_overhead(with_ldc)


def test_lazy_copy_fraction_is_dominant():
    """Table 12: ~95% of copy operations are lazy."""
    total_lazy = 0
    total = 0
    for sample_id in SMOKE_SAMPLES:
        from repro.apps.suite import make_app

        report = run_under(make_app(sample_id), "freepart", WORKLOAD)
        total_lazy += report.lazy_copies
        total += report.lazy_copies + report.nonlazy_copies
    assert total > 0
    assert total_lazy / total > 0.85


def test_all_table5_attacks_prevented():
    """Section 5: all attacks composed of the Table 5 CVEs are mitigated."""
    results = run_table5_attacks("freepart", workload=WORKLOAD)
    assert all(r.prevented for r in results)


def test_no_false_positives_on_benign_workloads():
    """Correctness: benign test runs execute with no attack detections."""
    from repro.apps.suite import make_app

    for sample_id in SMOKE_SAMPLES:
        report = run_under(make_app(sample_id), "freepart", WORKLOAD)
        assert not report.failed, (sample_id, report.error)
        assert report.crashes == 0, sample_id


def test_freepart_uses_five_processes():
    from repro.apps.suite import make_app

    report = run_under(make_app(8), "freepart", WORKLOAD)
    assert report.processes == 5


def test_table1_matrix_shape():
    """The comparative story of Table 1 in one assertion set."""
    prevented = {}
    for technique in ("none", "memory_based", "code_api", "lib_entire",
                      "lib_individual", "freepart"):
        verdict = run_motivating_example(technique)
        prevented[technique] = sum(
            1 for result in verdict.attacks.values() if result.prevented
        )
    assert prevented["none"] == 0
    assert prevented["memory_based"] == 1
    assert prevented["freepart"] == 5
    assert prevented["lib_individual"] == 5
    assert prevented["none"] < prevented["code_api"] < prevented["freepart"]
    assert prevented["lib_entire"] < prevented["freepart"]


def test_deterministic_reports():
    """Two identical runs produce byte-identical virtual metrics."""
    from repro.apps.suite import make_app

    a = run_under(make_app(3), "freepart", WORKLOAD)
    b = run_under(make_app(3), "freepart", WORKLOAD)
    assert a.virtual_seconds == b.virtual_seconds
    assert a.ipc_messages == b.ipc_messages
    assert a.lazy_copies == b.lazy_copies
