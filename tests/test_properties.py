"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.apitypes import APIType
from repro.core.dataflow import (
    Flow,
    Storage,
    categorize_flows,
    reduce_file_copies,
)
from repro.errors import SegmentationFault
from repro.sim.clock import VirtualClock
from repro.sim.filters import SyscallFilter
from repro.sim.ipc import IpcAccounting
from repro.sim.memory import AddressSpace, PAGE_SIZE, Permission, pages_spanned
from repro.sim.syscalls import SYSCALL_TABLE

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

storages = st.sampled_from(list(Storage))
labels = st.sampled_from(["", "a", "b", "cache"])


@st.composite
def flows(draw):
    source = draw(storages)
    dest = draw(st.one_of(st.none(), storages))
    return Flow(source=source, dest=dest, label=draw(labels))


syscall_names = st.sampled_from(sorted(SYSCALL_TABLE))


# ----------------------------------------------------------------------
# Memory invariants
# ----------------------------------------------------------------------


@given(sizes=st.lists(st.integers(min_value=0, max_value=3 * PAGE_SIZE),
                      min_size=1, max_size=12))
def test_allocations_never_overlap(sizes):
    space = AddressSpace(pid=1)
    buffers = [space.alloc(size) for size in sizes]
    spans = sorted((b.address, b.end) for b in buffers)
    for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
        assert end_a <= start_b


@given(size=st.integers(min_value=1, max_value=4 * PAGE_SIZE))
def test_every_allocated_byte_has_rw_permission(size):
    space = AddressSpace(pid=1)
    buffer = space.alloc(size)
    space.check(buffer.address, buffer.nbytes, Permission.rw())


@given(size=st.integers(min_value=1, max_value=2 * PAGE_SIZE),
       offset=st.integers(min_value=0, max_value=2 * PAGE_SIZE - 1))
def test_readonly_buffer_rejects_write_at_any_offset(size, offset):
    space = AddressSpace(pid=1)
    buffer = space.alloc(size, payload="x")
    space.protect_buffer(buffer.buffer_id, Permission.ro())
    offset = offset % size
    with pytest.raises(SegmentationFault):
        space.raw_write(buffer.address + offset, 1, value="evil")
    assert space.load(buffer.buffer_id) == "x"


@given(address=st.integers(min_value=0, max_value=1 << 30),
       size=st.integers(min_value=0, max_value=1 << 16))
def test_pages_spanned_covers_range_exactly(address, size):
    pages = list(pages_spanned(address, size))
    if size == 0:
        assert pages == []
        return
    assert pages[0] * PAGE_SIZE <= address
    assert (pages[-1] + 1) * PAGE_SIZE >= address + size
    assert pages == sorted(set(pages))


# ----------------------------------------------------------------------
# Flow categorization invariants
# ----------------------------------------------------------------------


@given(flow_list=st.lists(flows(), max_size=8))
def test_categorization_total_on_nonempty(flow_list):
    category = categorize_flows(flow_list)
    if reduce_file_copies(flow_list):
        assert category is None or isinstance(category, APIType)
    else:
        assert category is None


@given(flow_list=st.lists(flows(), min_size=1, max_size=8))
def test_gui_flows_always_win(flow_list):
    gui_flow = Flow(source=Storage.MEM, dest=Storage.GUI)
    assert categorize_flows(flow_list + [gui_flow]) is APIType.VISUALIZING


@given(flow_list=st.lists(flows(), max_size=8))
def test_reduction_idempotent(flow_list):
    once = reduce_file_copies(flow_list)
    twice = reduce_file_copies(once)
    assert once == twice


@given(flow_list=st.lists(flows(), max_size=8))
def test_reduction_never_grows(flow_list):
    assert len(reduce_file_copies(flow_list)) <= len(flow_list)


@given(flow_list=st.lists(flows(), max_size=8))
def test_categorization_insensitive_to_duplicates(flow_list):
    doubled = [f for flow in flow_list for f in (flow, flow)]
    assert categorize_flows(flow_list) == categorize_flows(doubled)


# ----------------------------------------------------------------------
# Filter invariants
# ----------------------------------------------------------------------


@given(allowed=st.lists(syscall_names, max_size=10),
       probe=syscall_names)
def test_filter_decision_matches_membership(allowed, probe):
    built = SyscallFilter(allowed=allowed)
    built.end_init_phase()
    assert built.would_allow(probe).allowed == (probe in set(allowed))


@given(allowed=st.lists(syscall_names, max_size=6),
       init_only=st.lists(syscall_names, max_size=4),
       probe=syscall_names)
def test_end_init_phase_only_tightens(allowed, init_only, probe):
    before = SyscallFilter(allowed=allowed, init_only=init_only)
    after = SyscallFilter(allowed=allowed, init_only=init_only)
    after.end_init_phase()
    if after.would_allow(probe).allowed:
        assert before.would_allow(probe).allowed


# ----------------------------------------------------------------------
# Accounting / clock invariants
# ----------------------------------------------------------------------


@given(charges=st.lists(st.integers(min_value=0, max_value=10**9), max_size=30))
def test_clock_is_sum_of_charges(charges):
    clock = VirtualClock()
    for ns in charges:
        clock.advance(ns)
    assert clock.now_ns == sum(charges)


@given(events=st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**6), st.booleans()),
    max_size=40,
))
def test_ipc_accounting_conserves_totals(events):
    accounting = IpcAccounting()
    for nbytes, lazy in events:
        accounting.record_copy(nbytes, lazy=lazy)
    assert accounting.total_copies == len(events)
    assert accounting.total_copy_bytes == sum(n for n, _ in events)
    if events:
        assert 0.0 <= accounting.lazy_fraction <= 1.0


@given(
    first=st.lists(st.integers(min_value=0, max_value=10**5), max_size=10),
    second=st.lists(st.integers(min_value=0, max_value=10**5), max_size=10),
)
def test_delta_since_is_exactly_the_second_half(first, second):
    accounting = IpcAccounting()
    for nbytes in first:
        accounting.record_message(nbytes)
    snapshot = accounting.snapshot()
    for nbytes in second:
        accounting.record_message(nbytes)
    delta = accounting.delta_since(snapshot)
    assert delta.messages == len(second)
    assert delta.message_bytes == sum(second)


# ----------------------------------------------------------------------
# Partitioner invariants
# ----------------------------------------------------------------------


@settings(deadline=None, max_examples=20)
@given(k=st.integers(min_value=4, max_value=25), seed=st.integers(0, 100))
def test_split_plans_partition_processing_exactly(k, seed):
    import random

    from repro.core.hybrid import HybridAnalyzer
    from repro.core.partitioner import split_processing_plan
    from repro.frameworks.registry import get_framework

    categorization = _categorization()
    plan = split_processing_plan(categorization, k, rng=random.Random(seed))
    assert plan.partition_count == k
    members = [q for p in plan.partitions for q in p.qualnames]
    assert len(members) == len(set(members))  # no API in two partitions


_CAT = None


def _categorization():
    global _CAT
    if _CAT is None:
        from repro.core.hybrid import HybridAnalyzer
        from repro.frameworks.registry import get_framework

        _CAT = HybridAnalyzer().categorize_framework(get_framework("opencv"))
    return _CAT
