"""Stateful-API checkpoint/restore across agent restarts (Appendix A.2.4)."""

import numpy as np
import pytest

from repro.core.agent import CHECKPOINT_INTERVAL
from repro.core.runtime import FreePart
from repro.frameworks.base import Tensor
from repro.frameworks.registry import get_framework


@pytest.fixture
def deployed():
    freepart = FreePart()
    gateway = freepart.deploy(used_apis=list(get_framework("tensorflow")))
    return freepart.kernel, gateway


def train_step(gateway):
    batch = Tensor(np.ones((4, 4)))
    return gateway.call("tensorflow", "estimator_DNNClassifier_train", batch)


def processing_agent(gateway):
    return gateway.agents[1]


def test_global_step_advances_in_agent_state(deployed):
    kernel, gateway = deployed
    results = [train_step(gateway) for _ in range(3)]
    assert [r["global_step"] for r in results] == [1, 2, 3]
    agent = processing_agent(gateway)
    key = "tf.estimator.DNNClassifier.train/global_step"
    assert agent.process.framework_state[key] == 3


def test_crash_without_checkpoint_loses_progress(deployed):
    kernel, gateway = deployed
    for _ in range(3):
        train_step(gateway)
    agent = processing_agent(gateway)
    agent.process.crash("exploited")
    agent.restart()
    # Fewer than CHECKPOINT_INTERVAL stateful calls: nothing was saved.
    assert train_step(gateway)["global_step"] == 1


def test_checkpoint_restores_training_progress(deployed):
    kernel, gateway = deployed
    for _ in range(CHECKPOINT_INTERVAL):
        train_step(gateway)
    agent = processing_agent(gateway)
    assert agent.stats.checkpoints == 1

    # A few more steps *after* the checkpoint, then a crash.
    for _ in range(3):
        train_step(gateway)
    agent.process.crash("exploited")
    agent.restart()
    assert agent.stats.restored_from_checkpoint == 1

    # Training resumes from the checkpointed step, not from zero: the
    # three post-checkpoint steps are re-executed (at-least-once).
    resumed = train_step(gateway)["global_step"]
    assert resumed == CHECKPOINT_INTERVAL + 1


def test_checkpoint_payload_is_a_snapshot(deployed):
    kernel, gateway = deployed
    for _ in range(CHECKPOINT_INTERVAL):
        train_step(gateway)
    agent = processing_agent(gateway)
    snapshot = dict(agent._checkpoint_state)
    train_step(gateway)  # post-checkpoint progress must not leak in
    assert agent._checkpoint_state == snapshot


def test_stateless_apis_do_not_checkpoint(deployed):
    kernel, gateway = deployed
    for _ in range(CHECKPOINT_INTERVAL + 2):
        gateway.call("tensorflow", "relu", Tensor(np.ones(4)))
    agent = processing_agent(gateway)
    assert agent.stats.checkpoints == 0
    assert agent.stats.stateful_calls == 0
