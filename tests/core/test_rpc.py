"""RPC model: refs, handles, sequence tracking, object stores."""

import numpy as np
import pytest

from repro.core.rpc import (
    ObjectRef,
    ObjectStore,
    REF_WIRE_BYTES,
    RemoteHandle,
    RpcRequest,
    RpcResponse,
    SequenceTracker,
)
from repro.errors import StaleObjectRef
from repro.frameworks.base import Mat
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


@pytest.fixture
def process(kernel):
    return kernel.spawn("agent", charge=False)


def test_ref_wire_size_is_constant():
    ref = ObjectRef(1, 0, 2, payload_bytes=10_000_000)
    assert ref.nbytes == REF_WIRE_BYTES


def test_handle_exposes_payload_bytes():
    handle = RemoteHandle(ObjectRef(1, 0, 2, payload_bytes=512))
    assert handle.payload_bytes == 512
    assert handle.nbytes == REF_WIRE_BYTES
    assert "512B" in repr(handle)


def test_request_nbytes_counts_payloads():
    small = RpcRequest(1, "f.op", (ObjectRef(1, 0, 1, 1 << 20),), (), "s")
    big = RpcRequest(1, "f.op", (np.zeros(1 << 17),), (), "s")
    assert small.nbytes < big.nbytes


def test_response_nbytes():
    assert RpcResponse(1, np.zeros(128)).nbytes > RpcResponse(1, None).nbytes


class TestSequenceTracker:
    def test_monotonic_sequence(self):
        tracker = SequenceTracker()
        assert tracker.next_seq() == 1
        assert tracker.next_seq() == 2

    def test_exactly_once_holds_without_retries(self):
        tracker = SequenceTracker()
        for _ in range(3):
            tracker.record_execution(tracker.next_seq())
        assert tracker.exactly_once
        assert tracker.retries == 0

    def test_retry_counted_as_at_least_once(self):
        tracker = SequenceTracker()
        seq = tracker.next_seq()
        tracker.record_execution(seq)
        tracker.record_execution(seq)  # re-executed after restart
        assert not tracker.exactly_once
        assert tracker.retries == 1
        assert tracker.executions_of(seq) == 2


class TestObjectStore:
    def test_register_and_fetch(self, process):
        store = ObjectStore(process)
        payload = Mat(np.ones((2, 2)))
        ref = store.register(payload, state_label="data_loading", tag="img")
        assert ref.owner_pid == process.pid
        assert ref.kind == "mat"
        assert store.fetch(ref) is payload

    def test_register_records_origin_state(self, process):
        store = ObjectStore(process)
        ref = store.register(Mat(np.ones(1)), state_label="data_loading")
        buffer = process.memory.get_buffer(ref.buffer_id)
        assert buffer.origin_state == "data_loading"

    def test_fetch_wrong_pid_is_stale(self, kernel, process):
        other = kernel.spawn("other", charge=False)
        store = ObjectStore(process)
        ref = store.register(Mat(np.ones(1)), state_label="s")
        with pytest.raises(StaleObjectRef):
            ObjectStore(other).fetch(ref)

    def test_fetch_after_generation_bump_is_stale(self, process):
        store = ObjectStore(process)
        ref = store.register(Mat(np.ones(1)), state_label="s")
        process.generation += 1  # as a restart would do
        with pytest.raises(StaleObjectRef):
            store.fetch(ref)
