"""Discussion/appendix features: multi-threading (Section 6) and manual
sub-partitioning with finer-grained filters (Appendix A.6)."""

import numpy as np
import pytest

from repro.apps.facial import FacialRecognitionApp
from repro.apps.suite import used_api_objects
from repro.core.apitypes import APIType
from repro.core.hybrid import HybridAnalyzer
from repro.core.partitioner import sub_partition_plan
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import ReproError
from repro.frameworks.base import Mat
from repro.frameworks.registry import get_framework
from repro.sim.kernel import SimKernel


def deploy(config=None, used=None):
    freepart = FreePart(config=config)
    return freepart.kernel, freepart.deploy(used_apis=used)


class TestMultiThreading:
    def test_thread_gateways_share_host_but_not_agents(self):
        kernel, main = deploy()
        worker = main.for_thread("worker")
        assert worker.host is main.host
        main_pids = {a.process.pid for a in main.agents.values()}
        worker_pids = {a.process.pid for a in worker.agents.values()}
        assert not (main_pids & worker_pids)
        assert len(kernel.processes(role="agent")) == 8

    def test_threads_have_independent_state_machines(self):
        kernel, main = deploy()
        worker = main.for_thread()
        kernel.fs.write_file("/i.png", np.ones((8, 8)))
        main.call("opencv", "imread", "/i.png")
        assert main.machine.state.value == "data_loading"
        assert worker.machine.state.value == "initialization"

    def test_interleaved_pipelines_do_not_interfere(self):
        kernel, main = deploy()
        worker = main.for_thread()
        kernel.fs.write_file("/i.png", np.ones((8, 8)))
        a = main.call("opencv", "imread", "/i.png")
        b = worker.call("opencv", "imread", "/i.png")
        a2 = main.call("opencv", "GaussianBlur", a)
        b2 = worker.call("opencv", "erode", b)
        assert a2.ref.owner_pid != b2.ref.owner_pid
        # Both threads produce correct results.
        assert main.materialize(a2).shape == (8, 8)
        assert worker.materialize(b2).shape == (8, 8)

    def test_thread_crash_contained_to_its_own_agents(self):
        from repro.attacks.exploits import DosExploit
        from repro.attacks.payloads import CraftedInput, benign_image
        from repro.errors import FrameworkCrash

        kernel, main = deploy()
        worker = main.for_thread()
        crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
        kernel.fs.write_file("/evil.png", crafted)
        with pytest.raises(FrameworkCrash):
            worker.call("opencv", "imread", "/evil.png")
        assert worker.total_crashes() == 1
        assert main.total_crashes() == 0
        # the main thread's loading agent is untouched
        kernel.fs.write_file("/ok.png", np.ones((4, 4)))
        main.call("opencv", "imread", "/ok.png")


class TestSubPartitioning:
    FIG12_SPLIT = {
        APIType.LOADING: [
            ["cv2.CascadeClassifier_load"],
            ["cv2.VideoCapture", "cv2.VideoCapture_read"],
        ],
    }

    @pytest.fixture(scope="class")
    def categorization(self):
        return HybridAnalyzer().categorize_framework(get_framework("opencv"))

    def test_plan_shape(self, categorization):
        plan = sub_partition_plan(categorization, self.FIG12_SPLIT)
        labels = [p.label for p in plan.partitions]
        assert "data_loading#0" in labels
        assert "data_loading#1" in labels
        assert "data_loading#rest" in labels
        assert "data_processing" in labels  # untouched types keep one agent

    def test_rejects_wrong_type_members(self, categorization):
        with pytest.raises(ReproError):
            sub_partition_plan(categorization, {
                APIType.LOADING: [["cv2.GaussianBlur"]],
            })

    def test_rejects_duplicates(self, categorization):
        with pytest.raises(ReproError):
            sub_partition_plan(categorization, {
                APIType.LOADING: [["cv2.imread"], ["cv2.imread"]],
            })

    def test_fig12_finer_grained_filters(self):
        """A.6: per-group filters — the classifier-load agent loses
        access to ioctl, which only VideoCapture needs."""
        app = FacialRecognitionApp()
        config = FreePartConfig(subpartitions=self.FIG12_SPLIT)
        kernel, gateway = deploy(config, used=used_api_objects(app))
        by_label = {a.partition.label: a for a in gateway.agents.values()}
        classifier_agent = by_label["data_loading#0"]
        capture_agent = by_label["data_loading#1"]
        assert "ioctl" not in classifier_agent.process.filter.allowed_names
        assert "ioctl" in capture_agent.process.filter.allowed_names
        # Tight filters are much smaller than the Table 7 pool (43).
        assert len(classifier_agent.process.filter.allowed_names) < 10

    def test_subpartitioned_app_still_runs_correctly(self):
        from repro.apps.base import Workload, execute_app

        app = FacialRecognitionApp()
        config = FreePartConfig(subpartitions=self.FIG12_SPLIT)
        freepart = FreePart(config=config)
        gateway = freepart.deploy(used_apis=used_api_objects(app))
        report = execute_app(app, gateway, Workload(items=3, image_size=16))
        assert not report.failed, report.error
        assert report.crashes == 0
        assert gateway.process_count == 6  # host + 5 agents (no remainder)

    def test_subpartitioning_costs_extra_ipc(self):
        """Appendix A.6: the two VideoCapture methods share data, so
        splitting them from the classifier costs IPC but keeping them
        together does not add cross-agent copies."""
        from repro.apps.base import Workload, execute_app

        def run(config):
            app = FacialRecognitionApp()
            freepart = FreePart(config=config)
            gateway = freepart.deploy(used_apis=used_api_objects(app))
            return execute_app(app, gateway, Workload(items=4, image_size=16))

        default = run(None)
        split = run(FreePartConfig(subpartitions=self.FIG12_SPLIT))
        assert split.virtual_seconds >= default.virtual_seconds
