"""Checkpoint atomicity (satellite): torn writes never corrupt restore.

A checkpoint is sealed with a content checksum computed over the
*intended* snapshot before the write; a fault that tears the write
stores truncated state under the full checksum.  Restore walks
generations newest-to-oldest, detects the mismatch, and falls back to
the previous intact generation — a torn checkpoint costs progress,
never correctness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import (
    CHECKPOINT_INTERVAL,
    CheckpointRecord,
    checkpoint_checksum,
)
from repro.core.runtime import FreePart
from repro.faults.injector import FaultInjector
from repro.faults.plan import NoFaultPlan
from repro.frameworks.base import Tensor
from repro.frameworks.registry import get_framework


class TearNextCheckpoint(NoFaultPlan):
    """Tear the next checkpoint write at a fixed offset, then disarm."""

    def __init__(self, offset=0):
        self.offset = offset
        self.armed = True

    def checkpoint_tear(self, agent_label, items):
        if not self.armed or items <= 0:
            return None
        self.armed = False
        return min(self.offset, items - 1)


@pytest.fixture
def deployed():
    freepart = FreePart()
    gateway = freepart.deploy(used_apis=list(get_framework("tensorflow")))
    return freepart.kernel, gateway


def train_step(gateway):
    return gateway.call(
        "tensorflow", "estimator_DNNClassifier_train", Tensor(np.ones((4, 4)))
    )


def test_crash_during_checkpoint_restores_previous_generation(deployed):
    kernel, gateway = deployed
    # Generation 1 lands intact.
    for _ in range(CHECKPOINT_INTERVAL):
        train_step(gateway)
    agent = gateway.agents[1]
    assert agent.stats.checkpoints == 1

    # Generation 2 is torn by an injected fault mid-write.
    kernel.inject_faults(FaultInjector(TearNextCheckpoint(offset=0)))
    for _ in range(CHECKPOINT_INTERVAL):
        train_step(gateway)
    assert agent.stats.checkpoints == 2
    assert agent.stats.checkpoint_failures == 1

    agent.process.crash("exploited")
    agent.restart()
    # Restore skipped the torn generation 2 and fell back to 1.
    assert agent.stats.torn_checkpoints_detected == 1
    assert agent.stats.restored_from_checkpoint == 1
    assert train_step(gateway)["global_step"] == CHECKPOINT_INTERVAL + 1


def test_torn_first_generation_restores_nothing(deployed):
    kernel, gateway = deployed
    kernel.inject_faults(FaultInjector(TearNextCheckpoint(offset=0)))
    for _ in range(CHECKPOINT_INTERVAL):
        train_step(gateway)
    agent = gateway.agents[1]
    assert agent.stats.checkpoint_failures == 1
    agent.process.crash("exploited")
    agent.restart()
    # No intact generation exists: training restarts from step one.
    assert agent.stats.torn_checkpoints_detected == 1
    assert train_step(gateway)["global_step"] == 1


def test_checkpoint_after_a_tear_repairs_durability(deployed):
    kernel, gateway = deployed
    kernel.inject_faults(FaultInjector(TearNextCheckpoint(offset=0)))
    for _ in range(2 * CHECKPOINT_INTERVAL):  # torn gen 1, intact gen 2
        train_step(gateway)
    agent = gateway.agents[1]
    agent.process.crash("exploited")
    agent.restart()
    assert train_step(gateway)["global_step"] == 2 * CHECKPOINT_INTERVAL + 1


@given(
    items=st.integers(min_value=1, max_value=8),
    offset=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=50, deadline=None)
def test_any_tear_offset_fails_validation(items, offset):
    """Property: a write torn at ANY offset strictly before the end is
    detected — truncated state never passes the full-state checksum."""
    state = {f"api-{i}/step": i + 1 for i in range(items)}
    checksum = checkpoint_checksum(state)
    intact = CheckpointRecord(1, items, dict(state), checksum)
    assert intact.validate()

    tear_at = min(offset, items - 1)
    kept = sorted(state)[:tear_at]
    torn = CheckpointRecord(
        2, items, {key: state[key] for key in kept}, checksum
    )
    assert not torn.validate()


@given(st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None)
def test_value_corruption_also_fails_validation(items):
    """Same-length state with one mutated value is caught too: the seal
    is a content checksum, not a record count."""
    state = {f"api-{i}/step": i + 1 for i in range(items)}
    record = CheckpointRecord(1, items, dict(state), checkpoint_checksum(state))
    corrupted = dict(state)
    corrupted[sorted(state)[0]] = 999
    bad = CheckpointRecord(1, items, corrupted, record.checksum)
    assert not bad.validate()
