"""ChannelFull handling at the gateway (satellite): backoff vs fail-fast.

Transient fullness (an injected stall, or a momentarily full ring
buffer) is retried with exponential backoff charged to the virtual
clock.  Permanent fullness — a message larger than the ring buffer
itself — raises immediately: no amount of waiting can deliver it.
"""

import numpy as np
import pytest

from repro.core.runtime import SEND_BACKOFF_RETRIES, FreePart
from repro.errors import ChannelFull
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, NoFaultPlan
from repro.frameworks.registry import get_framework


class StallRequests(NoFaultPlan):
    """Stall the first ``count`` request sends (infinite if None)."""

    def __init__(self, count=None):
        self.count = count

    def channel_verdict(self, channel_name, kind, nbytes):
        if kind != "request":
            return None
        if self.count is None:
            return FaultKind.CHANNEL_STALL
        if self.count > 0:
            self.count -= 1
            return FaultKind.CHANNEL_STALL
        return None


@pytest.fixture
def deployed():
    freepart = FreePart()
    gateway = freepart.deploy(used_apis=list(get_framework("opencv")))
    return freepart.kernel, gateway


def load(kernel, gateway):
    kernel.fs.write_file("/i.png", np.ones((8, 8)))
    return gateway.call("opencv", "imread", "/i.png")


def test_transient_stall_retried_with_backoff(deployed):
    kernel, gateway = deployed
    kernel.inject_faults(FaultInjector(StallRequests(count=2)))
    before = kernel.clock.now_ns
    handle = load(kernel, gateway)
    assert handle is not None  # the call ultimately succeeded
    assert gateway.send_backoff_retries == 2
    assert kernel.clock.now_ns > before  # the backoff waits were charged


def test_backoff_waits_grow_exponentially(deployed):
    kernel, gateway = deployed
    kernel.enable_tracing()
    kernel.inject_faults(FaultInjector(StallRequests(count=3)))
    load(kernel, gateway)
    waits = [
        span.attrs["backoff_ns"]
        for span in kernel.tracer.closed_spans()
        if span.name == "send_backoff"
    ]
    assert len(waits) == 3
    assert waits[1] == 2 * waits[0]
    assert waits[2] == 2 * waits[1]


def test_permanent_stall_gives_up_after_the_retry_budget(deployed):
    kernel, gateway = deployed
    kernel.inject_faults(FaultInjector(StallRequests(count=None)))
    with pytest.raises(ChannelFull):
        load(kernel, gateway)
    assert gateway.send_backoff_retries == SEND_BACKOFF_RETRIES


def test_oversized_message_raises_immediately(deployed):
    """A payload bigger than the ring buffer can never be delivered:
    the send fails permanent on the first attempt, with zero backoff."""
    kernel, gateway = deployed
    channel = gateway.agents[0].channel.request
    payload = b"x" * (channel.capacity_bytes + 1)
    with pytest.raises(ChannelFull) as excinfo:
        gateway._send_with_backoff(channel, gateway.host.pid,
                                   "request", payload)
    assert excinfo.value.permanent is True
    assert gateway.send_backoff_retries == 0
