"""The API hooking façade (repro.core.hooks)."""

import numpy as np
import pytest

from repro.core.gateway import NativeGateway
from repro.core.hooks import FrameworkNamespace, hook, hook_all
from repro.core.runtime import FreePart
from repro.core.rpc import RemoteHandle
from repro.errors import ReproError
from repro.sim.kernel import SimKernel


@pytest.fixture
def native():
    return NativeGateway(SimKernel())


def test_hooked_code_reads_like_the_original(native):
    cv2 = hook(native, "opencv")
    native.kernel.fs.write_file("/in.png", np.ones((8, 8, 3)))
    frame = cv2.imread("/in.png")
    blurred = cv2.GaussianBlur(frame)
    cv2.imshow("w", blurred)
    cv2.imwrite("/out.png", blurred)
    assert native.kernel.fs.exists("/out.png")
    assert native.kernel.gui.window("w") is not None


def test_hooked_calls_route_to_agents_under_freepart():
    freepart = FreePart()
    gateway = freepart.deploy()
    cv2 = hook(gateway, "opencv")
    freepart.kernel.fs.write_file("/in.png", np.ones((8, 8)))
    frame = cv2.imread("/in.png")
    assert isinstance(frame, RemoteHandle)
    assert gateway.agents[0].stats.requests == 1


def test_unknown_framework_fails_at_hook_time(native):
    with pytest.raises(ReproError):
        hook(native, "not-a-framework")


def test_unknown_api_raises_attribute_error(native):
    cv2 = hook(native, "opencv")
    with pytest.raises(AttributeError):
        cv2.imread_v99


def test_stub_identity_is_cached(native):
    cv2 = hook(native, "opencv")
    assert cv2.imread is cv2.imread


def test_stub_carries_doc_and_qualname(native):
    cv2 = hook(native, "opencv")
    assert cv2.imread.qualname == "cv2.imread"
    assert "image" in cv2.imread.doc.lower()
    assert "cv2.imread" in repr(cv2.imread)


def test_dir_lists_apis(native):
    cv2 = hook(native, "opencv")
    listing = dir(cv2)
    assert "imread" in listing and "imshow" in listing


def test_hook_all(native):
    spaces = hook_all(native, "opencv", "pytorch")
    assert isinstance(spaces["pytorch"], FrameworkNamespace)
    with pytest.raises(ReproError):
        hook_all(native)
