"""Agent processes: execution, materialization, checkpointing."""

import numpy as np
import pytest

from repro.core.agent import AgentProcess, CHECKPOINT_INTERVAL
from repro.core.apitypes import APIType
from repro.core.partitioner import Partition
from repro.core.rpc import ObjectRef, RpcRequest
from repro.errors import AgentUnavailable, StaleObjectRef
from repro.frameworks.base import Mat
from repro.frameworks.registry import get_api
from repro.sim.filters import FilterSpec
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


def make_agent(kernel, api_type=APIType.PROCESSING, qualnames=("cv2.GaussianBlur",),
               filter_spec=None, restrict=False):
    partition = Partition(index=1, label=api_type.value, api_type=api_type,
                          qualnames=tuple(qualnames))
    return AgentProcess(kernel, partition, filter_spec=filter_spec,
                        restrict_syscalls=restrict)


def request_for(agent, qualname, *args, state="data_processing"):
    return RpcRequest(
        seq=agent.sequence.next_seq(), api_qualname=qualname,
        args=args, kwargs=(), state_label=state,
    )


def no_refs(ref):
    raise AssertionError("resolver should not be called")


def test_execute_runs_api_and_counts(kernel):
    agent = make_agent(kernel)
    api = get_api("opencv", "GaussianBlur")
    request = request_for(agent, api.spec.qualname, Mat(np.ones((4, 4))))
    response = agent.execute(api, request, no_refs, ldc=False)
    assert isinstance(response.value, Mat)
    assert agent.stats.requests == 1


def test_ldc_result_registered_as_ref(kernel):
    agent = make_agent(kernel)
    api = get_api("opencv", "GaussianBlur")
    request = request_for(agent, api.spec.qualname, Mat(np.ones((4, 4))))
    response = agent.execute(api, request, no_refs, ldc=True)
    assert isinstance(response.value, ObjectRef)
    assert response.value.owner_pid == agent.process.pid
    # and it is fetchable locally
    assert isinstance(agent.fetch_local(response.value), Mat)


def test_local_ref_materializes_without_copy(kernel):
    agent = make_agent(kernel)
    api = get_api("opencv", "GaussianBlur")
    first = agent.execute(
        api, request_for(agent, api.spec.qualname, Mat(np.ones((4, 4)))),
        no_refs, ldc=True,
    )
    before = kernel.ipc.lazy_copies
    agent.execute(
        api, request_for(agent, api.spec.qualname, first.value),
        no_refs, ldc=True,
    )
    assert kernel.ipc.lazy_copies == before


def test_foreign_ref_copied_lazily(kernel):
    owner = kernel.spawn("owner", charge=False)
    payload = Mat(np.ones((8, 8)))
    buffer = owner.memory.alloc_object(payload, tag="img")
    ref = ObjectRef(owner.pid, owner.generation, buffer.buffer_id,
                    payload.nbytes, kind="mat")
    agent = make_agent(kernel)
    api = get_api("opencv", "GaussianBlur")
    agent.execute(api, request_for(agent, api.spec.qualname, ref),
                  lambda r: payload, ldc=True)
    assert kernel.ipc.lazy_copies == 1


def test_nested_list_refs_resolved(kernel):
    owner = kernel.spawn("owner", charge=False)
    payload = Mat(np.ones((4, 4)))
    buffer = owner.memory.alloc_object(payload, tag="img")
    ref = ObjectRef(owner.pid, owner.generation, buffer.buffer_id,
                    payload.nbytes, kind="mat")
    agent = make_agent(kernel, api_type=APIType.STORING)
    api = get_api("opencv", "imwritemulti")
    request = request_for(agent, api.spec.qualname, "/out.tiff", [ref])
    response = agent.execute(api, request, lambda r: payload, ldc=True)
    assert response.value is True


def test_restart_invalidates_store_and_bumps_generation(kernel):
    agent = make_agent(kernel)
    api = get_api("opencv", "GaussianBlur")
    response = agent.execute(
        api, request_for(agent, api.spec.qualname, Mat(np.ones((2, 2)))),
        no_refs, ldc=True,
    )
    old_pid = agent.process.pid
    agent.process.crash("exploited")
    agent.restart()
    assert agent.process.pid != old_pid
    assert agent.stats.restarts == 1
    with pytest.raises(StaleObjectRef):
        agent.fetch_local(response.value)


def test_restart_reinstalls_sealed_filter(kernel):
    spec = FilterSpec(allowed=frozenset({"brk"}))
    agent = make_agent(kernel, filter_spec=spec, restrict=True)
    agent.process.crash("x")
    agent.restart()
    assert agent.process.filter.sealed
    assert agent.process.filter.allowed_names == {"brk"}


def test_require_alive(kernel):
    agent = make_agent(kernel)
    agent.require_alive()
    agent.process.crash("x")
    with pytest.raises(AgentUnavailable):
        agent.require_alive()


def test_stateful_api_checkpointing(kernel):
    agent = make_agent(kernel)
    api = get_api("pytorch", "backward")  # DATA_STATE stateful
    for _ in range(CHECKPOINT_INTERVAL):
        request = request_for(agent, api.spec.qualname,
                              Mat(np.ones(4)), state="data_processing")
        agent.execute(api, request, no_refs, ldc=False)
    assert agent.stats.stateful_calls == CHECKPOINT_INTERVAL
    assert agent.stats.checkpoints == 1
    assert api.spec.qualname in agent.checkpointed_state


def test_restart_restores_from_checkpoint_flag(kernel):
    agent = make_agent(kernel)
    api = get_api("pytorch", "backward")
    agent.execute(
        api, request_for(agent, api.spec.qualname, Mat(np.ones(2))),
        no_refs, ldc=False,
    )
    agent.process.crash("x")
    agent.restart()
    assert agent.stats.restored_from_checkpoint == 1
