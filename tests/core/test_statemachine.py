"""Temporal state machine and Fig. 3 permission enforcement."""

import pytest

from repro.core.apitypes import APIType, FrameworkState
from repro.core.statemachine import TemporalStateMachine
from repro.errors import SegmentationFault
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


def machine_for(kernel, processes, **kwargs):
    return TemporalStateMachine(processes=lambda: processes, **kwargs)


def test_starts_in_initialization(kernel):
    machine = machine_for(kernel, [])
    assert machine.state is FrameworkState.INITIALIZATION


def test_transition_on_new_type(kernel):
    machine = machine_for(kernel, [])
    transition = machine.observe_call(APIType.LOADING)
    assert transition is not None
    assert machine.state is FrameworkState.LOADING
    assert transition.previous is FrameworkState.INITIALIZATION


def test_same_type_no_transition(kernel):
    machine = machine_for(kernel, [])
    machine.observe_call(APIType.LOADING)
    assert machine.observe_call(APIType.LOADING) is None
    assert machine.transition_count() == 1


def test_neutral_never_transitions(kernel):
    machine = machine_for(kernel, [])
    machine.observe_call(APIType.LOADING)
    assert machine.observe_call(APIType.PROCESSING, neutral=True) is None
    assert machine.state is FrameworkState.LOADING


def test_agent_buffers_become_readonly_on_transition(kernel):
    agent = kernel.spawn("agent", role="agent", charge=False)
    machine = machine_for(kernel, [agent])
    machine.observe_call(APIType.LOADING)
    buffer = agent.memory.alloc_object("image", tag="img",
                                       origin_state="data_loading")
    transition = machine.observe_call(APIType.PROCESSING)
    assert transition.protected_buffers == 1
    with pytest.raises(SegmentationFault):
        agent.memory.store(buffer.buffer_id, "evil")


def test_host_buffers_need_annotation(kernel):
    host = kernel.spawn("host", role="host", charge=False)
    annotated = machine_for(kernel, [host], annotated_tags=["template"])
    host.memory.alloc_object([1], tag="template", origin_state="initialization")
    host.memory.alloc_object([2], tag="scratch", origin_state="initialization")
    transition = annotated.observe_call(APIType.LOADING)
    assert transition.protected_buffers == 1
    template = host.memory.find_buffer("template")
    scratch = host.memory.find_buffer("scratch")
    assert not host.memory.is_writable(template.buffer_id)
    assert host.memory.is_writable(scratch.buffer_id)


def test_fig3_timeline_template_then_omrcrop(kernel):
    """Fig. 3: template RO at the imread call; OMRCrop RO when
    processing begins; both RO afterwards."""
    host = kernel.spawn("host", role="host", charge=False)
    machine = machine_for(
        kernel, [host], annotated_tags=["template", "OMRCrop"]
    )
    template = host.memory.alloc_object("t", tag="template",
                                        origin_state=machine.state_label)
    machine.observe_call(APIType.LOADING)          # imread
    assert not host.memory.is_writable(template.buffer_id)
    omrcrop = host.memory.alloc_object("img", tag="OMRCrop",
                                       origin_state=machine.state_label)
    assert host.memory.is_writable(omrcrop.buffer_id)  # writable during loading
    machine.observe_call(APIType.PROCESSING)       # GaussianBlur
    assert not host.memory.is_writable(omrcrop.buffer_id)
    machine.observe_call(APIType.VISUALIZING)      # imshow
    assert not host.memory.is_writable(template.buffer_id)
    assert not host.memory.is_writable(omrcrop.buffer_id)


def test_enforce_false_tracks_but_does_not_protect(kernel):
    agent = kernel.spawn("a", role="agent", charge=False)
    machine = machine_for(kernel, [agent], enforce=False)
    machine.observe_call(APIType.LOADING)
    buffer = agent.memory.alloc_object("x", tag="x", origin_state="data_loading")
    machine.observe_call(APIType.PROCESSING)
    assert agent.memory.is_writable(buffer.buffer_id)
    assert machine.transition_count() == 2


def test_dead_processes_skipped(kernel):
    agent = kernel.spawn("a", role="agent", charge=False)
    machine = machine_for(kernel, [agent])
    machine.observe_call(APIType.LOADING)
    agent.memory.alloc_object("x", tag="x", origin_state="data_loading")
    agent.crash("dead")
    transition = machine.observe_call(APIType.PROCESSING)
    assert transition.protected_buffers == 0


def test_states_visited_and_reset(kernel):
    machine = machine_for(kernel, [])
    machine.observe_call(APIType.LOADING)
    machine.observe_call(APIType.PROCESSING)
    assert FrameworkState.PROCESSING in machine.states_visited()
    machine.reset()
    assert machine.state is FrameworkState.INITIALIZATION
    assert machine.transition_count() == 0
