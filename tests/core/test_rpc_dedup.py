"""RPC dedup (satellite regression): a lost reply must not double-apply.

The hazard: the host sends ``train`` to the processing agent, the agent
applies the stateful effect (global_step += 1), and the reply is lost in
flight.  The gateway retransmits the same request; without dedup the
agent would apply the step twice.  The reply cache answers the
retransmission with the cached response instead.
"""

import numpy as np
import pytest

from repro.core.runtime import FreePart
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, NoFaultPlan
from repro.frameworks.base import Tensor
from repro.frameworks.registry import get_framework


class DropNth(NoFaultPlan):
    """Drop the n-th send of one message kind; deliver everything else."""

    def __init__(self, kind, nth=1):
        self.kind = kind
        self.countdown = nth

    def channel_verdict(self, channel_name, kind, nbytes):
        if kind == self.kind and self.countdown > 0:
            self.countdown -= 1
            if self.countdown == 0:
                return FaultKind.IPC_DROP
        return None


class DuplicateNth(NoFaultPlan):
    """Duplicate the n-th send of one message kind."""

    def __init__(self, kind, nth=1):
        self.kind = kind
        self.countdown = nth

    def channel_verdict(self, channel_name, kind, nbytes):
        if kind == self.kind and self.countdown > 0:
            self.countdown -= 1
            if self.countdown == 0:
                return FaultKind.IPC_DUPLICATE
        return None


@pytest.fixture
def deployed():
    freepart = FreePart()
    gateway = freepart.deploy(used_apis=list(get_framework("tensorflow")))
    return freepart.kernel, gateway


def train_step(gateway):
    return gateway.call(
        "tensorflow", "estimator_DNNClassifier_train", Tensor(np.ones((4, 4)))
    )


def processing_agent(gateway):
    return gateway.agents[1]


def test_lost_reply_retried_without_double_apply(deployed):
    kernel, gateway = deployed
    kernel.inject_faults(FaultInjector(DropNth("response")))
    result = train_step(gateway)
    # The retransmitted request was answered from the reply cache: the
    # stateful counter advanced exactly once.
    assert result["global_step"] == 1
    agent = processing_agent(gateway)
    assert gateway.retransmits == 1
    assert agent.stats.deduped_requests == 1
    assert agent.sequence.duplicates_suppressed == 1
    assert agent.stats.requests == 1  # one real execution
    # Later traffic is unaffected and the counter stays consistent.
    assert train_step(gateway)["global_step"] == 2


def test_duplicated_request_applies_once(deployed):
    kernel, gateway = deployed
    kernel.inject_faults(FaultInjector(DuplicateNth("request")))
    result = train_step(gateway)
    assert result["global_step"] == 1
    agent = processing_agent(gateway)
    assert agent.stats.deduped_requests == 1
    assert agent.process.framework_state[
        "tf.estimator.DNNClassifier.train/global_step"
    ] == 1
    assert train_step(gateway)["global_step"] == 2


def test_lost_request_retransmitted(deployed):
    kernel, gateway = deployed
    kernel.inject_faults(FaultInjector(DropNth("request")))
    assert train_step(gateway)["global_step"] == 1
    agent = processing_agent(gateway)
    # The first copy never reached the agent: no dedup needed, exactly
    # one execution, one retransmission.
    assert gateway.retransmits == 1
    assert agent.stats.deduped_requests == 0
    assert agent.stats.requests == 1


def test_reply_cache_dies_with_the_process(deployed):
    kernel, gateway = deployed
    train_step(gateway)
    agent = processing_agent(gateway)
    assert agent._reply_cache
    agent.process.crash("exploited")
    agent.restart()
    # Restart downgrades to at-least-once: the cache is gone.
    assert not agent._reply_cache
    assert train_step(gateway)["global_step"] == 1  # state not restored
