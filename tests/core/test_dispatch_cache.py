"""The per-call-site dispatch cache and prebuilt RPC frame templates.

The cache must make steady-state dispatch cheaper without ever routing
around enforcement: any state-machine transition flushes it, cached
dispatches still drive ``observe_call``, and a restarted agent's frame
template is rebuilt before the next send is framed.
"""

import numpy as np
import pytest

from repro.core.apitypes import FrameworkState
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import FrameworkCrash, SegmentationFault
from repro.sim.memory import MemoryLayout


def fresh(config=None):
    freepart = FreePart(config=config)
    gateway = freepart.deploy()
    return freepart.kernel, gateway


def write_image(kernel, path="/in.png", seed=0):
    rng = np.random.default_rng(seed)
    kernel.fs.write_file(path, rng.integers(0, 256, (16, 16, 3)).astype(float))
    return path


class TestDispatchCache:
    def test_repeat_calls_hit_the_cache(self):
        kernel, gateway = fresh()
        path = write_image(kernel)
        for _ in range(5):
            gateway.call("opencv", "imread", path)
        stats = gateway.dispatch_stats
        assert stats.hits >= 3  # steady-state calls served from cache
        assert stats.misses >= 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_state_transition_invalidates_the_cache(self):
        kernel, gateway = fresh()
        path = write_image(kernel)
        handle = gateway.call("opencv", "imread", path)
        gateway.call("opencv", "imread", path)
        gateway.call("opencv", "imread", path)  # warm
        invalidations = gateway.dispatch_stats.invalidations
        gateway.call("opencv", "GaussianBlur", handle)  # LOADING->PROCESSING
        gateway.call("opencv", "imread", path)  # flushed: must re-resolve
        assert gateway.dispatch_stats.invalidations > invalidations

    def test_cached_dispatch_still_advances_the_state_machine(self):
        kernel, gateway = fresh()
        path = write_image(kernel)
        handle = gateway.call("opencv", "imread", path)
        gateway.call("opencv", "imread", path)  # cache warm for imread
        gateway.call("opencv", "GaussianBlur", handle)
        assert gateway.machine.state is FrameworkState.PROCESSING
        # Re-dispatching the cached call site must still transition back.
        gateway.call("opencv", "imread", path)
        assert gateway.machine.state is FrameworkState.LOADING

    def test_stale_cache_cannot_bypass_frozen_write_sigsegv(self):
        """The security property: a warm cache must not skip the
        ``observe_call`` that arms temporal freezing, so a write to the
        annotated buffer after cached dispatches still faults."""
        layout = MemoryLayout(name="t", tag="template", nbytes=64)
        kernel, gateway = fresh(FreePartConfig(annotations=(layout,)))
        gateway.host_alloc("template", [1, 2, 3])
        path = write_image(kernel)
        for _ in range(4):  # the last three dispatches are cache hits
            gateway.call("opencv", "imread", path)
        assert gateway.dispatch_stats.hits >= 2
        with pytest.raises(SegmentationFault):
            gateway.host_write("template", [9])

    def test_hit_rate_is_zero_before_any_dispatch(self):
        kernel, gateway = fresh()
        assert gateway.dispatch_stats.hit_rate == 0.0


class TestFrameTemplates:
    def test_first_send_builds_then_reuses_the_template(self):
        kernel, gateway = fresh()
        path = write_image(kernel)
        gateway.call("opencv", "imread", path)
        assert gateway.dispatch_stats.frame_rebuilds == 1
        framed_after_first = kernel.ipc.framed_messages
        gateway.call("opencv", "imread", path)
        gateway.call("opencv", "imread", path)
        # Template reused: no rebuild, both roundtrips fully framed.
        assert gateway.dispatch_stats.frame_rebuilds == 1
        assert kernel.ipc.framed_messages == framed_after_first + 4

    def test_framed_roundtrip_is_cheaper(self):
        kernel, gateway = fresh()
        path = write_image(kernel)
        gateway.call("opencv", "imread", path)  # unframed: builds template

        def call_ns():
            start = kernel.clock.now_ns
            gateway.call("opencv", "imread", path)
            return kernel.clock.now_ns - start

        second = call_ns()
        third = call_ns()
        assert second == third  # steady state is stable
        cost = kernel.clock.cost_model
        discount = cost.ipc_message_ns - cost.ipc_framed_message_ns
        assert discount > 0
        # Both directions of the roundtrip enjoy the framed discount.
        assert cost.message_cost(framed=True) == cost.ipc_framed_message_ns

    def test_restart_forces_a_frame_rebuild(self):
        """A stale template must never frame a message for a process it
        was not built against: the restarted agent's first roundtrip is
        unframed while the template is rebuilt."""
        from repro.attacks.exploits import DosExploit
        from repro.attacks.payloads import CraftedInput, benign_image

        kernel, gateway = fresh()
        path = write_image(kernel)
        gateway.call("opencv", "imread", path)
        rebuilds = gateway.dispatch_stats.frame_rebuilds
        crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
        kernel.fs.write_file("/evil.png", crafted)
        with pytest.raises(FrameworkCrash):
            gateway.call("opencv", "imread", "/evil.png")
        framed_before = kernel.ipc.framed_messages
        gateway.call("opencv", "imread", path)  # restarts the agent
        assert gateway.dispatch_stats.frame_rebuilds == rebuilds + 1
        # The post-restart request went out unframed (template rebuild);
        # only the response of that roundtrip could have been framed.
        assert kernel.ipc.framed_messages - framed_before <= 1
        gateway.call("opencv", "imread", path)
        assert gateway.dispatch_stats.frame_rebuilds == rebuilds + 1
