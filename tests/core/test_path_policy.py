"""Designated-path restriction and the restart budget (extensions of
Section 4.4's argument checks and restart support)."""

import numpy as np
import pytest

from repro.apps.base import Workload, execute_app
from repro.apps.suite import make_app, used_api_objects
from repro.attacks.exploits import DosExploit
from repro.attacks.payloads import CraftedInput, benign_image
from repro.core.apitypes import APIType
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import AgentUnavailable, FrameworkCrash, SyscallDenied
from repro.sim.filters import SyscallFilter
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=2, image_size=16)


class TestPathRestriction:
    def test_filter_checks_file_paths(self):
        built = SyscallFilter(allowed=["openat", "read"],
                              allowed_path_prefixes=["/data/"])
        built.check(1, "openat", path="/data/in.png")
        with pytest.raises(SyscallDenied):
            built.check(1, "openat", path="/etc/passwd")

    def test_non_file_syscalls_ignore_paths(self):
        built = SyscallFilter(allowed=["brk"], allowed_path_prefixes=["/data/"])
        built.check(1, "brk", path="/anything")  # memory call, no path check

    def test_pathless_calls_pass(self):
        built = SyscallFilter(allowed=["read"], allowed_path_prefixes=["/data/"])
        built.check(1, "read")  # fd-based read of an already-open file

    def test_restrict_paths_after_seal_rejected(self):
        from repro.errors import FilterSealed

        built = SyscallFilter(allowed=["read"])
        built.seal()
        with pytest.raises(FilterSealed):
            built.restrict_paths(["/data/"])

    def test_runtime_policy_confines_storing_agent(self):
        """A storing agent restricted to /out cannot overwrite configs."""
        app = make_app(8)
        config = FreePartConfig(path_policies={
            APIType.STORING: ("/out/",),
        })
        freepart = FreePart(config=config)
        kernel = freepart.kernel
        gateway = freepart.deploy(used_apis=used_api_objects(app))
        report = execute_app(app, gateway, WORKLOAD)
        assert not report.failed, report.error  # legit writes go to /out

        from repro.frameworks.base import Mat

        kernel.fs.write_file("/config/settings", {"admin": False})
        with pytest.raises(FrameworkCrash):
            gateway.call("opencv", "imwrite", "/config/settings",
                         Mat(np.ones((4, 4))))
        # The write never landed.
        assert kernel.fs.read_file("/config/settings") == {"admin": False}

    def test_runtime_policy_confines_loading_agent(self):
        app = make_app(8)
        config = FreePartConfig(path_policies={
            APIType.LOADING: ("/data/", "/testdata/", "/dev/"),
        })
        freepart = FreePart(config=config)
        kernel = freepart.kernel
        gateway = freepart.deploy(used_apis=used_api_objects(app))
        app.setup(kernel, WORKLOAD)
        gateway.call("opencv", "imread", app.input_path(0))  # allowed
        kernel.fs.write_file("/secrets/key", "hunter2")
        with pytest.raises(FrameworkCrash):
            gateway.call("opencv", "imread", "/secrets/key")


class TestRestartBudget:
    def _poisoned_gateway(self, max_restarts):
        app = make_app(8)
        config = FreePartConfig(max_restarts_per_agent=max_restarts)
        freepart = FreePart(config=config)
        kernel = freepart.kernel
        gateway = freepart.deploy(used_apis=used_api_objects(app))
        crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
        kernel.fs.write_file("/evil.png", crafted)
        return kernel, gateway

    def test_crash_loop_exhausts_budget(self):
        kernel, gateway = self._poisoned_gateway(max_restarts=2)
        for _ in range(2):
            with pytest.raises(FrameworkCrash):
                gateway.call("opencv", "imread", "/evil.png")
        # Third crash: restart happens on the next dispatch and the
        # budget check trips there.
        with pytest.raises(FrameworkCrash):
            gateway.call("opencv", "imread", "/evil.png")
        with pytest.raises(AgentUnavailable):
            gateway.call("opencv", "imread", "/evil.png")

    def test_unbounded_by_default(self):
        kernel, gateway = self._poisoned_gateway(max_restarts=None)
        for _ in range(5):
            with pytest.raises(FrameworkCrash):
                gateway.call("opencv", "imread", "/evil.png")
        assert gateway.total_restarts() == 5
