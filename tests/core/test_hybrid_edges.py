"""Hybrid-categorizer edge cases the static linter depends on.

The linter resolves arbitrary call sites through
:func:`repro.core.hybrid.categorize_call_site`; these tests pin the
behaviors it leans on: ``UncategorizableAPI`` must carry the qualname,
``method == "dynamic"`` must mean the tracer actually ran, and fully
static verdicts must never invoke the tracer at all.
"""

import pytest

from repro.core.apitypes import APIType
from repro.core.dynamic_analysis import DynamicAnalyzer
from repro.core.hybrid import (
    HybridAnalyzer,
    categorize_call_site,
    clear_call_site_cache,
)
from repro.errors import ReproError, UncategorizableAPI
from repro.frameworks.base import APISpec, FrameworkAPI
from repro.frameworks.registry import get_framework


def opaque_api(name, example_args=None):
    """A static-opaque API of a throwaway framework."""
    spec = APISpec(
        name=name,
        framework="testfw",
        qualname=f"testfw.{name}",
        ground_truth=APIType.PROCESSING,
        static_opaque=True,
        example_args=example_args,
    )
    return FrameworkAPI(spec, lambda ctx: None)


class CountingDynamic(DynamicAnalyzer):
    """Dynamic analyzer that records whether it was invoked."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def analyze(self, api):
        self.calls += 1
        return super().analyze(api)


def test_opaque_without_test_case_raises_with_qualname():
    api = opaque_api("opaque_noop")
    with pytest.raises(UncategorizableAPI) as err:
        HybridAnalyzer().categorize_api(api)
    assert "testfw.opaque_noop" in str(err.value)


def test_opaque_with_uninformative_trace_raises_with_qualname():
    """Dynamic fallback ran but traced no flows: still uncategorizable."""
    api = opaque_api("opaque_silent", example_args=lambda ctx: ((), {}))
    with pytest.raises(UncategorizableAPI) as err:
        HybridAnalyzer().categorize_api(api)
    assert "testfw.opaque_silent" in str(err.value)


def test_opaque_with_real_test_case_reports_dynamic_method():
    api = get_framework("pytorch").get("hub_load")
    assert api.spec.static_opaque
    counting = CountingDynamic()
    entry = HybridAnalyzer(dynamic=counting).categorize_api(api)
    assert entry.method == "dynamic"
    assert counting.calls == 1
    assert entry.api_type is APIType.LOADING


def test_static_verdict_never_invokes_the_tracer():
    api = get_framework("opencv").get("imread")
    counting = CountingDynamic()
    entry = HybridAnalyzer(dynamic=counting).categorize_api(api)
    assert entry.method == "static"
    assert counting.calls == 0


def test_categorize_call_site_matches_full_analysis():
    clear_call_site_cache()
    entry = categorize_call_site("opencv", "imread")
    assert entry.qualname == "cv2.imread"
    assert entry.api_type is APIType.LOADING
    assert entry.method == "static"


def test_categorize_call_site_caches_verdicts():
    clear_call_site_cache()
    first = categorize_call_site("opencv", "GaussianBlur")
    second = categorize_call_site("opencv", "GaussianBlur")
    assert first is second


def test_categorize_call_site_dynamic_method_means_tracer_ran():
    clear_call_site_cache()
    entry = categorize_call_site("pytorch", "hub_load")
    assert entry.method == "dynamic"


def test_categorize_call_site_unknown_names_raise():
    with pytest.raises(ReproError):
        categorize_call_site("no-such-framework", "imread")
    with pytest.raises(ReproError):
        categorize_call_site("opencv", "no_such_api")
