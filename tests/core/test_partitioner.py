"""Partition plans: the 4-way default and the Fig. 4 random splits."""

import random

import pytest

from repro.core.apitypes import APIType
from repro.core.hybrid import HybridAnalyzer
from repro.core.partitioner import (
    apis_split_across,
    four_way_plan,
    granularity_stats,
    split_processing_plan,
)
from repro.errors import ReproError
from repro.frameworks.registry import get_framework


@pytest.fixture(scope="module")
def categorization():
    return HybridAnalyzer().categorize_framework(get_framework("opencv"))


def test_four_way_plan_has_four_partitions(categorization):
    plan = four_way_plan(categorization)
    assert plan.partition_count == 4
    types = [p.api_type for p in plan.partitions]
    assert types == [
        APIType.LOADING, APIType.PROCESSING,
        APIType.VISUALIZING, APIType.STORING,
    ]


def test_four_way_assignment_matches_types(categorization):
    plan = four_way_plan(categorization)
    for entry in categorization.entries.values():
        if entry.neutral:
            assert plan.partition_of(entry.qualname) is None
            continue
        partition = plan.partition_of(entry.qualname)
        assert partition is not None
        assert partition.api_type is entry.api_type


def test_neutral_apis_unpinned(categorization):
    plan = four_way_plan(categorization)
    assert plan.partition_of("cv2.cvtColor") is None


def test_partition_for_type(categorization):
    plan = four_way_plan(categorization)
    assert plan.partition_for_type(APIType.STORING).api_type is APIType.STORING


def test_split_plan_k4_equals_default_sizes(categorization):
    default = four_way_plan(categorization)
    split = split_processing_plan(categorization, 4)
    assert sorted(split.sizes()) == sorted(default.sizes())


@pytest.mark.parametrize("k", [5, 8, 15, 25])
def test_split_plan_partition_count(categorization, k):
    plan = split_processing_plan(categorization, k, rng=random.Random(1))
    assert plan.partition_count == k
    # processing slices are non-empty
    processing = [p for p in plan.partitions if p.api_type is APIType.PROCESSING]
    assert len(processing) == k - 3
    assert all(len(p) >= 1 for p in processing)


def test_split_plan_covers_all_processing(categorization):
    plan = split_processing_plan(categorization, 10, rng=random.Random(2))
    processing_members = set()
    for partition in plan.partitions:
        if partition.api_type is APIType.PROCESSING:
            processing_members.update(partition.qualnames)
    expected = {e.qualname for e in categorization.of_type(APIType.PROCESSING)}
    assert processing_members == expected


def test_split_plan_deterministic_per_seed(categorization):
    a = split_processing_plan(categorization, 7, rng=random.Random(42))
    b = split_processing_plan(categorization, 7, rng=random.Random(42))
    assert a.assignment == b.assignment
    c = split_processing_plan(categorization, 7, rng=random.Random(43))
    assert a.assignment != c.assignment


def test_split_plan_rejects_too_few(categorization):
    with pytest.raises(ReproError):
        split_processing_plan(categorization, 3)


def test_split_plan_rejects_too_many(categorization):
    too_many = len(categorization.of_type(APIType.PROCESSING)) + 4
    with pytest.raises(ReproError):
        split_processing_plan(categorization, too_many)


def test_apis_split_across(categorization):
    plan = four_way_plan(categorization)
    assert apis_split_across(plan, "cv2.imread", "cv2.GaussianBlur")
    assert not apis_split_across(plan, "cv2.erode", "cv2.GaussianBlur")


def test_granularity_stats(categorization):
    plan = four_way_plan(categorization)
    stats = granularity_stats(plan)
    assert stats["processes"] == 5  # 4 agents + host
    assert stats["max"] >= 75      # the processing partition dominates
    assert stats["min"] >= 1
    assert stats["stddev"] > 0
