"""The FreePart runtime: dispatch, LDC, permissions, restart, crashes."""

import numpy as np
import pytest

from repro.core.apitypes import APIType, FrameworkState
from repro.core.rpc import RemoteHandle
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import (
    AgentUnavailable,
    AnnotationError,
    FrameworkCrash,
    StaleObjectRef,
)
from repro.frameworks.base import Mat
from repro.sim.memory import MemoryLayout


def fresh(config=None, used=None):
    freepart = FreePart(config=config)
    gateway = freepart.deploy(used_apis=used)
    return freepart.kernel, gateway


def write_image(kernel, path="/in.png", seed=0):
    rng = np.random.default_rng(seed)
    kernel.fs.write_file(path, rng.integers(0, 256, (16, 16, 3)).astype(float))
    return path


class TestDispatch:
    def test_five_processes(self):
        kernel, gateway = fresh()
        assert gateway.process_count == 5
        roles = [p.role for p in kernel.processes()]
        assert roles.count("agent") == 4

    def test_loading_api_runs_in_loading_agent(self):
        kernel, gateway = fresh()
        path = write_image(kernel)
        gateway.call("opencv", "imread", path)
        loading_agent = gateway.agents[0]
        assert loading_agent.stats.requests == 1
        assert loading_agent.partition.api_type is APIType.LOADING

    def test_data_object_results_are_handles(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        assert isinstance(handle, RemoteHandle)

    def test_by_value_results_returned_directly(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        classifier = gateway.call("opencv", "CascadeClassifier")
        rects = gateway.call(
            "opencv", "CascadeClassifier_detectMultiScale", classifier, handle
        )
        assert isinstance(rects, list)

    def test_state_machine_follows_calls(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        assert gateway.machine.state is FrameworkState.LOADING
        blurred = gateway.call("opencv", "GaussianBlur", handle)
        assert gateway.machine.state is FrameworkState.PROCESSING
        gateway.call("opencv", "imwrite", "/out.png", blurred)
        assert gateway.machine.state is FrameworkState.STORING

    def test_neutral_api_runs_in_current_agent(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        gateway.call("opencv", "cvtColor", handle)  # neutral, state=LOADING
        assert gateway.machine.state is FrameworkState.LOADING
        assert gateway.agents[0].stats.requests == 2

    def test_neutral_in_initialization_uses_processing_agent(self):
        kernel, gateway = fresh()
        gateway.call("opencv", "cvtColor", Mat(np.ones((4, 4))))
        assert gateway.agents[1].stats.requests == 1

    def test_exactly_once_per_agent(self):
        kernel, gateway = fresh()
        path = write_image(kernel)
        for _ in range(5):
            gateway.call("opencv", "imread", path)
        assert gateway.agents[0].sequence.exactly_once


class TestLazyDataCopy:
    def test_chained_calls_copy_directly_between_agents(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        gateway.call("opencv", "GaussianBlur", handle)
        assert kernel.ipc.lazy_copies == 1
        assert kernel.ipc.nonlazy_copies == 0

    def test_same_agent_chain_needs_no_copy(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        blurred = gateway.call("opencv", "GaussianBlur", handle)  # 1 lazy
        gateway.call("opencv", "erode", blurred)                  # local
        assert kernel.ipc.lazy_copies == 1

    def test_messages_stay_small_with_ldc(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        before = kernel.ipc.message_bytes
        gateway.call("opencv", "GaussianBlur", handle)
        request_response_bytes = kernel.ipc.message_bytes - before
        assert request_response_bytes < 1024  # refs, not pixels

    def test_materialize_copies_to_host_nonlazy(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        data = gateway.materialize(handle)
        assert isinstance(data, np.ndarray)
        assert kernel.ipc.nonlazy_copies == 1

    def test_materialize_plain_values_passthrough(self):
        kernel, gateway = fresh()
        assert gateway.materialize(42) == 42
        assert isinstance(gateway.materialize(Mat(np.ones(2))), np.ndarray)

    def test_host_data_object_argument_copied_lazily(self):
        kernel, gateway = fresh()
        gateway.call("opencv", "GaussianBlur", Mat(np.ones((8, 8))))
        assert kernel.ipc.lazy_copies == 1

    def test_ldc_off_copies_eagerly(self):
        config = FreePartConfig(ldc=False)
        kernel, gateway = fresh(config)
        result = gateway.call("opencv", "imread", write_image(kernel))
        assert isinstance(result, Mat)  # real value, not a handle
        assert kernel.ipc.nonlazy_copies >= 1
        assert kernel.ipc.lazy_copies == 0

    def test_ldc_off_costs_more_time(self):
        image = Mat(np.ones((64, 64, 3)))

        def pipeline(config):
            kernel, gateway = fresh(config)
            start = kernel.clock.now_ns
            handle = gateway.call("opencv", "GaussianBlur", image)
            for _ in range(5):
                handle = gateway.call("opencv", "erode", handle)
            gateway.call("opencv", "imwrite", "/o.png", handle)
            return kernel.clock.now_ns - start

        assert pipeline(FreePartConfig(ldc=False)) > pipeline(FreePartConfig(ldc=True))


class TestTemporalPermissions:
    def test_annotated_host_data_protected_after_state_change(self):
        layout = MemoryLayout(name="t", tag="template", nbytes=64)
        config = FreePartConfig(annotations=(layout,))
        kernel, gateway = fresh(config)
        gateway.host_alloc("template", [1, 2, 3])
        gateway.call("opencv", "imread", write_image(kernel))
        from repro.errors import SegmentationFault

        with pytest.raises(SegmentationFault):
            gateway.host_write("template", [9])

    def test_unannotated_host_data_stays_writable(self):
        kernel, gateway = fresh()
        gateway.host_alloc("counter", 0)
        gateway.call("opencv", "imread", write_image(kernel))
        gateway.host_write("counter", 1)
        assert gateway.host_read("counter") == 1

    def test_enforcement_disabled(self):
        layout = MemoryLayout(name="t", tag="template", nbytes=64)
        config = FreePartConfig(annotations=(layout,), enforce_permissions=False)
        kernel, gateway = fresh(config)
        gateway.host_alloc("template", [1])
        gateway.call("opencv", "imread", write_image(kernel))
        gateway.host_write("template", [2])  # no protection

    def test_strict_annotations_reject_unknown_custom_data(self):
        config = FreePartConfig(strict_annotations=True)
        kernel, gateway = fresh(config)
        with pytest.raises(AnnotationError):
            gateway.host_alloc("mystery", {"a": 1})

    def test_strict_annotations_allow_framework_objects(self):
        config = FreePartConfig(strict_annotations=True)
        kernel, gateway = fresh(config)
        gateway.host_alloc("img", Mat(np.ones(2)))  # built-in definition


class TestCrashAndRestart:
    def _crash_loading_agent(self, gateway, kernel):
        from repro.attacks.exploits import DosExploit
        from repro.attacks.payloads import CraftedInput, benign_image

        crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
        kernel.fs.write_file("/evil.png", crafted)
        with pytest.raises(FrameworkCrash):
            gateway.call("opencv", "imread", "/evil.png")

    def test_crash_is_contained_and_agent_restarted(self):
        kernel, gateway = fresh()
        self._crash_loading_agent(gateway, kernel)
        assert gateway.host.alive
        assert gateway.total_crashes() == 1
        assert gateway.total_restarts() == 1
        # The replacement works.
        handle = gateway.call("opencv", "imread", write_image(kernel))
        assert isinstance(handle, RemoteHandle)

    def test_restart_disabled_leaves_agent_down(self):
        config = FreePartConfig(restart_agents=False)
        kernel, gateway = fresh(config)
        self._crash_loading_agent(gateway, kernel)
        with pytest.raises(AgentUnavailable):
            gateway.call("opencv", "imread", write_image(kernel))

    def test_refs_into_crashed_agent_go_stale(self):
        kernel, gateway = fresh()
        handle = gateway.call("opencv", "imread", write_image(kernel))
        self._crash_loading_agent(gateway, kernel)
        with pytest.raises(StaleObjectRef):
            gateway.materialize(handle)

    def test_security_event_recorded(self):
        kernel, gateway = fresh()
        self._crash_loading_agent(gateway, kernel)
        assert gateway.events
        assert gateway.events[0].agent == "data_loading"


class TestSyscallRestriction:
    def test_agent_filters_sealed(self):
        kernel, gateway = fresh()
        for agent in gateway.agents.values():
            assert agent.process.filter.sealed

    def test_init_phase_ends_after_first_request(self):
        kernel, gateway = fresh()
        agent = gateway.agents[2]  # visualizing
        assert agent.process.filter.in_init_phase
        gateway.call("opencv", "imshow", "w", Mat(np.ones((4, 4))))
        assert not agent.process.filter.in_init_phase

    def test_visualizing_connect_works_then_gets_restricted(self):
        kernel, gateway = fresh()
        gateway.call("opencv", "imshow", "w", Mat(np.ones((4, 4))))
        gateway.call("opencv", "imshow", "w", Mat(np.ones((4, 4))))
        agent = gateway.agents[2]
        decision = agent.process.filter.would_allow("mprotect")
        assert not decision.allowed

    def test_restriction_disabled_gives_permissive_agents(self):
        config = FreePartConfig(restrict_syscalls=False)
        kernel, gateway = fresh(config)
        agent = gateway.agents[1]
        assert agent.process.filter.would_allow("fork").allowed


class TestPlanOptions:
    def test_partition_count_above_four(self):
        config = FreePartConfig(partition_count=7)
        kernel, gateway = fresh(config)
        assert gateway.process_count == 8

    def test_shutdown_closes_agents(self):
        kernel, gateway = fresh()
        gateway.shutdown()
        assert all(not a.process.alive for a in gateway.agents.values())
