"""Static, dynamic, and hybrid API categorization (Section 4.2)."""

import pytest

from repro.core.apitypes import APIType
from repro.core.dataflow import Storage, load_flow, process_flow, visualize_flow
from repro.core.dynamic_analysis import DynamicAnalyzer, coverage_report
from repro.core.hybrid import HybridAnalyzer
from repro.core.static_analysis import (
    AssignStmt,
    GuiAccessStmt,
    IndirectCallStmt,
    StaticAnalyzer,
    SyscallStmt,
    synthesize_ir,
)
from repro.errors import UncategorizableAPI
from repro.frameworks.base import APISpec, Framework
from repro.frameworks.registry import get_api, get_framework


def make_spec(**overrides):
    defaults = dict(
        name="op", framework="t", qualname="t.op",
        ground_truth=APIType.PROCESSING, flows=(process_flow(),),
        syscalls=("brk",),
    )
    defaults.update(overrides)
    return APISpec(**defaults)


class TestIRSynthesis:
    def test_loading_flow_expands_to_syscalls_and_assign(self):
        ir = synthesize_ir(make_spec(flows=(load_flow(),)))
        kinds = [type(s).__name__ for s in ir]
        assert "SyscallStmt" in kinds and "AssignStmt" in kinds

    def test_opaque_spec_collapses_to_indirect_call(self):
        ir = synthesize_ir(make_spec(static_opaque=True, flows=(load_flow(),)))
        assert any(isinstance(s, IndirectCallStmt) for s in ir)
        assert not any(isinstance(s, SyscallStmt) for s in ir)

    def test_gui_flow_becomes_gui_access(self):
        ir = synthesize_ir(make_spec(flows=(visualize_flow(),)))
        assert any(isinstance(s, GuiAccessStmt) for s in ir)

    def test_empty_flows_still_have_assignment(self):
        ir = synthesize_ir(make_spec(flows=()))
        assert any(isinstance(s, AssignStmt) for s in ir)


class TestStaticAnalyzer:
    def test_categorizes_visible_loading(self):
        result = StaticAnalyzer().analyze(
            make_spec(flows=(load_flow(),), ground_truth=APIType.LOADING)
        )
        assert result.complete
        assert result.category is APIType.LOADING
        assert not result.needs_dynamic

    def test_categorizes_processing(self):
        result = StaticAnalyzer().analyze(make_spec())
        assert result.category is APIType.PROCESSING

    def test_categorizes_visualizing(self):
        result = StaticAnalyzer().analyze(
            make_spec(flows=(visualize_flow(),), ground_truth=APIType.VISUALIZING)
        )
        assert result.category is APIType.VISUALIZING

    def test_opaque_spec_needs_dynamic(self):
        result = StaticAnalyzer().analyze(make_spec(static_opaque=True))
        assert not result.complete
        assert result.category is None
        assert result.needs_dynamic


class TestDynamicAnalyzer:
    def test_traces_real_api(self):
        result = DynamicAnalyzer().analyze(get_api("opencv", "imread"))
        assert result.covered
        assert result.category is APIType.LOADING
        assert "openat" in result.syscalls
        assert result.error is None

    def test_uncovered_api_reported(self):
        result = DynamicAnalyzer().analyze(get_api("opencv", "grabCut"))
        assert not result.covered
        assert result.category is None

    def test_opaque_pandas_api_resolved_dynamically(self):
        result = DynamicAnalyzer().analyze(get_api("pandas", "read_csv"))
        assert result.category is APIType.LOADING

    def test_get_file_reduced_to_loading(self):
        result = DynamicAnalyzer().analyze(get_api("tensorflow", "utils_get_file"))
        assert result.category is APIType.LOADING

    def test_runs_in_scratch_kernel(self):
        # Tracing never touches the caller's kernel state.
        analyzer = DynamicAnalyzer()
        result = analyzer.analyze(get_api("opencv", "imwrite"))
        assert result.covered


class TestHybridAnalyzer:
    def test_static_preferred_when_conclusive(self):
        entry = HybridAnalyzer().categorize_api(get_api("opencv", "imread"))
        assert entry.method == "static"
        assert entry.api_type is APIType.LOADING

    def test_dynamic_used_for_opaque(self):
        entry = HybridAnalyzer().categorize_api(get_api("json", "load"))
        assert entry.method == "dynamic"
        assert entry.api_type is APIType.LOADING

    def test_uncategorizable_raises(self):
        spec = make_spec(static_opaque=True)  # no example_args
        api = Framework("x").add(spec, lambda ctx: None)
        with pytest.raises(UncategorizableAPI):
            HybridAnalyzer().categorize_api(api)

    @pytest.mark.parametrize("framework_name", [
        "opencv", "pytorch", "tensorflow", "caffe",
        "pandas", "json", "matplotlib", "numpy", "pillow", "gtk",
    ])
    def test_full_framework_accuracy(self, framework_name):
        """Section 5: all partitioned APIs were correctly categorized."""
        framework = get_framework(framework_name)
        categorization = HybridAnalyzer().categorize_framework(framework)
        assert categorization.accuracy() == 1.0

    def test_counts_by_type(self):
        categorization = HybridAnalyzer().categorize_framework(
            get_framework("pillow")
        )
        counts = categorization.counts_by_type()
        assert counts[APIType.LOADING] == 1
        assert counts[APIType.VISUALIZING] == 1

    def test_neutral_flag_carried(self):
        categorization = HybridAnalyzer().categorize_framework(
            get_framework("opencv")
        )
        assert any(e.neutral for e in categorization.neutrals())
        entry = categorization.get("cv2.cvtColor")
        assert entry.neutral

    def test_missing_entry_raises(self):
        from repro.core.hybrid import Categorization

        with pytest.raises(UncategorizableAPI):
            Categorization().get("nope.nothing")


class TestCoverage:
    def test_coverage_report_fields(self):
        report = coverage_report(get_framework("opencv"))
        assert 0.7 < report.api_coverage < 1.0
        assert report.code_coverage > report.api_coverage * 0.9
        assert "opencv" in report.format_row()

    def test_fully_covered_framework(self):
        report = coverage_report(get_framework("json"))
        assert report.api_coverage == 1.0
