"""Failure injection: wrong-order, stale, crashed, and empty states."""

import numpy as np
import pytest

from repro.apps.suite import make_app, used_api_objects
from repro.attacks.exploits import DosExploit
from repro.attacks.payloads import CraftedInput, benign_image
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import (
    ChannelClosed,
    FrameworkCrash,
    ProcessCrashed,
    StaleObjectRef,
    UncategorizableAPI,
)
from repro.frameworks.base import Mat
from repro.sim.kernel import SimKernel


def deploy(config=None, used=None):
    freepart = FreePart(config=config)
    return freepart.kernel, freepart.deploy(used_apis=used)


def poison(kernel, path="/evil.png"):
    crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
    kernel.fs.write_file(path, crafted)
    return path


def test_stale_handle_as_argument_after_restart():
    kernel, gateway = deploy()
    kernel.fs.write_file("/i.png", np.ones((8, 8)))
    handle = gateway.call("opencv", "imread", "/i.png")
    with pytest.raises(FrameworkCrash):
        gateway.call("opencv", "imread", poison(kernel))
    # The loading agent restarted; the old handle's buffer died with it.
    with pytest.raises(StaleObjectRef):
        gateway.call("opencv", "GaussianBlur", handle)


def test_fresh_handles_work_after_restart():
    kernel, gateway = deploy()
    with pytest.raises(FrameworkCrash):
        gateway.call("opencv", "imread", poison(kernel))
    kernel.fs.write_file("/i.png", np.ones((8, 8)))
    handle = gateway.call("opencv", "imread", "/i.png")
    blurred = gateway.call("opencv", "GaussianBlur", handle)
    assert gateway.materialize(blurred).shape == (8, 8)


def test_repeated_crashes_each_produce_an_event():
    kernel, gateway = deploy()
    path = poison(kernel)
    for expected in (1, 2, 3):
        with pytest.raises(FrameworkCrash):
            gateway.call("opencv", "imread", path)
        assert gateway.total_crashes() == expected
    assert gateway.total_restarts() == 3
    assert len(gateway.events) == 3


def test_unanalyzed_api_rejected():
    kernel, gateway = deploy(used=list())
    with pytest.raises(UncategorizableAPI):
        gateway.call("opencv", "imread", "/x")


def test_calls_after_shutdown_fail_cleanly():
    kernel, gateway = deploy()
    kernel.fs.write_file("/i.png", np.ones((4, 4)))
    gateway.call("opencv", "imread", "/i.png")
    gateway.shutdown()
    with pytest.raises((ChannelClosed, ProcessCrashed, FrameworkCrash,
                        Exception)):
        gateway.call("opencv", "imread", "/i.png")


def test_materialize_after_owner_shutdown():
    kernel, gateway = deploy()
    kernel.fs.write_file("/i.png", np.ones((4, 4)))
    handle = gateway.call("opencv", "imread", "/i.png")
    gateway.shutdown()
    with pytest.raises((ProcessCrashed, StaleObjectRef)):
        gateway.materialize(handle)


def test_crash_during_visualizing_keeps_other_agents_working():
    from repro.attacks.cves import get  # noqa: F401 (registry load)

    kernel, gateway = deploy()
    crafted = CraftedInput("VULN-IMSHOW-DOS", DosExploit(), benign_image())
    with pytest.raises(FrameworkCrash):
        gateway.call("opencv", "imshow", "w", crafted)
    # loading/processing/storing agents never noticed
    kernel.fs.write_file("/i.png", np.ones((4, 4)))
    handle = gateway.call("opencv", "imread", "/i.png")
    gateway.call("opencv", "imwrite", "/o.png", handle)
    assert kernel.fs.exists("/o.png")


def test_attack_on_already_restarted_agent_still_contained():
    kernel, gateway = deploy()
    path = poison(kernel)
    with pytest.raises(FrameworkCrash):
        gateway.call("opencv", "imread", path)
    with pytest.raises(FrameworkCrash):
        gateway.call("opencv", "imread", path)
    assert gateway.host.alive


def test_host_data_survives_every_agent_crash():
    kernel, gateway = deploy()
    gateway.host_alloc("config", {"speed": 0.3})
    path = poison(kernel)
    for _ in range(2):
        with pytest.raises(FrameworkCrash):
            gateway.call("opencv", "imread", path)
    assert gateway.host_read("config") == {"speed": 0.3}


def test_kernel_restart_of_running_process_bumps_generation():
    kernel = SimKernel()
    process = kernel.spawn("p")
    replacement = kernel.restart(process)
    assert replacement.generation == 1
    assert replacement.pid != process.pid
