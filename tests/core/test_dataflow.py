"""Fig. 8 flow formalism and the Fig. 9 categorization rules."""

import pytest

from repro.core.apitypes import APIType
from repro.core.dataflow import (
    Flow,
    FlowTrace,
    Storage,
    categorize_flows,
    load_flow,
    process_flow,
    read,
    reduce_file_copies,
    store_flow,
    visualize_flow,
    write,
)


class TestConstructors:
    def test_read_has_no_dest(self):
        flow = read(Storage.GUI)
        assert flow.dest is None and flow.source is Storage.GUI

    def test_write_str_rendering(self):
        assert str(write(Storage.MEM, Storage.FILE)) == "W(mem, R(file))"
        assert str(read(Storage.GUI)) == "R(gui)"
        assert "[x]" in str(write(Storage.MEM, Storage.FILE, label="x"))

    def test_shorthand(self):
        assert load_flow().source is Storage.FILE
        assert load_flow(source=Storage.DEV).source is Storage.DEV
        assert process_flow().dest is Storage.MEM
        assert store_flow().dest is Storage.FILE
        assert visualize_flow().dest is Storage.GUI


class TestCategorization:
    def test_loading_from_file(self):
        assert categorize_flows([load_flow()]) is APIType.LOADING

    def test_loading_from_device(self):
        assert categorize_flows([load_flow(source=Storage.DEV)]) is APIType.LOADING

    def test_pure_processing(self):
        assert categorize_flows([process_flow(), process_flow()]) is APIType.PROCESSING

    def test_storing(self):
        assert categorize_flows([store_flow()]) is APIType.STORING
        assert categorize_flows([store_flow(dest=Storage.DEV)]) is APIType.STORING

    def test_visualizing_patterns(self):
        assert categorize_flows([visualize_flow()]) is APIType.VISUALIZING
        assert categorize_flows([read(Storage.GUI)]) is APIType.VISUALIZING
        assert categorize_flows(
            [write(Storage.MEM, Storage.GUI)]
        ) is APIType.VISUALIZING

    def test_gui_takes_precedence_over_memory_flows(self):
        assert categorize_flows(
            [process_flow(), visualize_flow()]
        ) is APIType.VISUALIZING

    def test_loading_takes_precedence_over_processing(self):
        assert categorize_flows(
            [process_flow(), load_flow()]
        ) is APIType.LOADING

    def test_loading_beats_storing_when_both(self):
        # An API that reads input AND stores output (rare) is a loader
        # under the paper's rule order.
        assert categorize_flows([load_flow(), store_flow()]) is APIType.LOADING

    def test_empty_is_uncategorizable(self):
        assert categorize_flows([]) is None


class TestFileCopyReduction:
    def test_copy_via_temp_becomes_processing(self):
        flows = [
            write(Storage.MEM, Storage.DEV, label="network"),
            write(Storage.FILE, Storage.MEM, label="cache"),
            write(Storage.MEM, Storage.FILE, label="cache"),
        ]
        reduced = reduce_file_copies(flows)
        assert all(
            f.dest is not Storage.FILE and f.source is not Storage.FILE
            for f in reduced
        )
        assert categorize_flows(flows) is APIType.LOADING

    def test_unlabelled_file_flows_not_reduced(self):
        flows = [store_flow(), load_flow()]
        assert reduce_file_copies(flows) == flows

    def test_mismatched_labels_not_reduced(self):
        flows = [
            write(Storage.FILE, Storage.MEM, label="a"),
            write(Storage.MEM, Storage.FILE, label="b"),
        ]
        reduced = reduce_file_copies(flows)
        assert flows[0] in reduced and flows[1] in reduced

    def test_read_before_write_not_reduced(self):
        flows = [
            write(Storage.MEM, Storage.FILE, label="x"),
            write(Storage.FILE, Storage.MEM, label="x"),
        ]
        # read-back happens BEFORE the store here: no temporal pairing
        reduced = reduce_file_copies(flows)
        assert len(reduced) == 2
        assert reduced[0] == flows[0]

    def test_multiple_pairs_reduced_independently(self):
        flows = [
            write(Storage.FILE, Storage.MEM, label="a"),
            write(Storage.FILE, Storage.MEM, label="b"),
            write(Storage.MEM, Storage.FILE, label="a"),
            write(Storage.MEM, Storage.FILE, label="b"),
        ]
        reduced = reduce_file_copies(flows)
        assert len(reduced) == 2
        assert all(f.dest is Storage.MEM and f.source is Storage.MEM for f in reduced)


class TestFlowTrace:
    def test_record_and_categorize(self):
        trace = FlowTrace()
        trace.record(load_flow())
        trace.extend([process_flow()])
        assert trace.categorize() is APIType.LOADING

    def test_distinct_preserves_order(self):
        trace = FlowTrace()
        trace.record(process_flow(label="x"))
        trace.record(process_flow(label="x"))
        trace.record(load_flow())
        distinct = trace.distinct()
        assert len(distinct) == 2
        assert distinct[0].label == "x"
