"""Gateway base behaviour and the native (no-isolation) gateway."""

import numpy as np
import pytest

from repro.core.apitypes import APIType
from repro.core.gateway import GatewayStats, CallRecord, NativeGateway
from repro.errors import ProcessCrashed
from repro.frameworks.base import Mat
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


@pytest.fixture
def gateway(kernel):
    return NativeGateway(kernel)


def test_single_process(gateway, kernel):
    assert len(kernel.processes()) == 1
    assert gateway.host.role == "host"


def test_call_returns_real_objects(gateway, kernel):
    kernel.fs.write_file("/i.png", np.ones((4, 4)))
    result = gateway.call("opencv", "imread", "/i.png")
    assert isinstance(result, Mat)


def test_call_runs_in_host_process(gateway, kernel):
    kernel.fs.write_file("/i.png", np.ones((4, 4)))
    gateway.call("opencv", "imread", "/i.png")
    assert "openat" in gateway.host.syscalls_used()


def test_no_ipc_for_native(gateway, kernel):
    kernel.fs.write_file("/i.png", np.ones((4, 4)))
    image = gateway.call("opencv", "imread", "/i.png")
    gateway.call("opencv", "GaussianBlur", image)
    assert kernel.ipc.messages == 0
    assert kernel.ipc.total_copies == 0


def test_host_alloc_read_write(gateway):
    gateway.host_alloc("speed", 0.3)
    assert gateway.host_read("speed") == 0.3
    gateway.host_write("speed", -0.3)
    assert gateway.host_read("speed") == -0.3


def test_host_read_unknown_tag(gateway):
    with pytest.raises(KeyError):
        gateway.host_read("ghost")


def test_host_file_io(gateway, kernel):
    gateway.host_write_file("/cfg", {"a": 1})
    assert gateway.host_read_file("/cfg") == {"a": 1}
    assert kernel.fs.exists("/cfg")


def test_send_uses_network_and_syscalls(gateway, kernel):
    gateway.send("server", {"note": 1})
    outbound = kernel.devices.network.outbound_to("server")
    assert len(outbound) == 1
    assert "sendto" in gateway.host.syscalls_used()


def test_materialize_unwraps(gateway):
    assert isinstance(gateway.materialize(Mat(np.ones(2))), np.ndarray)
    assert gateway.materialize("x") == "x"


def test_host_crash_propagates(gateway, kernel):
    from repro.attacks.exploits import DosExploit
    from repro.attacks.payloads import CraftedInput, benign_image

    crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
    kernel.fs.write_file("/evil.png", crafted)
    with pytest.raises(ProcessCrashed):
        gateway.call("opencv", "imread", "/evil.png")
    assert not gateway.host.alive


class TestGatewayStats:
    def test_counts_by_type(self):
        stats = GatewayStats()
        for name in ("a", "a", "b"):
            stats.record(CallRecord("fw", name, f"fw.{name}", APIType.PROCESSING))
        stats.record(CallRecord("fw", "ld", "fw.ld", APIType.LOADING))
        counts = stats.counts_by_type()
        assert counts[APIType.PROCESSING] == (2, 3)
        assert counts[APIType.LOADING] == (1, 1)

    def test_unique_qualnames_ordered(self):
        stats = GatewayStats()
        for name in ("x", "y", "x"):
            stats.record(CallRecord("fw", name, f"fw.{name}", APIType.PROCESSING))
        assert stats.unique_qualnames() == ["fw.x", "fw.y"]

    def test_total_calls(self, gateway, kernel):
        kernel.fs.write_file("/i.png", np.ones((4, 4)))
        gateway.call("opencv", "imread", "/i.png")
        assert gateway.stats.total_calls() == 1
