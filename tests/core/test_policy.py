"""Syscall-restriction policy (Section 4.4.1)."""

import pytest

from repro.core.apitypes import APIType
from repro.core.hybrid import HybridAnalyzer
from repro.core.partitioner import four_way_plan
from repro.core.policy import (
    ATTACK_SYSCALLS,
    DESIGNATED_FDS,
    filter_spec_for_partition,
    filter_specs_for_plan,
    policy_report,
    required_syscalls,
)
from repro.frameworks.registry import get_framework
from repro.frameworks.syscall_pools import pool_for
from repro.sim.devices import CAMERA_FD, GUI_SOCKET_FD, NETWORK_FD


@pytest.fixture(scope="module")
def categorization():
    return HybridAnalyzer().categorize_framework(get_framework("opencv"))


@pytest.fixture(scope="module")
def plan(categorization):
    return four_way_plan(categorization)


def test_required_syscalls_union(categorization):
    entries = [categorization.get("cv2.imread"),
               categorization.get("cv2.VideoCapture_read")]
    union = required_syscalls(entries)
    # Fig. 12-b: union of the two APIs' requirements.
    for name in ("openat", "read", "close", "ioctl", "select"):
        assert name in union


def test_filter_spec_widened_to_pool(plan, categorization):
    loading = plan.partition_for_type(APIType.LOADING)
    spec = filter_spec_for_partition(loading, categorization)
    assert spec.allowed == pool_for(APIType.LOADING)


def test_filter_spec_unwidened_is_tight(plan, categorization):
    loading = plan.partition_for_type(APIType.LOADING)
    spec = filter_spec_for_partition(loading, categorization, widen_to_pool=False)
    assert spec.allowed < pool_for(APIType.LOADING)
    assert "openat" in spec.allowed


def test_init_only_includes_mprotect_and_connect(plan, categorization):
    processing = plan.partition_for_type(APIType.PROCESSING)
    spec = filter_spec_for_partition(processing, categorization)
    assert "mprotect" in spec.init_only
    # connect is pool-allowed for loading/visualizing, init-only elsewhere
    assert "connect" in spec.init_only


def test_designated_fds(plan, categorization):
    assert DESIGNATED_FDS[APIType.LOADING] == {CAMERA_FD, NETWORK_FD}
    assert DESIGNATED_FDS[APIType.VISUALIZING] == {GUI_SOCKET_FD}
    loading = filter_spec_for_partition(
        plan.partition_for_type(APIType.LOADING), categorization
    )
    assert loading.allowed_fds == {CAMERA_FD, NETWORK_FD}
    processing = filter_spec_for_partition(
        plan.partition_for_type(APIType.PROCESSING), categorization
    )
    assert processing.allowed_fds is None


def test_filter_specs_for_plan_covers_all_partitions(plan, categorization):
    specs = filter_specs_for_plan(plan, categorization)
    assert set(specs) == {p.index for p in plan.partitions}


def test_built_filters_deny_attack_syscalls(plan, categorization):
    """The core of Section 5.3: loading/processing agents cannot
    mprotect (post-init), fork, or send data out."""
    for api_type in (APIType.LOADING, APIType.PROCESSING):
        spec = filter_spec_for_partition(
            plan.partition_for_type(api_type), categorization
        )
        built = spec.build()
        built.seal()
        built.end_init_phase()
        for group in ATTACK_SYSCALLS.values():
            for name in group:
                assert not built.would_allow(name).allowed or (
                    api_type is APIType.LOADING and name == "connect"
                ), (api_type, name)


def test_policy_report_matches_table7():
    report = policy_report()
    assert report.per_type_counts[APIType.LOADING] == 43
    assert report.per_type_counts[APIType.PROCESSING] == 22
    assert report.per_type_counts[APIType.VISUALIZING] == 56
    assert report.per_type_counts[APIType.STORING] == 27
    rows = report.format_rows()
    assert len(rows) == 4
    assert rows[0].startswith("Loading (43)")
