"""Fixture: tenant-scoped handler parks an ObjectRef in shared state.

``RESULT_CACHE`` is module-level — it outlives the request.  Storing the
edges handle there leaks one tenant's ObjectRef into every other
tenant's scope; the serve layer would raise ``TenantIsolationError`` on
replay, but only *after* the leak is exploited.  The verifier flags the
store itself.
"""

RESULT_CACHE = {}


def handle_request(gateway, tenant_id, path):
    """Per-tenant request handler that caches across tenants (bad)."""
    image = gateway.call("opencv", "imread", path)
    edges = gateway.call("opencv", "Canny", image)
    RESULT_CACHE[path] = edges
    return edges
