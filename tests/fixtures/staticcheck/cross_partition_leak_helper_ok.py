"""Fixture: a handle flowing through a helper is not a leak.

The helper forwards the ObjectRef unchanged; the payload never
materializes in the host, so every deref stays inside the partition
that owns the data.
"""


def annotate(edges):
    """Identity transform standing in for host-side bookkeeping."""
    return edges


def pipeline(gateway):
    """Reference in, reference out, deref in-partition."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    edges = gateway.call("opencv", "Canny", image)
    result = annotate(edges)
    return gateway.call("opencv", "imwrite", "/data/out.png", result)
