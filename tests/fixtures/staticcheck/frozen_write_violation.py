"""Fixture: host write to a tag frozen by a phase transition (violates).

``scores`` is annotated and allocated during initialization; the imread
call transitions the framework to data loading, which freezes every
annotated buffer defined during initialization.  The late ``host_write``
is exactly the write the runtime's mprotect simulation kills with
SIGSEGV — the static verifier must flag it ahead of time.

This file is also *executed* by the runtime-parity regression test, so
it must be a working pipeline, not just parseable source.
"""

from repro.sim.memory import MemoryLayout

ANNOTATIONS = (
    MemoryLayout(name="scores", tag="scores", nbytes=64),
)


def pipeline(gateway):
    """Alloc during initialization, write after the framework moved on."""
    gateway.host_alloc("scores", [0.0] * 8)
    image = gateway.call("opencv", "imread", "/data/in.png")
    blurred = gateway.call("opencv", "GaussianBlur", image)
    gateway.host_write("scores", [1.0] * 8)
    return blurred
