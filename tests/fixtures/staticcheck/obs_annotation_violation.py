"""Fixture: an obs annotation must not mask other dead call sites.

The ``obs`` pseudo-framework is exempt from the dead-api rule, but the
exemption is per-framework: the ``fakelib.transmogrify`` site in the
same pipeline still resolves to no known API and must be flagged.
"""


def pipeline(gateway):
    """An annotated pipeline with one genuinely dead call site."""
    gateway.call("obs", "mark", "load-start")
    image = gateway.call("opencv", "imread", "/data/in.png")
    gateway.call("fakelib", "transmogrify", image)
    return image
