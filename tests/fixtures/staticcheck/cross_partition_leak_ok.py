"""Fixture: an ObjectRef crossing partitions via a container is fine.

Same shape as the violating twin but no ``materialize`` — the handle
travels through the list, and the LDC deref happens inside the
processing agent that consumes it.  Nothing leaves its partition.
"""


def pipeline(gateway):
    """Pass the reference, not the payload."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    batch = [image]
    return gateway.call("opencv", "Canny", batch[0])
