"""Fixture: a call site no analysis phase can type (violates).

``mystery.transmute`` is declared in this module, but its ground truth
is computed at runtime — not a literal the static prepass can read — and
the spec is not neutral.  The hybrid categorizer has nothing to go on:
the site cannot be assigned to any agent partition.
"""

from repro.frameworks.base import APISpec, Framework


def _pick_type():
    """Runtime-computed ground truth (opaque to the static prepass)."""
    from repro.core.apitypes import APIType

    return APIType.PROCESSING


MYSTERY = Framework("mystery", version="0.1")
MYSTERY.register(APISpec(
    name="transmute",
    framework="mystery",
    qualname="mystery.transmute",
    ground_truth=_pick_type(),
))


def pipeline(gateway):
    """Call the untypeable API after a legitimate load."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    return gateway.call("mystery", "transmute", image)
