"""Fixture: in-file API spec whose syscalls fit its agent's pool (clean).

``telemetry.save_report`` writes through the filesystem only; every
declared syscall is inside the storing pool, and its ``mprotect`` is
covered by the initialization grace allowance.
"""

from repro.core.apitypes import APIType
from repro.frameworks.base import APISpec, Framework

TELEMETRY = Framework("telemetry", version="0.1")
TELEMETRY.register(APISpec(
    name="save_report",
    framework="telemetry",
    qualname="telemetry.save_report",
    ground_truth=APIType.STORING,
    syscalls=("openat", "write", "fsync", "close"),
    init_syscalls=("mprotect",),
))


def pipeline(gateway):
    """Load, then persist the result through the filesystem."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    gateway.call("telemetry", "save_report", image)
    return image
