"""Fixture: real violations silenced by ``# repro: ignore`` comments.

The store-before-load inversion carries a rule-specific suppression; the
dead API call carries a bare one.  ``repro check`` must report neither
(and count both as suppressed).
"""


def pipeline(gateway):
    """Two violations, both explicitly waived in-line."""
    gateway.call("opencv", "imwrite", "/out/stale.png", None)  # repro: ignore[phase-order]
    image = gateway.call("opencv", "imread", "/data/in.png")
    gateway.call("opencv", "no_such_api", image)  # repro: ignore
    return image
