"""Fixture: materialized payload crosses partitions through a helper.

``normalize`` is a plain module-local function — it never touches the
gateway, so the per-site checks cannot connect its return value to the
materialized input.  The flow pass inlines it and sees the
loading-partition copy arrive at a processing-agent call.
"""


def normalize(pixels):
    """Identity transform standing in for host-side post-processing."""
    return pixels


def pipeline(gateway):
    """Materialize, wash through a helper, feed another partition."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    pixels = gateway.materialize(image)
    scaled = normalize(pixels)
    return gateway.call("opencv", "Canny", scaled)
