"""Fixture: agents using a sliver of their Table 7 pools (strict mode).

Both resolved APIs declare a handful of syscalls, yet the default
filters widen to the full loading/processing pools — dozens of grantable
syscalls no API here will ever issue.  ``repro check --strict-pools``
flags the surplus; the default run stays silent because the pools are
the paper's sound baseline.
"""


def pipeline(gateway):
    """Two-stage pipeline needing far fewer syscalls than its pools."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    return gateway.call("opencv", "GaussianBlur", image)
