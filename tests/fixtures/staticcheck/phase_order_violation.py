"""Fixture: storing call executes before the pipeline loads (violates).

The imwrite site persists stale state before any data has been loaded;
the imread afterwards proves this trace *does* load, so the store is a
Fig. 3 phase-order inversion rather than a store-only helper.
"""


def pipeline(gateway):
    """Store first, load second — inverted phase order."""
    gateway.call("opencv", "imwrite", "/out/stale.png", None)
    image = gateway.call("opencv", "imread", "/data/in.png")
    return gateway.call("opencv", "Canny", image)
