"""Fixture: in-file API spec declares syscalls outside its agent's pool.

``telemetry.upload_report`` is a storing API whose declared syscall set
includes ``socket``/``sendto`` — network calls the storing agent's
seccomp pool (Table 7) does not allow.  The first upload would kill the
agent; the verifier must say so statically.
"""

from repro.core.apitypes import APIType
from repro.frameworks.base import APISpec, Framework

TELEMETRY = Framework("telemetry", version="0.1")
TELEMETRY.register(APISpec(
    name="upload_report",
    framework="telemetry",
    qualname="telemetry.upload_report",
    ground_truth=APIType.STORING,
    syscalls=("socket", "sendto", "openat", "close"),
))


def pipeline(gateway):
    """Load, then push the result over the network from the storing agent."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    gateway.call("telemetry", "upload_report", image)
    return image
