"""Fixture: tenant-derived data written into a host buffer (violates).

Host buffers are shared process state: they survive the request and are
reachable from every flow the host program runs.  Seeding one with a
materialized tenant payload publishes that tenant's data to all others.
"""


def handle_request(gateway, tenant_id, path):
    """Per-tenant handler that parks the payload in a host buffer."""
    image = gateway.call("opencv", "imread", path)
    pixels = gateway.materialize(image)
    gateway.host_alloc("cache", pixels)
    return pixels
