"""Fixture: aliased host write to a *re-allocated* tag is fine.

Re-allocation is the sanctioned way to carry a buffer across phases:
``host_alloc`` in the loading phase rebinds ``scores`` to a fresh
writable buffer, so the later aliased write targets unfrozen memory —
exactly what the runtime permits.
"""

from repro.sim.memory import MemoryLayout

ANNOTATIONS = (
    MemoryLayout(name="scores", tag="scores", nbytes=64),
)


def pipeline(gateway):
    """Re-alloc after the phase transition, then write through the alias."""
    gateway.host_alloc("scores", [0.0] * 8)
    image = gateway.call("opencv", "imread", "/data/in.png")
    gateway.host_alloc("scores", [0.0] * 8)
    tag = "scores"
    gateway.host_write(tag, [1.0] * 8)
    return image
