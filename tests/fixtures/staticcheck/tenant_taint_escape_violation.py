"""Fixture: tenant-derived *data* stored into module state (violates).

The tenant-ref-leak rule guards parked ObjectRefs; this is the data
variant: ``pixels`` is a materialized copy produced inside a
tenant-scoped request flow, and ``STATS`` is module-level — the copy
outlives the request and every other tenant's handler can read it.
"""

STATS = {}


def handle_request(gateway, tenant_id, path):
    """Per-tenant handler that caches tenant payloads globally (bad)."""
    image = gateway.call("opencv", "imread", path)
    pixels = gateway.materialize(image)
    STATS[tenant_id] = pixels
    return pixels
