"""Fixture: ObjectRefs stay lazy between agent calls (clean).

Handles flow between framework calls untouched; only the final result
is materialized, in the host, for host-side consumption.
"""


def pipeline(gateway):
    """Keep refs lazy; deref only the terminal result."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    edges = gateway.call("opencv", "Canny", image)
    return gateway.materialize(edges)
