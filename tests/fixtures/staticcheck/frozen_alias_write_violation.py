"""Fixture: host write to a frozen tag through a string alias (violates).

``scores`` is annotated and frozen when the imread call leaves
initialization — but the write names the tag through a local variable,
so the per-site frozen-write check (which only resolves literal or
module-constant tags) never sees it.  The flow pass resolves the local
string alias and replays the same freeze machine; the runtime would
SIGSEGV on this write exactly as if the tag were literal.
"""

from repro.sim.memory import MemoryLayout

ANNOTATIONS = (
    MemoryLayout(name="scores", tag="scores", nbytes=64),
)


def pipeline(gateway):
    """Alloc during initialization, write through an alias after moving on."""
    gateway.host_alloc("scores", [0.0] * 8)
    image = gateway.call("opencv", "imread", "/data/in.png")
    edges = gateway.call("opencv", "Canny", image)
    tag = "scores"
    gateway.host_write(tag, [1.0] * 8)
    return edges
