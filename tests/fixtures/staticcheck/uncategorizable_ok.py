"""Fixture: in-file spec with a literal ground truth (clean).

Identical shape to the violating variant, but the ground truth is an
``APIType`` literal the prepass can read, so the site types as
processing and joins the partition plan normally.
"""

from repro.core.apitypes import APIType
from repro.frameworks.base import APISpec, Framework

MYSTERY = Framework("mystery", version="0.1")
MYSTERY.register(APISpec(
    name="transmute",
    framework="mystery",
    qualname="mystery.transmute",
    ground_truth=APIType.PROCESSING,
    syscalls=("brk", "mmap"),
))


def pipeline(gateway):
    """Call the now-typeable API after a load."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    return gateway.call("mystery", "transmute", image)
