"""Fixture: every call site resolves, every in-file spec is used (clean)."""

from repro.core.apitypes import APIType
from repro.frameworks.base import APISpec, Framework

EXTRAS = Framework("extras", version="0.1")
EXTRAS.register(APISpec(
    name="sharpen",
    framework="extras",
    qualname="extras.sharpen",
    ground_truth=APIType.PROCESSING,
    syscalls=("brk",),
))


def pipeline(gateway):
    """Load with a registry API, process with the in-file one."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    return gateway.call("extras", "sharpen", image)
