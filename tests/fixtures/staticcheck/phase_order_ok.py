"""Fixture: load → process → store, plus a store-only helper (clean).

``persist`` stores a value handed in by its caller and never loads —
that is a legitimate sink helper, not a phase inversion, and must stay
unflagged.
"""


def pipeline(gateway):
    """The canonical pipeline order."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    edges = gateway.call("opencv", "Canny", image)
    gateway.call("opencv", "imwrite", "/out/edges.png", edges)
    return edges


def persist(gateway, result):
    """Store-only helper: no load in its own trace, no violation."""
    gateway.call("opencv", "imwrite", "/out/result.png", result)
