"""Fixture: materialized copy flows back into an agent call (violates).

``materialize`` ships the full payload into the host partition; passing
the copy into ``Canny`` re-ships it to the processing agent.  The lazy
data-copy design wants the ObjectRef passed instead, so the dereference
happens in the partition that consumes it.
"""


def pipeline(gateway):
    """Deref in the host, then hand the copy back to an agent."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    pixels = gateway.materialize(image)
    return gateway.call("opencv", "Canny", pixels)
