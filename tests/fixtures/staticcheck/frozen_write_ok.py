"""Fixture: the sanctioned ways to update an annotated host variable.

Writing in the same state the buffer was defined in is allowed (freezing
happens only when the framework *leaves* that state), and ``host_alloc``
re-binds the tag to a fresh writable buffer in the current state.

Executed by the runtime-parity regression test: the runtime must let
this pipeline finish, and the static verifier must report nothing.
"""

from repro.sim.memory import MemoryLayout

ANNOTATIONS = (
    MemoryLayout(name="scores", tag="scores", nbytes=64),
)


def pipeline(gateway):
    """Write before the transition; re-allocate for the late update."""
    gateway.host_alloc("scores", [0.0] * 8)
    gateway.host_write("scores", [0.5] * 8)
    image = gateway.call("opencv", "imread", "/data/in.png")
    blurred = gateway.call("opencv", "GaussianBlur", image)
    gateway.host_alloc("scores", [1.0] * 8)
    gateway.host_write("scores", [2.0] * 8)
    return blurred
