"""Fixture: tenant-scoped handler keeps refs request-local (clean).

The handle never escapes the request: it flows through the pipeline and
is returned to the caller, which owns the tenant scope.  Materialized
*copies* in shared state are also fine — a copy is data, not a
replayable reference.
"""

STATS = {"requests": 0}


def handle_request(gateway, tenant_id, path):
    """Per-tenant request handler with request-local refs (good)."""
    image = gateway.call("opencv", "imread", path)
    edges = gateway.call("opencv", "Canny", image)
    STATS["requests"] = 1
    return edges
