"""Fixture: materialized payload crosses partitions via a container.

``pixels`` is a full host copy of the loading agent's data; parking it
in a list and indexing it back out hides the provenance from the
per-site deref check, but the flow pass tracks taint through the
container — handing the copy to ``Canny`` ships loading-partition data
into the processing agent.
"""


def pipeline(gateway):
    """Materialize in the host, launder through a list, leak to Canny."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    pixels = gateway.materialize(image)
    batch = [pixels]
    return gateway.call("opencv", "Canny", batch[0])
