"""Fixture: call sites that resolve to no known API (violates).

``opencv.no_such_api`` names a registered framework but an API it does
not declare; ``fakelib.transmogrify`` names a framework that exists
neither in the global registry nor in this module.  Both calls are dead
code that would raise at runtime.  The unused in-file spec is the third
shape: registered here, called nowhere.
"""

from repro.core.apitypes import APIType
from repro.frameworks.base import APISpec, Framework

EXTRAS = Framework("extras", version="0.1")
EXTRAS.register(APISpec(
    name="never_called",
    framework="extras",
    qualname="extras.never_called",
    ground_truth=APIType.PROCESSING,
    syscalls=("brk",),
))


def pipeline(gateway):
    """Two unresolvable call sites after a legitimate load."""
    image = gateway.call("opencv", "imread", "/data/in.png")
    gateway.call("opencv", "no_such_api", image)
    gateway.call("fakelib", "transmogrify", image)
    return image
