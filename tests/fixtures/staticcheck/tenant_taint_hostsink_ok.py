"""Fixture: the same host-buffer write outside a tenant scope is fine.

No tenant parameter means no tenant-scoped flow — the pipeline owns all
its data, and staging a materialized copy in a host buffer is ordinary
(if copy-heavy) single-tenant processing.
"""


def pipeline(gateway, path):
    """Single-tenant pipeline staging a copy in a host buffer."""
    image = gateway.call("opencv", "imread", path)
    pixels = gateway.materialize(image)
    gateway.host_alloc("cache", pixels)
    return pixels
