"""Fixture: tenant-derived data kept in request-local state is fine.

Identical flow to the violating twin, but the dict is a local — it dies
with the request, so the materialized tenant payload never becomes
visible outside the tenant's own scope.
"""


def handle_request(gateway, tenant_id, path):
    """Per-tenant handler with request-scoped bookkeeping."""
    image = gateway.call("opencv", "imread", path)
    pixels = gateway.materialize(image)
    local_stats = {}
    local_stats[tenant_id] = pixels
    return pixels
