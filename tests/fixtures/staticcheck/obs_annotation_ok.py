"""Fixture: tracing annotations via the obs pseudo-framework (passes).

``gateway.call("obs", ...)`` sites are dispatched to the span tracer as
instant events (repro.core.gateway.OBS_FRAMEWORK), never to the API
registry, so the dead-api rule must not flag them even though no such
API exists anywhere.
"""


def pipeline(gateway):
    """A legitimate pipeline with obs phase markers around each stage."""
    gateway.call("obs", "mark", "load-start")
    image = gateway.call("opencv", "imread", "/data/in.png")
    gateway.call("obs", "mark", "process-start")
    edges = gateway.call("opencv", "Canny", image)
    gateway.call("opencv", "imwrite", "/out/edges.png", edges)
    gateway.call("obs", "mark", "done")
    return edges
