"""Fixture: an agent whose APIs cover its entire pool (strict mode ok).

``dense.transform`` declares every syscall in the processing pool, so
the minimal allowlist *is* the pool — there is no surplus to flag even
under ``--strict-pools``.
"""

from repro.core.apitypes import APIType
from repro.frameworks.base import APISpec, Framework

DENSE = Framework("dense", version="0.1")
DENSE.register(APISpec(
    name="transform",
    framework="dense",
    qualname="dense.transform",
    ground_truth=APIType.PROCESSING,
    syscalls=(
        "brk", "clock_gettime", "close", "fstat", "futex", "getcwd",
        "getpid", "getrandom", "gettimeofday", "lseek", "madvise",
        "mmap", "mremap", "munmap", "open", "openat", "prlimit64",
        "read", "sched_getaffinity", "sched_yield", "sysinfo", "times",
    ),
))


def pipeline(gateway):
    """One processing call that genuinely needs its whole pool."""
    return gateway.call("dense", "transform", [1.0])
