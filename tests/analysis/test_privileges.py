"""Least-privilege inference: minimal pools, emission, CVE acceptance."""

import json
import os

import pytest

from repro.apps.base import Workload
from repro.apps.suite import make_app
from repro.attacks.cves import ALL_CVES
from repro.attacks.scenarios import run_attack
from repro.core.apitypes import APIType
from repro.core.runtime import FreePartConfig
from repro.frameworks.syscall_pools import INIT_ONLY_SYSCALLS, pool_for
from repro.sim.filters import FilterSpec
from repro.staticcheck.callgraph import build_module
from repro.staticcheck.checker import run_check
from repro.staticcheck.inference import PartitionInferencer
from repro.staticcheck.privileges import (
    collect_privileges,
    merge_privileges,
    minimal_filter_specs,
    minimal_pools_for_app,
    pool_excess,
    privileges_for_app,
    render_minimal_pools,
    resolved_schedule,
)

FIXTURES = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "fixtures", "staticcheck"
)


def privileges_of(name):
    summary = build_module(os.path.join(FIXTURES, name))
    return collect_privileges(PartitionInferencer(summary).infer())


# -- inference over file analysis ---------------------------------------

def test_minimal_allowlist_is_union_of_declared_syscalls():
    privileges = privileges_of("over_privileged_pool_violation.py")
    loading = privileges["data_loading"]
    assert loading.minimal_allowed() <= pool_for(APIType.LOADING)
    assert "openat" in loading.minimal_allowed()
    assert loading.sites == 1
    assert loading.anchor > (0, 0)


def test_minimal_init_only_always_grants_the_init_grace_set():
    privileges = privileges_of("over_privileged_pool_violation.py")
    for privilege in privileges.values():
        assert INIT_ONLY_SYSCALLS <= (
            privilege.minimal_allowed() | privilege.minimal_init_only()
        )


def test_pool_surplus_plus_minimal_covers_the_pool():
    privileges = privileges_of("over_privileged_pool_violation.py")
    loading = privileges["data_loading"]
    pool = pool_for(APIType.LOADING)
    covered = (
        loading.minimal_allowed()
        | loading.minimal_init_only()
        | set(loading.pool_surplus())
        | INIT_ONLY_SYSCALLS
    )
    assert pool <= covered


def test_pool_excess_matches_syscall_pool_rule():
    """One resolution path: the rule's extras come from pool_excess."""
    summary = build_module(
        os.path.join(FIXTURES, "syscall_pool_violation.py")
    )
    reports = PartitionInferencer(summary).infer()
    offending = [
        step
        for report in reports.values()
        for step in report.steps
        if pool_excess(step.verdict, step.effective_type)[0]
    ]
    assert len(offending) == 1
    extra, _ = pool_excess(
        offending[0].verdict, offending[0].effective_type
    )
    assert extra == ["sendto", "socket"]
    result = run_check(
        [os.path.join(FIXTURES, "syscall_pool_violation.py")]
    )
    pool_findings = [
        f for f in result.findings if f.rule == "syscall-pool"
    ]
    assert len(pool_findings) == 1
    assert "sendto" in pool_findings[0].message


def test_run_check_merges_privileges_across_files():
    result = run_check([FIXTURES])
    assert "data_loading" in result.privileges
    merged = merge_privileges([result.privileges])
    assert (
        merged["data_loading"].syscalls
        == result.privileges["data_loading"].syscalls
    )


# -- emission ------------------------------------------------------------

def test_render_minimal_pools_round_trips_as_filter_specs():
    privileges = privileges_of("over_privileged_pool_violation.py")
    payload = json.loads(render_minimal_pools(privileges))
    assert payload["version"] == 1
    specs = {
        label: FilterSpec.from_dict(entry)
        for label, entry in payload["pools"].items()
    }
    direct = minimal_filter_specs(privileges)
    for label, spec in direct.items():
        assert specs[label].allowed == spec.allowed
        assert specs[label].init_only == spec.init_only
        assert specs[label].allowed_fds == spec.allowed_fds


def test_render_minimal_pools_is_deterministic():
    privileges = privileges_of("over_privileged_pool_violation.py")
    assert render_minimal_pools(privileges) == render_minimal_pools(
        privileges_of("over_privileged_pool_violation.py")
    )


# -- schedule-level inference (catalog apps) ----------------------------

def test_resolved_schedule_includes_implicit_engine_sites():
    from repro.apps.drone import DroneApp

    sites = [
        (site.framework, site.api)
        for site in resolved_schedule(DroneApp())
    ]
    assert ("opencv", "CascadeClassifier") in sites


def test_app_privileges_cover_every_schedule_site():
    app = make_app(8)
    privileges = privileges_for_app(app)
    for site in resolved_schedule(app):
        budget = (
            privileges[site.agent].minimal_allowed()
            | privileges[site.agent].minimal_init_only()
        )
        assert set(site.syscalls) <= budget, site.qualname


def test_extra_apis_widen_the_minimal_pool():
    app = make_app(8)
    record = next(r for r in ALL_CVES if 8 in r.samples)
    bare = privileges_for_app(app)
    widened = privileges_for_app(
        app, extra_apis=[(record.framework, record.api_name)]
    )
    bare_total = {
        s for p in bare.values() for s in p.minimal_allowed()
    }
    widened_total = {
        s for p in widened.values() for s in p.minimal_allowed()
    }
    assert bare_total <= widened_total


# -- acceptance: minimal pools still stop the attack suite --------------

@pytest.mark.parametrize(
    "cve_id", [record.cve_id for record in ALL_CVES]
)
def test_cve_prevented_under_minimal_pools(cve_id):
    """Install --emit-minimal-pools output as the runtime's filters and
    replay the exploit: tighter-than-pool filters must not regress the
    paper's prevention results (and legit app calls must still run)."""
    record = next(r for r in ALL_CVES if r.cve_id == cve_id)
    sample_id = record.samples[0] if record.samples else 8
    app = make_app(sample_id)
    overrides = minimal_pools_for_app(
        app, extra_apis=[(record.framework, record.api_name)]
    )
    config = FreePartConfig(
        annotations=tuple(app.annotations),
        filter_overrides=overrides,
    )
    result = run_attack(
        cve_id,
        technique="freepart",
        app=app,
        config=config,
        workload=Workload(items=2, image_size=16),
    )
    assert result.delivered, cve_id
    assert result.prevented, cve_id
