"""The two design studies (Section 4.1) and coverage (Table 11)."""

import pytest

from repro.analysis import (
    CORPUS_SIZE,
    FRAMEWORK_TOTALS,
    all_follow_pipeline,
    apps_use_only_covered_apis,
    build_cve_corpus,
    build_usage_corpus,
    counts_by_api_type,
    figure7_counts,
    follows_pipeline,
    framework_totals,
    major_framework_coverage,
    table3,
    table3_totals,
    uncovered_apis,
)
from repro.attacks.cves import VulnType
from repro.core.apitypes import APIType


@pytest.fixture(scope="module")
def cve_corpus():
    return build_cve_corpus()


@pytest.fixture(scope="module")
def usage_corpus():
    return build_usage_corpus()


class TestStudy2Cves:
    def test_241_cves(self, cve_corpus):
        assert len(cve_corpus) == 241

    def test_framework_totals_match_paper(self, cve_corpus):
        assert framework_totals(cve_corpus) == {
            "tensorflow": 172, "pillow": 44, "opencv": 22, "numpy": 3,
        }
        assert FRAMEWORK_TOTALS == framework_totals(cve_corpus)

    def test_fig7_headline_bars(self, cve_corpus):
        counts = figure7_counts(cve_corpus)
        assert counts[(APIType.LOADING, VulnType.DOS)] == 59
        assert counts[(APIType.PROCESSING, VulnType.DOS)] == 54
        assert counts[(APIType.LOADING, VulnType.INFO_LEAK)] == 11
        assert counts[(APIType.STORING, VulnType.DOS)] == 3

    def test_loading_and_processing_dominate(self, cve_corpus):
        by_type = counts_by_api_type(cve_corpus)
        minority = by_type[APIType.STORING] + by_type[APIType.VISUALIZING]
        majority = by_type[APIType.LOADING] + by_type[APIType.PROCESSING]
        assert majority > 20 * minority

    def test_vulnerabilities_in_every_api_type(self, cve_corpus):
        by_type = counts_by_api_type(cve_corpus)
        for api_type in (APIType.LOADING, APIType.PROCESSING,
                         APIType.VISUALIZING, APIType.STORING):
            assert by_type[api_type] > 0

    def test_utility_cves_marked(self, cve_corpus):
        utility = [c for c in cve_corpus if c.utility]
        assert {c.cve_id for c in utility} == {
            "CVE-2019-16249", "CVE-2019-15939",
        }

    def test_years_in_study_window(self, cve_corpus):
        assert all(2018 <= c.year <= 2022 for c in cve_corpus)

    def test_corpus_is_deterministic(self, cve_corpus):
        assert build_cve_corpus() == cve_corpus


class TestStudy1Usage:
    def test_56_apps(self, usage_corpus):
        assert len(usage_corpus) == CORPUS_SIZE == 56

    def test_all_follow_pipeline(self, usage_corpus):
        assert all_follow_pipeline(usage_corpus)

    def test_pipeline_checker(self):
        assert follows_pipeline(("loading", "processing", "storing"))
        assert follows_pipeline(
            ("loading", "processing", "loading", "processing", "visualizing")
        )
        # loops back to loading are allowed; any other backward step isn't
        assert follows_pipeline(("processing", "loading", "processing"))
        assert not follows_pipeline(("storing", "processing"))
        assert not follows_pipeline(("loading", "storing", "processing"))
        assert not follows_pipeline(("loading", "unknown"))

    def test_table3_cells_match_paper(self, usage_corpus):
        cells = table3(usage_corpus)
        expectations = {
            ("opencv", APIType.LOADING): (0.6, 1, 1),
            ("opencv", APIType.PROCESSING): (0.2, 1, 1),
            ("tensorflow", APIType.LOADING): (0.3, 2, 2),
            ("tensorflow", APIType.PROCESSING): (2.3, 12, 24),
            ("pillow", APIType.LOADING): (0.4, 2, 2),
            ("pillow", APIType.VISUALIZING): (0.5, 1, 1),
            ("numpy", APIType.LOADING): (0.1, 1, 1),
            ("numpy", APIType.PROCESSING): (0.4, 1, 1),
        }
        for key, (avg, maximum, total) in expectations.items():
            cell = cells[key]
            assert cell.average == pytest.approx(avg, abs=0.05), key
            assert cell.maximum == maximum, key
            assert cell.total_distinct == total, key

    def test_table3_zero_cells(self, usage_corpus):
        cells = table3(usage_corpus)
        for framework in ("opencv", "tensorflow", "pillow", "numpy"):
            assert cells[(framework, APIType.STORING)].total_distinct == 0

    def test_table3_totals_row(self, usage_corpus):
        totals = table3_totals(usage_corpus)
        assert totals[APIType.LOADING].average == pytest.approx(1.4, abs=0.05)
        assert totals[APIType.LOADING].maximum == 5
        assert totals[APIType.LOADING].total_distinct == 6
        assert totals[APIType.PROCESSING].average == pytest.approx(2.9, abs=0.05)
        assert totals[APIType.PROCESSING].maximum == 14
        assert totals[APIType.PROCESSING].total_distinct == 26


class TestCoverage:
    def test_table11_shape(self):
        reports = major_framework_coverage()
        assert set(reports) == {"opencv", "pytorch", "tensorflow", "caffe"}
        # Paper: 73%-92% API coverage; ours sits in a comparable band.
        for report in reports.values():
            assert 0.7 <= report.api_coverage <= 1.0

    def test_opencv_has_uncovered_tail(self):
        names = uncovered_apis("opencv")
        assert len(names) >= 15
        assert "cv2.grabCut" in names

    def test_footnote_apps_use_only_covered_apis(self):
        ok, offenders = apps_use_only_covered_apis()
        assert ok, offenders
