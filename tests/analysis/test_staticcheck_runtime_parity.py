"""Static and runtime verdicts must agree on the frozen-write fixtures.

``tests/core/test_statemachine.py`` proves the runtime's mprotect
simulation blocks writes to annotated host buffers after a phase
transition.  This regression runs the *same program* both ways: the
static verifier must flag the write the runtime kills, and must stay
silent on the variant the runtime lets finish.
"""

import importlib.util
import os

import numpy as np
import pytest

from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import SegmentationFault
from repro.frameworks.registry import get_framework
from repro.staticcheck import check_file

FIXTURES = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "fixtures", "staticcheck"
)


def load_fixture(name):
    """Import a fixture program as a real module."""
    path = os.path.join(FIXTURES, name)
    spec = importlib.util.spec_from_file_location(
        name.removesuffix(".py"), path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module, path


def deploy_for(module):
    """A real FreePart gateway with the fixture's annotations enforced."""
    freepart = FreePart(
        config=FreePartConfig(annotations=tuple(module.ANNOTATIONS))
    )
    rng = np.random.default_rng(3)
    freepart.kernel.fs.write_file(
        "/data/in.png", rng.integers(0, 256, (8, 8, 3)).astype(float)
    )
    return freepart.deploy(used_apis=list(get_framework("opencv")))


def test_static_flags_the_write_the_runtime_kills():
    module, path = load_fixture("frozen_write_violation.py")

    static = check_file(path)
    assert any(f.rule == "frozen-write" for f in static.findings)

    with pytest.raises(SegmentationFault):
        module.pipeline(deploy_for(module))


def test_static_and_runtime_both_accept_the_sanctioned_update():
    module, path = load_fixture("frozen_write_ok.py")

    static = check_file(path)
    assert static.findings == []

    gateway = deploy_for(module)
    module.pipeline(gateway)  # must not fault
    assert gateway.host_read("scores") == [2.0] * 8


def test_static_finding_points_at_the_faulting_line():
    module, path = load_fixture("frozen_write_violation.py")
    finding = next(
        f for f in check_file(path).findings if f.rule == "frozen-write"
    )
    with open(path, "r", encoding="utf-8") as handle:
        line = handle.readlines()[finding.line - 1]
    assert "host_write" in line
