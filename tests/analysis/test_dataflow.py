"""The interprocedural flow pass: taint rules, fixtures, machinery."""

import os

import pytest

from repro.staticcheck import check_file
from repro.staticcheck.callgraph import CallGraphBuilder
from repro.staticcheck.checker import check_file as check_file_opts
from repro.staticcheck.dataflow import BOTTOM, Taint, analyze_module
from repro.staticcheck.inference import PartitionInferencer
from repro.staticcheck.report import Severity

FIXTURES = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "fixtures", "staticcheck"
)


def fixture(name):
    return os.path.join(FIXTURES, name)


def analyze(source, path="flow.py", param_taints=None):
    summary = CallGraphBuilder(path, source).build()
    assert summary.parse_error is None
    return analyze_module(
        summary, PartitionInferencer(summary), param_taints
    )


# -- the three flow rule families over paired fixtures ------------------

@pytest.mark.parametrize("name, rule", [
    ("cross_partition_leak_violation.py", "cross-partition-leak"),
    ("cross_partition_leak_helper_violation.py", "cross-partition-leak"),
    ("tenant_taint_escape_violation.py", "tenant-taint-escape"),
    ("tenant_taint_hostsink_violation.py", "tenant-taint-escape"),
    ("frozen_alias_write_violation.py", "frozen-alias-write"),
])
def test_flow_violation_fixture_is_flagged(name, rule):
    result = check_file(fixture(name))
    rules = {f.rule for f in result.findings}
    assert rules == {rule}
    assert all(f.severity is Severity.ERROR for f in result.findings)
    assert result.exit_code == 1


@pytest.mark.parametrize("name", [
    "cross_partition_leak_ok.py",
    "cross_partition_leak_helper_ok.py",
    "tenant_taint_escape_ok.py",
    "tenant_taint_hostsink_ok.py",
    "frozen_alias_write_ok.py",
])
def test_flow_clean_twin_is_clean(name):
    assert check_file(fixture(name)).findings == []


def test_over_privileged_pool_is_opt_in():
    violating = fixture("over_privileged_pool_violation.py")
    assert check_file_opts(violating).findings == []
    strict = check_file_opts(violating, strict_pools=True)
    rules = {f.rule for f in strict.findings}
    assert rules == {"over-privileged-pool"}
    # Advisory: warnings never fail the run.
    assert strict.exit_code == 0
    assert "--emit-minimal-pools" in strict.findings[0].message


def test_over_privileged_pool_clean_when_pool_fully_used():
    clean = fixture("over_privileged_pool_ok.py")
    assert check_file_opts(clean, strict_pools=True).findings == []


# -- flow machinery details ---------------------------------------------

def test_leak_does_not_duplicate_wrong_partition_deref():
    """A *direct* materialized arg stays the per-site rule's finding."""
    result = check_file(fixture("wrong_partition_deref_violation.py"))
    rules = [f.rule for f in result.findings]
    assert rules == ["wrong-partition-deref"]


def test_taint_survives_branch_join():
    report = analyze(
        "def pipeline(gateway, want_blur):\n"
        "    image = gateway.call('opencv', 'imread', '/d/in.png')\n"
        "    if want_blur:\n"
        "        value = gateway.materialize(image)\n"
        "    else:\n"
        "        value = None\n"
        "    return gateway.call('opencv', 'Canny', value)\n"
    )
    assert len(report.leaks) == 1
    assert report.leaks[0].value == "value"
    assert report.stats.joins >= 1


def test_taint_flows_around_loop_back_edge():
    # `carry` only becomes materialized on the back edge: pass one of
    # the loop walk sees BOTTOM, pass two sees the materialized taint.
    report = analyze(
        "def pipeline(gateway, paths):\n"
        "    carry = None\n"
        "    for path in paths:\n"
        "        edges = gateway.call('opencv', 'Canny', carry)\n"
        "        image = gateway.call('opencv', 'imread', path)\n"
        "        carry = gateway.materialize(image)\n"
        "    return carry\n"
    )
    assert len(report.leaks) == 1
    assert report.leaks[0].value == "carry"


def test_tenant_sources_are_gateway_results_not_params():
    # Serving infrastructure handles tenant *identifiers* constantly;
    # only data produced by gateway calls inside the scope is tainted.
    report = analyze(
        "REGISTRY = {}\n"
        "\n"
        "def register(tenant_id, config):\n"
        "    REGISTRY[tenant_id] = config\n"
    )
    assert report.escapes == []


def test_returns_record_function_summaries():
    report = analyze(
        "def produce(gateway):\n"
        "    image = gateway.call('opencv', 'imread', '/d/in.png')\n"
        "    return gateway.materialize(image)\n"
    )
    returned = report.returns["produce"]
    assert returned.materialized
    assert "data_loading" in returned.agents


def test_param_taints_seed_the_environment():
    source = (
        "def consume(gateway, payload):\n"
        "    return gateway.call('opencv', 'Canny', payload)\n"
    )
    clean = analyze(source)
    assert clean.leaks == []
    seeded = analyze(source, param_taints={
        "consume": {"payload": Taint(
            agents=frozenset({"data_loading"}), materialized=True
        )},
    })
    assert len(seeded.leaks) == 1


def test_bottom_is_identity_for_join():
    taint = Taint(agents=frozenset({"data_loading"}), tenant=True)
    assert BOTTOM.join(taint) == taint
    assert taint.join(BOTTOM) == taint
    assert BOTTOM.is_bottom
    assert not taint.is_bottom
