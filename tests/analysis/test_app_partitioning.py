"""Application-based partitioning challenges (Appendix A.2.1)."""

import ast

import pytest

from repro.analysis.app_partitioning import (
    FIG16_SOURCE,
    FIG17_SOURCE,
    MAIN_PARTITION,
    PartitionedProgram,
    partition_source,
)
from repro.errors import AnalysisError


def test_requires_a_function():
    with pytest.raises(AnalysisError):
        partition_source("x = 1", {})


def test_no_assignments_keeps_everything_in_main():
    result = partition_source(FIG16_SOURCE, {})
    assert list(result.partitions) == [MAIN_PARTITION]
    assert result.ipc_sites == 0


def test_generated_sources_are_valid_python():
    result = partition_source(FIG16_SOURCE, {"show": "partition2"})
    for source in result.partitions.values():
        ast.parse(source)  # must not raise


def test_fig16_try_except_duplicated_into_both_partitions():
    result = partition_source(FIG16_SOURCE, {"show": "partition2"})
    assert result.duplicated_try_blocks == 1
    main = result.source_of(MAIN_PARTITION)
    other = result.source_of("partition2")
    assert "try:" in main and "except Exception" in main
    assert "try:" in other and "except Exception" in other
    # the moved call lives only in partition2
    assert "show(" in other
    assert "show(" not in main


def test_fig16_ipc_stubs_inserted_on_both_sides():
    result = partition_source(FIG16_SOURCE, {"show": "partition2"})
    main = result.source_of(MAIN_PARTITION)
    other = result.source_of("partition2")
    assert "IPC.signal" in main and "IPC.waitfor" in main
    assert "IPC.waitfor" in other and "IPC.signal" in other
    assert result.ipc_sites == 6


def test_fig17_loop_call_gets_service_loop():
    result = partition_source(FIG17_SOURCE, {"show": "partition4"})
    assert result.service_loops == 1
    other = result.source_of("partition4")
    assert "while True:" in other
    # the main side keeps its original for-loop
    assert "for i in range" in result.source_of(MAIN_PARTITION)


def test_fig17_two_partitions_from_two_callees():
    result = partition_source(
        FIG17_SOURCE,
        {"show": "partition4", "saveOrShowStacks": "partition2"},
    )
    assert set(result.partitions) == {
        MAIN_PARTITION, "partition2", "partition4",
    }
    # both are loop-resident, both need to stay alive
    assert result.service_loops == 2
    assert result.ipc_sites == 12


def test_main_keeps_non_partitioned_statements():
    result = partition_source(FIG16_SOURCE, {"show": "partition2"})
    main = result.source_of(MAIN_PARTITION)
    assert "resize_util" in main
    assert "morph = img.copy()" in main


def test_attribute_calls_are_matched():
    source = """
def f(writer, frame):
    writer.append(frame)
    flush(writer)
"""
    result = partition_source(source, {"flush": "p2"})
    assert "flush(" in result.source_of("p2")
    assert "writer.append(frame)" in result.source_of(MAIN_PARTITION)


def test_notes_explain_the_challenges():
    result = partition_source(FIG16_SOURCE, {"show": "partition2"})
    assert any("Fig. 16" in note for note in result.notes)
    result = partition_source(FIG17_SOURCE, {"show": "partition4"})
    assert any("Fig. 17" in note for note in result.notes)


def test_source_of_unknown_partition():
    result = partition_source(FIG16_SOURCE, {})
    with pytest.raises(AnalysisError):
        result.source_of("nope")
