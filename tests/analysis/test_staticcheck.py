"""The static partition linter: rules, fixtures, reporters, suppression."""

import json
import os

import pytest

from repro.staticcheck import (
    check_file,
    render_json,
    render_text,
    rule_ids,
    run_check,
)
from repro.staticcheck.callgraph import build_module
from repro.staticcheck.checker import check_source, iter_python_files
from repro.staticcheck.inference import PartitionInferencer
from repro.staticcheck.report import Severity, suppressions_on

FIXTURES = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "fixtures", "staticcheck"
)
REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def fixture(name):
    return os.path.join(FIXTURES, name)


def rules_found(name):
    return {f.rule for f in check_file(fixture(name)).findings}


# -- the six rule classes: violating + passing variant each -------------

@pytest.mark.parametrize("name, rule", [
    ("frozen_write_violation.py", "frozen-write"),
    ("phase_order_violation.py", "phase-order"),
    ("syscall_pool_violation.py", "syscall-pool"),
    ("wrong_partition_deref_violation.py", "wrong-partition-deref"),
    ("dead_api_violation.py", "dead-api"),
    ("obs_annotation_violation.py", "dead-api"),
    ("uncategorizable_violation.py", "uncategorizable"),
    ("tenant_leak_violation.py", "tenant-ref-leak"),
])
def test_violating_fixture_is_flagged(name, rule):
    assert rule in rules_found(name)


@pytest.mark.parametrize("name", [
    "frozen_write_ok.py",
    "phase_order_ok.py",
    "syscall_pool_ok.py",
    "wrong_partition_deref_ok.py",
    "dead_api_ok.py",
    "obs_annotation_ok.py",
    "uncategorizable_ok.py",
    "tenant_leak_ok.py",
])
def test_passing_fixture_is_clean(name):
    assert check_file(fixture(name)).findings == []


def test_error_rules_drive_exit_code():
    result = check_file(fixture("frozen_write_violation.py"))
    assert result.errors >= 1
    assert result.exit_code == 1


def test_warning_rules_do_not_fail_the_run():
    result = check_file(fixture("wrong_partition_deref_violation.py"))
    assert result.warnings >= 1
    assert result.errors == 0
    assert result.exit_code == 0


# -- finding details ----------------------------------------------------

def test_frozen_write_finding_names_tag_and_states():
    result = check_file(fixture("frozen_write_violation.py"))
    finding = next(f for f in result.findings if f.rule == "frozen-write")
    assert "'scores'" in finding.message
    assert "host_alloc" in finding.message
    assert finding.severity is Severity.ERROR
    assert finding.function == "pipeline"
    assert finding.line > 0


def test_syscall_finding_names_offending_syscalls():
    result = check_file(fixture("syscall_pool_violation.py"))
    finding = next(f for f in result.findings if f.rule == "syscall-pool")
    assert "socket" in finding.message
    assert "sendto" in finding.message
    assert "storing" in finding.message


def test_dead_api_covers_unknown_api_framework_and_unused_spec():
    result = check_file(fixture("dead_api_violation.py"))
    messages = [f.message for f in result.findings if f.rule == "dead-api"]
    assert any("no_such_api" in m for m in messages)
    assert any("fakelib" in m for m in messages)
    assert any("never_called" in m for m in messages)


def test_obs_annotations_skip_only_the_obs_framework():
    result = check_file(fixture("obs_annotation_violation.py"))
    messages = [f.message for f in result.findings if f.rule == "dead-api"]
    assert any("fakelib" in m for m in messages)
    assert not any("obs" in m for m in messages)


def test_uncategorizable_is_an_error():
    result = check_file(fixture("uncategorizable_violation.py"))
    finding = next(
        f for f in result.findings if f.rule == "uncategorizable"
    )
    assert finding.severity is Severity.ERROR
    assert "mystery.transmute" in finding.message


# -- inference details --------------------------------------------------

def test_inferencer_predicts_state_trace_and_agents():
    summary = build_module(fixture("phase_order_ok.py"))
    reports = PartitionInferencer(summary).infer()
    steps = reports["pipeline"].steps
    assert [s.verdict.qualname for s in steps] == [
        "cv2.imread", "cv2.Canny", "cv2.imwrite",
    ]
    assert [s.agent for s in steps] == [
        "data_loading", "data_processing", "storing",
    ]
    assert steps[0].state_before.value == "initialization"
    assert steps[-1].state_after.value == "storing"


def test_gateway_flows_through_module_local_helpers():
    source = (
        "def helper(g, path):\n"
        "    return g.call('opencv', 'imread', path)\n"
        "\n"
        "def pipeline(gateway):\n"
        "    image = helper(gateway, '/data/in.png')\n"
        "    return gateway.call('opencv', 'Canny', image)\n"
    )
    findings, _ = check_source("inline.py", source)
    assert findings == []  # helper resolves; no dead/uncategorizable noise
    from repro.staticcheck.callgraph import CallGraphBuilder

    built = CallGraphBuilder("inline.py", source).build()
    reports = PartitionInferencer(built).infer()
    qualnames = [s.verdict.qualname for s in reports["pipeline"].steps]
    assert qualnames == ["cv2.imread", "cv2.Canny"]


def test_bound_method_alias_and_constant_names_resolve():
    source = (
        "FRAMEWORK = 'opencv'\n"
        "\n"
        "def pipeline(gateway):\n"
        "    call = gateway.call\n"
        "    return call(FRAMEWORK, 'imread', '/data/in.png')\n"
    )
    from repro.staticcheck.callgraph import CallGraphBuilder

    built = CallGraphBuilder("alias.py", source).build()
    reports = PartitionInferencer(built).infer()
    assert [s.verdict.qualname for s in reports["pipeline"].steps] == [
        "cv2.imread"
    ]


# -- suppression --------------------------------------------------------

def test_suppressed_fixture_reports_nothing_but_counts():
    result = check_file(fixture("suppressed.py"))
    assert result.findings == []
    assert result.suppressed == 2


def test_suppression_comment_parsing():
    assert suppressions_on("x = 1") is None
    assert suppressions_on("x = 1  # repro: ignore") == frozenset()
    assert suppressions_on(
        "x = 1  # repro: ignore[frozen-write, phase-order]"
    ) == frozenset({"frozen-write", "phase-order"})


def test_empty_bracket_ignore_suppresses_nothing():
    # `ignore[]` names no rules — it must not act like a bare ignore.
    assert suppressions_on("x = 1  # repro: ignore[]") is None
    assert suppressions_on("x = 1  # repro: ignore[ , ]") is None
    source = (
        "def pipeline(gateway):\n"
        "    gateway.call('opencv', 'no_such_api')  # repro: ignore[]\n"
    )
    findings, suppressed = check_source("empty.py", source)
    assert suppressed == 0
    assert {f.rule for f in findings} == {"dead-api"}


def test_multiple_ignore_groups_union_per_line():
    line = (
        "x = 1  # repro: ignore[frozen-write]  # repro: ignore[dead-api]"
    )
    assert suppressions_on(line) == frozenset(
        {"frozen-write", "dead-api"}
    )
    # A bare ignore anywhere on the line still silences everything.
    assert suppressions_on(
        "x = 1  # repro: ignore  # repro: ignore[dead-api]"
    ) == frozenset()


def test_finding_sort_key_is_a_total_order():
    from repro.staticcheck.report import Finding

    first = Finding(
        rule="dead-api", severity=Severity.ERROR, path="a.py",
        line=3, col=0, message="alpha",
    )
    second = Finding(
        rule="dead-api", severity=Severity.ERROR, path="a.py",
        line=3, col=0, message="beta",
    )
    assert sorted(
        [second, first], key=Finding.sort_key
    ) == [first, second]
    # Same everything except function: still deterministic.
    third = Finding(
        rule="dead-api", severity=Severity.ERROR, path="a.py",
        line=3, col=0, message="beta", function="pipeline",
    )
    assert sorted(
        [third, second], key=Finding.sort_key
    ) == [second, third]


def test_rule_specific_suppression_keeps_other_rules():
    source = (
        "def pipeline(gateway):\n"
        "    gateway.call('opencv', 'no_such_api')"
        "  # repro: ignore[frozen-write]\n"
    )
    findings, suppressed = check_source("partial.py", source)
    assert suppressed == 0
    assert {f.rule for f in findings} == {"dead-api"}


# -- reporters and driver -----------------------------------------------

def test_render_text_has_locations_and_summary():
    result = check_file(fixture("frozen_write_violation.py"))
    text = render_text(result)
    assert "frozen_write_violation.py:" in text
    assert "[frozen-write]" in text
    assert "1 error(s)" in text


def test_render_json_is_valid_and_stable():
    result = check_file(fixture("frozen_write_violation.py"))
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["errors"] == 1
    assert payload["findings"][0]["rule"] == "frozen-write"
    assert payload["findings"][0]["severity"] == "error"


def test_run_check_aggregates_directory():
    result = run_check([FIXTURES])
    assert result.files_checked >= 15
    assert result.exit_code == 1
    by_rule = result.by_rule()
    for rule in ("frozen-write", "phase-order", "syscall-pool",
                 "wrong-partition-deref", "dead-api", "uncategorizable",
                 "tenant-ref-leak"):
        assert by_rule.get(rule, 0) >= 1, rule


def test_iter_python_files_rejects_missing_path():
    with pytest.raises(FileNotFoundError):
        iter_python_files([os.path.join(FIXTURES, "nope-missing")])


def test_parse_error_is_reported_not_raised():
    findings, _ = check_source("broken.py", "def broken(:\n")
    assert [f.rule for f in findings] == ["parse-error"]
    assert findings[0].severity is Severity.ERROR


def test_examples_and_apps_are_clean():
    """The repo's own host programs must pass the linter (CI gate)."""
    result = run_check([
        os.path.join(REPO, "examples"),
        os.path.join(REPO, "src", "repro", "apps"),
    ])
    assert [f.message for f in result.findings] == []
    assert result.exit_code == 0


def test_rule_ids_are_stable():
    assert rule_ids() == (
        "frozen-write", "phase-order", "syscall-pool",
        "wrong-partition-deref", "dead-api", "uncategorizable",
        "tenant-ref-leak", "cross-partition-leak", "tenant-taint-escape",
        "frozen-alias-write", "over-privileged-pool",
    )
