"""Static↔trace parity: runtime behavior stays inside the predicted
universe for every catalog app, and violations are actually caught."""

import pytest

from repro.apps.base import Workload, execute_app
from repro.apps.drone import DroneApp
from repro.apps.suite import SAMPLE_IDS, make_app
from repro.attacks.scenarios import build_gateway
from repro.core.runtime import FreePartConfig
from repro.obs.export import to_chrome_trace, trace_runtime_touches
from repro.sim.kernel import SimKernel
from repro.staticcheck.parity import (
    PARITY_RULE,
    StaticUniverse,
    check_trace_parity,
    universe_from_app,
)

WORKLOAD = Workload(items=2, image_size=16)


def traced_run(app):
    """One traced FreePart run of an app; returns the Chrome payload."""
    kernel = SimKernel()
    kernel.enable_tracing()
    config = FreePartConfig(trace=True, annotations=tuple(app.annotations))
    gateway = build_gateway("freepart", kernel, app=app, config=config)
    workload = Workload(items=WORKLOAD.items, image_size=WORKLOAD.image_size)
    execute_app(app, gateway, workload)
    return to_chrome_trace(kernel.tracer)


# -- the acceptance gate: every catalog app passes parity ---------------

@pytest.mark.parametrize("sample_id", SAMPLE_IDS)
def test_catalog_app_trace_stays_inside_static_universe(sample_id):
    app = make_app(sample_id)
    payload = traced_run(app)
    universe = universe_from_app(app)
    findings = check_trace_parity(universe, payload, "trace.json")
    assert findings == [], [f.message for f in findings]


def test_drone_app_trace_stays_inside_static_universe():
    app = DroneApp()
    payload = traced_run(app)
    findings = check_trace_parity(
        universe_from_app(app), payload, "trace.json"
    )
    assert findings == [], [f.message for f in findings]


# -- violations are detected, not defined away --------------------------

def test_empty_universe_flags_every_touch():
    payload = traced_run(make_app(8))
    findings = check_trace_parity(StaticUniverse(), payload, "t.json")
    assert findings
    assert all(f.rule == PARITY_RULE for f in findings)
    messages = "\n".join(f.message for f in findings)
    assert "deemed unreachable" in messages
    assert "placed none" in messages


def test_missing_syscall_budget_is_flagged_per_syscall():
    app = make_app(8)
    payload = traced_run(app)
    universe = universe_from_app(app)
    # Remove one syscall the loading agent demonstrably uses.
    universe.agent_syscalls["data_loading"].discard("openat")
    findings = check_trace_parity(universe, payload, "t.json")
    assert any(
        "'openat' outside its statically inferred minimal budget"
        in f.message
        for f in findings
    )


def test_unpredicted_partition_edge_is_flagged():
    app = make_app(8)
    payload = traced_run(app)
    universe = universe_from_app(app)
    touches = trace_runtime_touches(payload)
    victim = sorted(touches.agents_by_pid.values())[0]
    universe.agents.discard(victim)
    findings = check_trace_parity(universe, payload, "t.json")
    assert any(
        "crossed partition edge" in f.message and victim in f.message
        for f in findings
    )


# -- the trace scanner itself -------------------------------------------

def test_runtime_touches_extracts_apis_agents_and_edges():
    payload = traced_run(make_app(8))
    touches = trace_runtime_touches(payload)
    assert any(api.startswith("opencv.") for api in touches.apis)
    assert touches.agents_by_pid
    assert touches.syscalls_by_agent
    for source, target in touches.edges:
        assert source != target
        assert source in touches.agents_by_pid.values()
