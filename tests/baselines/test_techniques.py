"""The five baseline techniques: semantics, traffic, and weaknesses."""

import numpy as np
import pytest

from repro.apps.base import Workload, execute_app
from repro.apps.suite import make_app
from repro.baselines import (
    CodeApiDataIsolation,
    CodeApiIsolation,
    EntireLibraryIsolation,
    IndividualApiIsolation,
    MemoryBasedIsolation,
    TECHNIQUES,
)
from repro.errors import SegmentationFault
from repro.frameworks.base import Mat
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=2, image_size=16)


def run_omr(technique_key):
    app = make_app(8)
    kernel = SimKernel()
    gateway = TECHNIQUES[technique_key](kernel)
    report = execute_app(app, gateway, WORKLOAD)
    return kernel, gateway, report


def test_registry_has_all_six():
    assert set(TECHNIQUES) == {
        "none", "code_api", "code_api_data", "lib_entire",
        "lib_individual", "memory_based",
    }


@pytest.mark.parametrize("key", sorted(TECHNIQUES))
def test_every_technique_runs_omrchecker(key):
    kernel, gateway, report = run_omr(key)
    assert not report.failed, report.error
    assert report.result.items_processed == WORKLOAD.items


class TestCodeApi:
    def test_three_worker_partitions_max(self):
        kernel, gateway, _ = run_omr("code_api")
        # p1 (init+load) and p2 (imshow); the rest runs with host code.
        assert gateway.process_count <= 4

    def test_template_colocated_with_loader(self):
        kernel = SimKernel()
        gateway = CodeApiIsolation(kernel)
        gateway.host_alloc("template.QBlocks.orig", [1])
        p1 = gateway._worker("p1-init-and-load")
        assert p1.memory.find_buffer("template.QBlocks.orig") is not None

    def test_gui_breakage_warning(self):
        kernel, gateway, _ = run_omr("code_api")
        assert gateway.functionality_warnings

    def test_processing_calls_are_local(self):
        kernel = SimKernel()
        gateway = CodeApiIsolation(kernel)
        before = kernel.ipc.messages
        gateway.call("opencv", "GaussianBlur", Mat(np.ones((4, 4))))
        assert kernel.ipc.messages == before


class TestCodeApiData:
    def test_data_gets_own_process(self):
        kernel = SimKernel()
        gateway = CodeApiDataIsolation(kernel)
        gateway.host_alloc("template.QBlocks.orig", [1])
        home = gateway._data_homes["template.QBlocks.orig"]
        assert home.role == "agent"
        assert home.memory.find_buffer("template.QBlocks.orig") is not None

    def test_every_data_access_is_an_ipc_round(self):
        kernel = SimKernel()
        gateway = CodeApiDataIsolation(kernel)
        gateway.host_alloc("t", [1])
        before = kernel.ipc.messages
        gateway.host_read("t")
        assert kernel.ipc.messages == before + 2

    def test_hot_loop_generates_most_ipc(self):
        _, _, report_data = run_omr("code_api_data")
        _, _, report_entire = run_omr("lib_entire")
        assert report_data.ipc_messages > report_entire.ipc_messages

    def test_writeback_does_not_clobber_variable(self):
        kernel = SimKernel()
        gateway = CodeApiDataIsolation(kernel)
        gateway.host_alloc("t", [1, 2])
        gateway.call("opencv", "GaussianBlur", Mat(np.ones((4, 4))))
        assert gateway.host_read("t") == [1, 2]


class TestEntireLibrary:
    def test_two_processes(self):
        kernel, gateway, _ = run_omr("lib_entire")
        assert gateway.process_count == 2

    def test_shared_memory_means_no_per_call_copies(self):
        kernel = SimKernel()
        gateway = EntireLibraryIsolation(kernel)
        gateway.call("opencv", "GaussianBlur", Mat(np.ones((16, 16))))
        assert kernel.ipc.total_copies == 0
        assert kernel.ipc.messages == 2  # request + response only

    def test_shared_data_objects_live_in_library_process(self):
        kernel = SimKernel()
        gateway = EntireLibraryIsolation(kernel)
        gateway.host_alloc("OMRCrop", Mat(np.ones(4)))
        library = gateway.library_process()
        assert library.memory.find_buffer("OMRCrop") is not None

    def test_scalar_host_state_stays_private(self):
        kernel = SimKernel()
        gateway = EntireLibraryIsolation(kernel)
        gateway.host_alloc("template", [1])
        assert gateway.host.memory.find_buffer("template") is not None


class TestIndividualApis:
    def test_one_process_per_api(self):
        kernel = SimKernel()
        gateway = IndividualApiIsolation(kernel)
        gateway.call("opencv", "GaussianBlur", Mat(np.ones(4)))
        gateway.call("opencv", "erode", Mat(np.ones(4)))
        gateway.call("opencv", "erode", Mat(np.ones(4)))
        assert gateway.api_process_count() == 2

    def test_full_data_transferred_every_call(self):
        kernel = SimKernel()
        gateway = IndividualApiIsolation(kernel)
        image = Mat(np.ones((32, 32)))
        gateway.call("opencv", "GaussianBlur", image)
        # argument in + result out
        assert kernel.ipc.nonlazy_copies == 2
        assert kernel.ipc.message_bytes > image.nbytes

    def test_highest_overhead_of_all(self):
        times = {}
        for key in ("none", "code_api", "lib_entire", "lib_individual"):
            _, _, report = run_omr(key)
            times[key] = report.virtual_seconds
        assert times["lib_individual"] == max(times.values())
        assert times["lib_individual"] > 1.5 * times["none"]


class TestMemoryBased:
    def test_single_process(self):
        kernel, gateway, _ = run_omr("memory_based")
        assert gateway.process_count == 1

    def test_protected_tags_become_readonly(self):
        kernel = SimKernel()
        gateway = MemoryBasedIsolation(kernel)
        gateway.host_alloc("template.QBlocks.orig", [1])
        with pytest.raises(SegmentationFault):
            gateway.host_write("template.QBlocks.orig", [2])

    def test_unprotected_tags_writable(self):
        kernel = SimKernel()
        gateway = MemoryBasedIsolation(kernel)
        gateway.host_alloc("scores", [])
        gateway.host_write("scores", [1])

    def test_near_zero_overhead(self):
        _, _, native = run_omr("none")
        _, _, protected = run_omr("memory_based")
        overhead = protected.virtual_seconds / native.virtual_seconds - 1
        assert overhead < 0.01


def test_table9_cost_ordering():
    """Table 9's shape: none ≈ memory < code_api ≈ entire < api_data < individual."""
    times = {}
    for key in TECHNIQUES:
        _, _, report = run_omr(key)
        times[key] = report.virtual_seconds
    assert times["memory_based"] == pytest.approx(times["none"], rel=0.02)
    assert times["code_api"] < times["code_api_data"]
    assert times["lib_entire"] < times["code_api_data"]
    assert times["code_api_data"] < times["lib_individual"]


def test_table9_data_volume_ordering():
    volumes = {}
    for key in ("code_api", "code_api_data", "lib_entire", "lib_individual"):
        _, _, report = run_omr(key)
        volumes[key] = report.data_transferred_bytes
    # Entire library shares memory: least data; individual APIs move most.
    assert volumes["lib_entire"] == min(volumes.values())
    assert volumes["lib_individual"] == max(
        volumes[k] for k in ("code_api", "lib_entire", "lib_individual")
    )
