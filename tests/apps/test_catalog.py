"""The schedule builder and repertoires (apps.catalog)."""

import pytest

from repro.apps.base import AppSpec, ArgSpec, TypeCounts
from repro.apps.catalog import (
    REPERTOIRES,
    build_schedule,
    repertoire,
)
from repro.core.apitypes import APIType
from repro.frameworks.registry import get_api


def make_spec(**overrides):
    defaults = dict(
        sample_id=500, name="test-app", main_framework="opencv",
        language="Python", sloc=10, size_bytes=1, description="t",
        loading=TypeCounts(1, 1), processing=TypeCounts(3, 5),
        visualizing=TypeCounts(0, 0), storing=TypeCounts(1, 1),
    )
    defaults.update(overrides)
    return AppSpec(**defaults)


def test_every_repertoire_entry_resolves_to_a_registered_api():
    for framework_name, table in REPERTOIRES.items():
        for api_type, entries in table.items():
            for fw, name, argspec in entries:
                api = get_api(fw, name)
                assert isinstance(argspec, ArgSpec)
                # repertoire entries respect the API's own type, except
                # type-neutral utilities which may appear under processing
                assert (
                    api.spec.ground_truth is api_type or api.spec.neutral
                ), (fw, name)


def test_every_repertoire_entry_is_covered_by_dynamic_analysis():
    # Table 11 footnote: evaluated programs only use covered APIs, so the
    # schedule builder must never pick an uncovered one.
    for framework_name, table in REPERTOIRES.items():
        for entries in table.values():
            for fw, name, _ in entries:
                assert get_api(fw, name).spec.has_test_case, (fw, name)


def test_repertoire_merges_frameworks_in_order():
    merged = repertoire(("caffe", "opencv"), APIType.LOADING)
    names = [(fw, name) for fw, name, _ in merged]
    assert names[0][0] == "caffe"
    assert any(fw == "opencv" for fw, _ in names)
    assert len(names) == len(set(names))  # no duplicates


def test_build_schedule_exact_counts():
    spec = make_spec()
    schedule = build_schedule(spec)
    processing = [s for s in schedule if s.api_type is APIType.PROCESSING]
    assert len({(s.framework, s.api) for s in processing}) == 3
    assert len(processing) == 5


def test_build_schedule_infeasible_unique_raises():
    spec = make_spec(visualizing=TypeCounts(50, 50))  # no 50 vis APIs
    with pytest.raises(ValueError):
        build_schedule(spec)


def test_build_schedule_zero_type_skipped():
    spec = make_spec(visualizing=TypeCounts(0, 0))
    schedule = build_schedule(spec)
    assert not [s for s in schedule if s.api_type is APIType.VISUALIZING]


def test_mandatory_cve_apis_lead_the_selection():
    # Sample 20 must include tf.tile (CVE-2021-41198) even though its
    # loading/processing quotas are small.
    from repro.apps.suite import get_spec

    schedule = build_schedule(get_spec(20))
    assert ("tensorflow", "tile") in {(s.framework, s.api) for s in schedule}


def test_single_loop_loader_rule():
    spec = make_spec(loading=TypeCounts(3, 6))
    schedule = build_schedule(spec)
    loaders = [s for s in schedule if s.api_type is APIType.LOADING]
    assert len(loaders) == 6
    assert sum(1 for s in loaders if s.loop) == 1
    assert loaders[0].loop  # the first site feeds the main loop


def test_totals_distributed_round_robin():
    spec = make_spec(processing=TypeCounts(2, 7))
    schedule = build_schedule(spec)
    counts = {}
    for site in schedule:
        if site.api_type is APIType.PROCESSING:
            counts[site.api] = counts.get(site.api, 0) + 1
    assert sorted(counts.values()) == [3, 4]
