"""The 23 evaluation applications (Table 6)."""

import pytest

from repro.apps.base import Workload, execute_app
from repro.apps.suite import (
    APP_SPECS,
    SAMPLE_IDS,
    all_apps,
    get_spec,
    make_app,
    used_api_objects,
)
from repro.attacks.cves import cves_for_sample
from repro.core.apitypes import APIType
from repro.core.gateway import NativeGateway
from repro.core.runtime import FreePart
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=2, image_size=16)


def test_twenty_three_samples():
    assert SAMPLE_IDS == tuple(range(1, 24))


def test_get_spec_and_missing():
    assert get_spec(8).name == "OMRChecker"
    with pytest.raises(KeyError):
        get_spec(99)


def test_main_framework_distribution_matches_paper():
    mains = [spec.main_framework for spec in APP_SPECS.values()]
    assert mains.count("opencv") == 8
    assert mains.count("caffe") == 3
    assert mains.count("pytorch") == 8
    assert mains.count("tensorflow") == 4


@pytest.mark.parametrize("sample_id", SAMPLE_IDS)
def test_schedule_counts_match_table6(sample_id):
    app = make_app(sample_id)
    spec = app.spec
    counts = app.schedule_counts()
    for api_type, expected in (
        (APIType.LOADING, spec.loading),
        (APIType.PROCESSING, spec.processing),
        (APIType.VISUALIZING, spec.visualizing),
        (APIType.STORING, spec.storing),
    ):
        got = counts.get(api_type)
        unique, total = (got.unique, got.total) if got else (0, 0)
        assert (unique, total) == (expected.unique, expected.total), api_type


@pytest.mark.parametrize("sample_id", SAMPLE_IDS)
def test_schedule_includes_sample_cve_apis(sample_id):
    app = make_app(sample_id)
    scheduled = {(s.framework, s.api) for s in app.schedule}
    for record in cves_for_sample(sample_id):
        assert (record.framework, record.api_name) in scheduled, record.cve_id


@pytest.mark.parametrize("sample_id", SAMPLE_IDS)
def test_runs_native(sample_id):
    app = make_app(sample_id)
    report = execute_app(app, NativeGateway(SimKernel()), WORKLOAD)
    assert not report.failed, report.error
    assert report.result.items_processed == WORKLOAD.items


@pytest.mark.parametrize("sample_id", SAMPLE_IDS)
def test_runs_under_freepart(sample_id):
    app = make_app(sample_id)
    freepart = FreePart()
    gateway = freepart.deploy(used_apis=used_api_objects(app))
    workload = Workload(items=1, image_size=16)
    report = execute_app(app, gateway, workload)
    assert not report.failed, report.error
    assert report.crashes == 0  # benign workload: no false positives
    assert report.transitions >= 2
    # tiny 1-item workloads have few copies; LDC still dominates
    assert report.lazy_fraction >= 0.5 or report.lazy_copies == 0


def test_processing_dominates_call_sites():
    """Table 6's qualitative claim: data processing has the most APIs.

    One app (Video-to-ascii) has more loading sites than processing
    sites, exactly as the published table shows; in aggregate processing
    dominates every other type.
    """
    totals = {"loading": 0, "processing": 0, "visualizing": 0, "storing": 0}
    for app in all_apps():
        spec = app.spec
        totals["loading"] += spec.loading.total
        totals["processing"] += spec.processing.total
        totals["visualizing"] += spec.visualizing.total
        totals["storing"] += spec.storing.total
    assert totals["processing"] > 3 * totals["loading"]
    assert totals["processing"] > 10 * totals["visualizing"]
    assert totals["processing"] > 10 * totals["storing"]


def test_loading_apis_are_fewest_unique():
    total_loading = sum(spec.loading.unique for spec in APP_SPECS.values())
    total_processing = sum(spec.processing.unique for spec in APP_SPECS.values())
    assert total_loading < total_processing / 4


def test_used_api_objects_resolve():
    apis = used_api_objects(make_app(8))
    assert all(hasattr(api, "spec") for api in apis)
    qualnames = {api.spec.qualname for api in apis}
    assert "cv2.imread" in qualnames
