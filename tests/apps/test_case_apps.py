"""Case-study applications: facial (Fig. 10), drone, MComix3, A.7 apps."""

import numpy as np
import pytest

from repro.apps.base import Workload, execute_app
from repro.apps.drone import DEFAULT_SPEED, DroneApp, SPEED_TAG, drone_followed_object
from repro.apps.facial import FacialRecognitionApp, USERPROFILE_TAG
from repro.apps.mcomix import MComixApp
from repro.apps.medical import CtViewerApp, InvoiceOcrApp
from repro.apps.suite import used_api_objects
from repro.core.gateway import NativeGateway
from repro.core.runtime import FreePart
from repro.sim.kernel import SimKernel


def run(app, mode="native", workload=None):
    workload = workload or Workload(items=3, image_size=16)
    kernel = SimKernel()
    if mode == "native":
        gateway = NativeGateway(kernel)
    else:
        gateway = FreePart(kernel=kernel).deploy(used_apis=used_api_objects(app))
    report = execute_app(app, gateway, workload)
    return kernel, gateway, report


class TestFacialRecognition:
    def test_processes_frames_until_quit_key(self):
        app = FacialRecognitionApp()
        kernel, gateway, report = run(
            app, workload=Workload(items=10, image_size=16, keys="ssq")
        )
        assert not report.failed, report.error
        # 'q' on the third frame stops the loop early.
        assert report.result.items_processed == 2

    def test_s_key_saves_frames(self):
        app = FacialRecognitionApp()
        kernel, gateway, report = run(
            app, workload=Workload(items=5, image_size=16, keys="s")
        )
        saved = kernel.fs.listdir("/out/facial/")
        assert len(saved) == 1

    def test_detections_notified_to_server(self):
        app = FacialRecognitionApp()
        kernel, gateway, report = run(
            app, workload=Workload(items=4, image_size=16)
        )
        assert kernel.devices.network.outbound_to("server")

    def test_profiles_in_host_memory(self):
        app = FacialRecognitionApp()
        kernel, gateway, report = run(app, workload=Workload(items=2))
        profiles = report.result.outputs["profiles"]
        assert "alice" in profiles

    def test_same_behaviour_under_freepart(self):
        workload = Workload(items=4, image_size=16)
        _, _, native_report = run(FacialRecognitionApp(), "native", workload)
        _, _, protected_report = run(FacialRecognitionApp(), "freepart", workload)
        assert (native_report.result.items_processed
                == protected_report.result.items_processed)


class TestDrone:
    def test_drone_follows_object(self):
        kernel, gateway, report = run(DroneApp(), workload=Workload(items=6))
        assert not report.failed
        assert drone_followed_object(report.result)
        assert report.result.outputs["final_speed"] == DEFAULT_SPEED
        assert report.result.outputs["airborne"]

    def test_drone_under_freepart_same_trajectory(self):
        workload = Workload(items=6, image_size=16)
        _, _, a = run(DroneApp(), "native", workload)
        _, _, b = run(DroneApp(), "freepart", workload)
        assert a.result.outputs["positions"] == b.result.outputs["positions"]


class TestMComix:
    def test_recent_files_accumulate(self):
        kernel, gateway, report = run(MComixApp(), workload=Workload(items=3))
        menu = report.result.outputs["recent_menu"]
        assert len(menu) == 3
        assert menu[0].endswith("issue-2.cbz")
        assert report.result.outputs["recent_variable"] == menu

    def test_runs_under_freepart(self):
        kernel, gateway, report = run(MComixApp(), "freepart",
                                      workload=Workload(items=3))
        assert not report.failed, report.error


class TestMedicalApps:
    @pytest.mark.parametrize("app_cls", [CtViewerApp, InvoiceOcrApp])
    def test_record_stays_intact(self, app_cls):
        kernel, gateway, report = run(app_cls(), workload=Workload(items=2))
        assert not report.failed, report.error
        assert report.result.outputs["record"] == app_cls().record_value
        assert len(report.result.outputs["findings"]) == 2

    def test_findings_deterministic_across_modes(self):
        workload = Workload(items=2, image_size=16)
        _, _, a = run(CtViewerApp(), "native", workload)
        _, _, b = run(CtViewerApp(), "freepart", workload)
        assert np.allclose(a.result.outputs["findings"],
                           b.result.outputs["findings"])
