"""OMRChecker: grading behaviour and the motivating example's data."""

import numpy as np
import pytest

from repro.apps.base import Workload, execute_app
from repro.apps.omrchecker import (
    ANSWERS_TAG,
    DEFAULT_TEMPLATE,
    MASTER_ANSWERS,
    OMRCROP_TAG,
    OMRCheckerApp,
    TEMPLATE_TAG,
    read_scores,
)
from repro.apps.suite import used_api_objects
from repro.core.gateway import NativeGateway
from repro.core.runtime import FreePart, FreePartConfig
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=3, image_size=16)


def run(gateway_factory):
    app = OMRCheckerApp()
    kernel = SimKernel()
    gateway = gateway_factory(app, kernel)
    report = execute_app(app, gateway, WORKLOAD)
    return app, kernel, gateway, report


def native(app, kernel):
    return NativeGateway(kernel)


def freepart(app, kernel):
    config = FreePartConfig(annotations=tuple(app.annotations))
    return FreePart(kernel=kernel, config=config).deploy(
        used_apis=used_api_objects(app)
    )


def test_grades_all_sheets_correctly_native():
    app, kernel, gateway, report = run(native)
    assert not report.failed, report.error
    rows = read_scores(kernel, app)
    assert rows[0] == ["sheet", "recognized", "score"]
    for row in rows[1:]:
        # Every marked sheet scores full marks against the master answers.
        assert row[2] == len(MASTER_ANSWERS)
        assert row[1] == "".join(MASTER_ANSWERS)


def test_grades_identically_under_freepart():
    _, kernel_a, _, _ = run(native)
    app_b, kernel_b, _, _ = run(freepart)
    assert read_scores(kernel_a, OMRCheckerApp()) == read_scores(kernel_b, app_b)


def test_critical_data_allocated(native_run=None):
    app, kernel, gateway, report = run(native)
    assert gateway.host_read(TEMPLATE_TAG) == [list(b) for b in DEFAULT_TEMPLATE]
    assert gateway.host_read(ANSWERS_TAG) == MASTER_ANSWERS
    assert gateway.host_buffer(OMRCROP_TAG) is not None


def test_template_readonly_under_freepart_after_loading():
    from repro.errors import SegmentationFault

    app, kernel, gateway, report = run(freepart)
    with pytest.raises(SegmentationFault):
        gateway.host_write(TEMPLATE_TAG, [[0, 0, 0, 0]])


def test_annotations_cover_motivating_example():
    tags = {a.tag for a in OMRCheckerApp().annotations}
    assert tags == {TEMPLATE_TAG, ANSWERS_TAG, OMRCROP_TAG}
    for annotation in OMRCheckerApp().annotations:
        annotation.validate()


def test_hot_loop_sites_marked():
    app = OMRCheckerApp()
    hot = [s for s in app.schedule if s.repeat > 1]
    hot_names = {s.api for s in hot}
    assert hot_names == {"rectangle", "putText"}


def test_schedule_matches_table6_row_8():
    from repro.core.apitypes import APIType

    counts = OMRCheckerApp().schedule_counts()
    assert (counts[APIType.LOADING].unique, counts[APIType.LOADING].total) == (2, 4)
    assert (counts[APIType.PROCESSING].unique,
            counts[APIType.PROCESSING].total) == (42, 88)
    assert (counts[APIType.VISUALIZING].unique,
            counts[APIType.VISUALIZING].total) == (4, 5)
    assert (counts[APIType.STORING].unique, counts[APIType.STORING].total) == (1, 1)
