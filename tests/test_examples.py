"""Every example script runs cleanly end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLE_SCRIPTS
    assert len(EXAMPLE_SCRIPTS) >= 5


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys, monkeypatch):
    # matplotlib-style module state in miniutil is process-global; keep
    # each example run hermetic enough by running via runpy.
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), script  # every example prints its findings


def test_quickstart_output_mentions_agents(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "4 agents" in out
    assert "lazy" in out


def test_omr_grading_shows_protection_contrast(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "omr_grading.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "template corrupted: True" in out    # unprotected
    assert "template corrupted: False" in out   # FreePart
