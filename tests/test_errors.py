"""The exception hierarchy: messages, attributes, inheritance."""

import pytest

from repro import errors


def test_hierarchy_roots():
    assert issubclass(errors.SimulationError, errors.ReproError)
    assert issubclass(errors.SegmentationFault, errors.SimulationError)
    assert issubclass(errors.SyscallDenied, errors.SimulationError)
    assert issubclass(errors.RuntimeSupportError, errors.ReproError)
    assert issubclass(errors.FrameworkCrash, errors.RuntimeSupportError)
    assert issubclass(errors.AnalysisError, errors.ReproError)


def test_segfault_message_and_attributes():
    fault = errors.SegmentationFault(7, 0x1234, "write", reason="read-only")
    assert fault.pid == 7
    assert fault.address == 0x1234
    assert "0x1234" in str(fault)
    assert "read-only" in str(fault)


def test_syscall_denied_attributes():
    denied = errors.SyscallDenied(3, "fork")
    assert denied.syscall == "fork"
    assert "not in allowlist" in str(denied)
    custom = errors.SyscallDenied(3, "ioctl", reason="fd 9")
    assert "fd 9" in str(custom)


def test_process_crashed_message():
    assert "process 5 has crashed" in str(errors.ProcessCrashed(5))
    assert "boom" in str(errors.ProcessCrashed(5, "boom"))


def test_framework_crash_wraps_cause():
    cause = errors.ProcessCrashed(9, "DoS")
    crash = errors.FrameworkCrash("cv2.imread", cause)
    assert crash.qualname == "cv2.imread"
    assert crash.cause is cause
    assert "cv2.imread" in str(crash)


def test_attack_blocked_carries_mechanism():
    blocked = errors.AttackBlocked("seccomp", "fork denied")
    assert blocked.mechanism == "seccomp"
    assert "fork denied" in str(blocked)


def test_catch_all_with_repro_error():
    for exc in (
        errors.SegmentationFault(1, 0, "read"),
        errors.SyscallDenied(1, "read"),
        errors.FrameworkCrash("x", ValueError("y")),
        errors.UncategorizableAPI("z"),
        errors.StaleObjectRef("gone"),
        errors.ChannelFull("full"),
    ):
        with pytest.raises(errors.ReproError):
            raise exc
