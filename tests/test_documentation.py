"""Documentation coverage: every public item carries a doc comment."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition site
        yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = [
        f"{module_name}.{name}"
        for name, member in public_members(module)
        if not (member.__doc__ and member.__doc__.strip())
    ]
    assert not undocumented, undocumented


@pytest.mark.parametrize("module_name", [
    "repro.core.runtime", "repro.core.gateway", "repro.core.agent",
    "repro.frameworks.base", "repro.sim.kernel", "repro.sim.memory",
])
def test_key_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for class_name, cls in public_members(module):
        if not inspect.isclass(cls):
            continue
        for method_name, method in vars(cls).items():
            if method_name.startswith("_"):
                continue
            if not inspect.isfunction(method):
                continue
            if not (method.__doc__ and method.__doc__.strip()):
                undocumented.append(f"{class_name}.{method_name}")
    assert not undocumented, undocumented


def test_package_docs_exist():
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parent.parent.parent
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (root / doc).exists(), doc
