"""More property-based tests: schedules, partition transforms, RPC."""

import ast

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.app_partitioning import MAIN_PARTITION, partition_source
from repro.analysis.study_usage import follows_pipeline
from repro.apps.base import AppSpec, TypeCounts
from repro.apps.catalog import build_schedule
from repro.core.apitypes import APIType
from repro.core.rpc import ObjectStore, SequenceTracker
from repro.frameworks.base import Mat
from repro.sim.kernel import SimKernel

# ----------------------------------------------------------------------
# Schedule builder: any feasible Table 6 row yields an exact schedule
# ----------------------------------------------------------------------


@st.composite
def feasible_counts(draw):
    def cell(max_unique, pool):
        unique = draw(st.integers(min_value=0, max_value=max_unique))
        if unique == 0:
            return TypeCounts(0, 0)
        total = draw(st.integers(min_value=unique, max_value=unique * 4))
        return TypeCounts(unique, total)

    return AppSpec(
        sample_id=999,
        name="prop-app",
        main_framework="opencv",
        language="Python",
        sloc=100,
        size_bytes=1,
        description="property-generated",
        loading=cell(6, None),
        processing=cell(40, None),
        visualizing=cell(6, None),
        storing=cell(3, None),
    )


@settings(deadline=None, max_examples=30)
@given(spec=feasible_counts())
def test_schedule_builder_hits_requested_counts(spec):
    schedule = build_schedule(spec)
    by_type = {}
    for site in schedule:
        key = (site.framework, site.api)
        by_type.setdefault(site.api_type, {}).setdefault(key, 0)
        by_type[site.api_type][key] += 1
    for api_type, counts in (
        (APIType.LOADING, spec.loading),
        (APIType.PROCESSING, spec.processing),
        (APIType.VISUALIZING, spec.visualizing),
        (APIType.STORING, spec.storing),
    ):
        sites = by_type.get(api_type, {})
        assert len(sites) == counts.unique
        assert sum(sites.values()) == counts.total


@settings(deadline=None, max_examples=30)
@given(spec=feasible_counts())
def test_schedule_has_at_most_one_loop_loader(spec):
    schedule = build_schedule(spec)
    loop_loaders = [
        s for s in schedule
        if s.api_type is APIType.LOADING and s.loop
    ]
    assert len(loop_loaders) <= 1


# ----------------------------------------------------------------------
# App partitioning: generated partitions always parse, IPC is balanced
# ----------------------------------------------------------------------

_CALLEES = ["load", "proc", "show", "save"]


@st.composite
def toy_programs(draw):
    lines = ["def program(x):"]
    body = draw(st.lists(
        st.sampled_from(_CALLEES + ["x = x + 1"]), min_size=1, max_size=6,
    ))
    in_loop = draw(st.booleans())
    indent = "    "
    if in_loop:
        lines.append("    for i in range(3):")
        indent = "        "
    for entry in body:
        if entry in _CALLEES:
            lines.append(f"{indent}{entry}(x)")
        else:
            lines.append(f"{indent}{entry}")
    return "\n".join(lines) + "\n"


@settings(deadline=None, max_examples=40)
@given(
    source=toy_programs(),
    moved=st.sets(st.sampled_from(_CALLEES), max_size=3),
)
def test_partitioned_sources_always_parse(source, moved):
    assignments = {name: f"part_{name}" for name in moved}
    result = partition_source(source, assignments)
    for generated in result.partitions.values():
        ast.parse(generated)
    # IPC stubs come in matched main/partition halves.
    assert result.ipc_sites % 6 == 0


@settings(deadline=None, max_examples=40)
@given(source=toy_programs(), moved=st.sets(st.sampled_from(_CALLEES), max_size=3))
def test_moved_calls_leave_the_main_partition(source, moved):
    assignments = {name: f"part_{name}" for name in moved}
    result = partition_source(source, assignments)
    main = result.source_of(MAIN_PARTITION)
    for name in moved:
        if f"{name}(x)" in source:
            assert f"{name}(x)" not in main
            assert f"{name}(x)" in result.source_of(f"part_{name}")


# ----------------------------------------------------------------------
# Pipeline checker properties
# ----------------------------------------------------------------------

_STAGES = ["loading", "processing", "visualizing", "storing"]


@given(st.lists(st.sampled_from(_STAGES), max_size=8))
def test_pipeline_checker_accepts_after_inserting_loading(stages):
    # Interleaving extra "loading" stages never invalidates a valid run.
    if follows_pipeline(stages):
        widened = []
        for stage in stages:
            widened.extend(["loading", stage])
        assert follows_pipeline(widened)


@given(st.lists(st.sampled_from(_STAGES), min_size=1, max_size=8))
def test_pipeline_checker_prefix_closed(stages):
    # Every prefix of a valid pipeline is a valid pipeline.
    if follows_pipeline(stages):
        for cut in range(1, len(stages)):
            assert follows_pipeline(stages[:cut])


# ----------------------------------------------------------------------
# RPC invariants
# ----------------------------------------------------------------------


@given(st.lists(st.booleans(), max_size=30))
def test_sequence_tracker_retry_accounting(retries):
    tracker = SequenceTracker()
    expected_retries = 0
    for retry in retries:
        seq = tracker.next_seq()
        tracker.record_execution(seq)
        if retry:
            tracker.record_execution(seq)
            expected_retries += 1
    assert tracker.retries == expected_retries
    assert tracker.exactly_once == (expected_retries == 0)


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=16))
def test_object_store_refs_are_distinct_and_fetchable(sizes):
    kernel = SimKernel()
    process = kernel.spawn("p", charge=False)
    store = ObjectStore(process)
    refs = [
        store.register(Mat(np.zeros(size)), state_label="data_loading")
        for size in sizes
    ]
    assert len({r.buffer_id for r in refs}) == len(refs)
    for ref, size in zip(refs, sizes):
        assert store.fetch(ref).data.shape == (size,)
        assert ref.payload_bytes == size * 8
