"""``repro bench``: payload schema, the regression gate, the exit contract.

Exit codes are part of the CI contract: 0 = measured (and gate passed),
1 = at least one gated metric regressed, 2 = usage error.  The serve
bench is the cheapest to measure, so the end-to-end cases use it; gate
logic itself is unit-tested on synthetic payloads.
"""

import json

import pytest

from repro.bench.perf import (
    DEFAULT_TOLERANCE,
    SCHEMA,
    Regression,
    build_payload,
    compare_payloads,
    load_payload,
    payload_filename,
    render_payload,
    validate_payload,
    write_payload,
)
from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def payload(bench="serve", **metrics):
    if not metrics:
        metrics = {"rps": (100.0, "higher"), "seconds": (2.0, "lower")}
    return {
        "schema": SCHEMA,
        "bench": bench,
        "metrics": {
            name: {"value": value, "direction": direction}
            for name, (value, direction) in metrics.items()
        },
        "details": {},
    }


class TestGateLogic:
    def test_identical_payloads_pass(self):
        assert compare_payloads(payload(), payload()) == []

    def test_within_tolerance_passes(self):
        current = payload(rps=(96.0, "higher"), seconds=(2.09, "lower"))
        assert compare_payloads(current, payload()) == []

    def test_lower_is_better_regression(self):
        current = payload(rps=(100.0, "higher"), seconds=(2.5, "lower"))
        found = compare_payloads(current, payload())
        assert [r.metric for r in found] == ["seconds"]
        assert found[0].direction == "lower"
        assert "above baseline" in found[0].describe()

    def test_higher_is_better_regression(self):
        current = payload(rps=(80.0, "higher"), seconds=(2.0, "lower"))
        found = compare_payloads(current, payload())
        assert [r.metric for r in found] == ["rps"]
        assert "below baseline" in found[0].describe()

    def test_missing_metric_is_a_regression(self):
        current = payload(rps=(100.0, "higher"))
        found = compare_payloads(current, payload())
        assert [r.metric for r in found] == ["seconds"]

    def test_new_metrics_are_informational(self):
        current = payload(
            rps=(100.0, "higher"), seconds=(2.0, "lower"),
            extra=(7.0, "higher"),
        )
        assert compare_payloads(current, payload()) == []

    def test_improvements_never_fire_the_gate(self):
        current = payload(rps=(900.0, "higher"), seconds=(0.1, "lower"))
        assert compare_payloads(current, payload()) == []

    def test_tolerance_is_relative(self):
        base = payload(seconds=(10.0, "lower"), rps=(1.0, "higher"))
        ok = payload(seconds=(10.9, "lower"), rps=(1.0, "higher"))
        bad = payload(seconds=(11.1, "lower"), rps=(1.0, "higher"))
        assert compare_payloads(ok, base, tolerance=0.1) == []
        assert compare_payloads(bad, base, tolerance=0.1) != []

    def test_change_pct_with_zero_baseline(self):
        regression = Regression(
            bench="serve", metric="rps", baseline=0.0,
            current=1.0, direction="higher",
        )
        assert regression.change_pct == float("inf")


class TestPayloadSchema:
    def test_valid_payload_has_no_errors(self):
        assert validate_payload(payload()) == []

    def test_bad_payloads_are_rejected(self):
        assert validate_payload([]) != []
        assert validate_payload({"schema": "nope"}) != []
        broken = payload()
        broken["metrics"]["rps"]["direction"] = "sideways"
        assert validate_payload(broken) != []
        boolean = payload()
        boolean["metrics"]["rps"]["value"] = True
        assert validate_payload(boolean) != []
        empty = payload()
        empty["metrics"] = {}
        assert validate_payload(empty) != []

    def test_render_is_stable_and_newline_terminated(self):
        rendered = render_payload(payload())
        assert rendered == render_payload(json.loads(rendered))
        assert rendered.endswith("\n")

    def test_write_then_load_roundtrips(self, tmp_path):
        path = write_payload(payload(), str(tmp_path))
        assert path.endswith(payload_filename("serve"))
        assert load_payload(path) == payload()

    def test_load_rejects_malformed_baselines(self, tmp_path):
        path = tmp_path / payload_filename("serve")
        path.write_text('{"schema": "wrong"}')
        with pytest.raises(ValueError):
            load_payload(str(path))

    def test_unknown_bench_name_rejected(self):
        with pytest.raises(ValueError):
            build_payload("fig99")


@pytest.fixture(scope="module")
def serve_payload():
    """One real measurement, shared by every end-to-end CLI case."""
    return build_payload("serve")


class TestExitContract:
    def test_exit_0_measures_and_prints_metrics(self, capsys):
        code, out, err = run_cli(capsys, "bench", "--which", "serve")
        assert code == 0
        assert "[serve]" in out
        assert "pooled_requests_per_second" in out

    def test_exit_0_json_output_is_parseable(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "bench", "--which", "serve", "--json",
            "--out", str(tmp_path),
        )
        assert code == 0
        combined = json.loads(out)
        assert validate_payload(combined["serve"]) == []
        written = load_payload(str(tmp_path / payload_filename("serve")))
        assert written == combined["serve"]

    def test_exit_0_when_gate_passes(self, capsys, tmp_path, serve_payload):
        write_payload(serve_payload, str(tmp_path))
        code, out, err = run_cli(
            capsys, "bench", "--which", "serve",
            "--baseline", str(tmp_path),
        )
        assert code == 0
        assert "perf gate passed" in out
        assert "REGRESSION" not in err

    def test_exit_1_on_regression(self, capsys, tmp_path, serve_payload):
        doctored = json.loads(json.dumps(serve_payload))
        entry = doctored["metrics"]["pooled_requests_per_second"]
        entry["value"] = entry["value"] * 100  # unreachably high bar
        write_payload(doctored, str(tmp_path))
        code, out, err = run_cli(
            capsys, "bench", "--which", "serve",
            "--baseline", str(tmp_path),
        )
        assert code == 1
        assert "REGRESSION: serve.pooled_requests_per_second" in err
        assert "perf gate passed" not in out

    def test_exit_2_on_negative_tolerance(self, capsys):
        code, _, err = run_cli(
            capsys, "bench", "--which", "serve", "--tolerance", "-0.1",
        )
        assert code == 2
        assert "--tolerance must be >= 0" in err

    def test_exit_2_on_missing_baseline_dir(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "bench", "--which", "serve",
            "--baseline", str(tmp_path / "nope"),
        )
        assert code == 2
        assert "does not exist" in err

    def test_exit_2_on_malformed_baseline_payload(self, capsys, tmp_path):
        (tmp_path / payload_filename("serve")).write_text("not json")
        code, _, err = run_cli(
            capsys, "bench", "--which", "serve",
            "--baseline", str(tmp_path),
        )
        assert code == 2

    def test_exit_2_on_missing_baseline_file(self, capsys, tmp_path):
        # The directory exists but has no BENCH_serve.json: a silent
        # pass would defeat the gate, so it is a usage error.
        code, _, err = run_cli(
            capsys, "bench", "--which", "serve",
            "--baseline", str(tmp_path),
        )
        assert code == 2

    def test_unknown_which_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--which", "fig99"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_default_tolerance_matches_module_constant(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench"])
        assert args.tolerance == DEFAULT_TOLERANCE
