"""The ``repro report`` subcommand: artifact determinism and verdicts."""

import json

import pytest

from repro.cli import main
from repro.obs.report import REPORT_SCHEMA


def test_report_drone_prints_valid_json(capsys):
    assert main(["report", "drone"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == REPORT_SCHEMA
    assert payload["mode"] == "app"
    assert payload["rollup"][-1]["category"] == "untraced"
    # Apps have no request stream; the SLO section is vacuous but present.
    assert payload["slo"]["requests"] == 0


def test_report_serve_bench_is_byte_identical(tmp_path, capsys):
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert main(["report", "serve-bench", "--out", str(first),
                 "--fail-on-alerts"]) == 0
    assert main(["report", "serve-bench", "--out", str(second),
                 "--fail-on-alerts"]) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()
    payload = json.loads(first.read_text())
    assert payload["slo"]["alert_count"] == 0
    assert payload["slo"]["requests"] == 4
    assert payload["top_slowest"]["tenants"]


def test_report_cluster_bench_covers_every_node(tmp_path, capsys):
    out = tmp_path / "cluster.json"
    markdown = tmp_path / "cluster.md"
    assert main(["report", "cluster-bench", "--nodes", "2",
                 "--out", str(out), "--md", str(markdown),
                 "--fail-on-alerts"]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    labels = [node["label"] for node in payload["critical_path"]["nodes"]]
    assert labels == ["node0", "node1"]
    assert payload["slo"]["alert_count"] == 0
    text = markdown.read_text()
    assert text.startswith("# Run report — cluster-bench (cluster)")
    assert "## Slowest nodes" in text


def test_report_rejects_unknown_target(capsys):
    assert main(["report", "warp-drive"]) == 2
    assert "unknown report target" in capsys.readouterr().err
