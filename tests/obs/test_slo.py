"""SLO burn-rate math: thresholds, window fixtures, and properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.slo import (
    DEFAULT_SLOS,
    FAST_WINDOW,
    SLOW_WINDOW,
    RequestEvent,
    SLOSpec,
    evaluate_slos,
)
from repro.sim.clock import NS_PER_SEC

AVAILABILITY = SLOSpec("availability", "availability", objective=0.999)


def _ok(at_ns, latency_ns=1_000):
    return RequestEvent(at_ns=at_ns, latency_ns=latency_ns, ok=True)


def _err(at_ns, latency_ns=1_000):
    return RequestEvent(at_ns=at_ns, latency_ns=latency_ns, ok=False)


def test_default_burn_thresholds():
    # threshold = budget_share * period / window: the SRE-workbook pair
    # scaled to virtual milliseconds.
    assert FAST_WINDOW.burn_threshold(NS_PER_SEC) == 50.0
    assert SLOW_WINDOW.burn_threshold(NS_PER_SEC) == 1.0


def test_spec_validation():
    with pytest.raises(ValueError):
        SLOSpec("x", "throughput", objective=0.9)
    with pytest.raises(ValueError):
        SLOSpec("x", "availability", objective=1.0)
    with pytest.raises(ValueError):
        SLOSpec("x", "latency", objective=0.9)  # threshold_ns missing


def test_clean_stream_fires_zero_alerts():
    events = [_ok(index * 100_000) for index in range(50)]
    for result in evaluate_slos(events, DEFAULT_SLOS):
        assert result.met
        assert result.alerts == []
        assert all(not cell.alert for cell in result.timeline)


def test_empty_stream_is_vacuously_met():
    for result in evaluate_slos([], DEFAULT_SLOS):
        assert result.met
        assert result.achieved == 1.0
        assert result.alerts == []


def test_concentrated_errors_fire_fast_and_slow_windows():
    # One failed request among four in a single 1 ms cell: error rate
    # 0.25, burn 250 against budget 0.001 — over the fast threshold (50)
    # and the slow threshold (1).
    events = [_ok(0), _ok(100), _ok(200), _err(300)]
    (result,) = evaluate_slos(events, [AVAILABILITY])
    assert not result.met
    assert [alert.window for alert in result.alerts] == ["fast", "slow"]
    fast = result.alerts[0]
    assert fast.start_ns == 0 and fast.end_ns == 1_000_000
    assert fast.errors == 1 and fast.requests == 4
    assert fast.burn_rate == pytest.approx(250.0)
    assert fast.threshold == pytest.approx(50.0)


def test_shallow_burn_fires_only_the_slow_window():
    # Objective 0.9 (budget 0.1): the fast threshold is burn >= 50,
    # unreachable since error_rate <= 1 caps burn at 10 — only the slow
    # window (threshold 1) can see a shallow sustained burn.
    spec = SLOSpec("avail-90", "availability", objective=0.9)
    events = [_err(i * 10_000) if i < 2 else _ok(i * 10_000)
              for i in range(10)]
    (result,) = evaluate_slos(events, [spec])
    assert [alert.window for alert in result.alerts] == ["slow"]
    assert result.alerts[0].burn_rate == pytest.approx(2.0)


def test_latency_kind_judges_latency_alone():
    spec = SLOSpec("lat", "latency", objective=0.99, threshold_ns=1_000)
    fast_but_failed = RequestEvent(at_ns=0, latency_ns=500, ok=False)
    slow_but_ok = RequestEvent(at_ns=1, latency_ns=5_000, ok=True)
    assert spec.is_good(fast_but_failed)
    assert not spec.is_good(slow_but_ok)


def test_goodput_kind_requires_both():
    spec = SLOSpec("good", "goodput", objective=0.99, threshold_ns=1_000)
    assert spec.is_good(RequestEvent(at_ns=0, latency_ns=500, ok=True))
    assert not spec.is_good(RequestEvent(at_ns=0, latency_ns=500, ok=False))
    assert not spec.is_good(RequestEvent(at_ns=0, latency_ns=5_000, ok=True))


def test_evaluation_is_input_order_independent():
    events = [_err(i * 250_000) if i % 3 == 0 else _ok(i * 250_000)
              for i in range(12)]
    shuffled = list(events)
    random.Random(7).shuffle(shuffled)
    expected = [r.to_dict() for r in evaluate_slos(events, [AVAILABILITY])]
    got = [r.to_dict() for r in evaluate_slos(shuffled, [AVAILABILITY])]
    assert got == expected


EVENT_STREAMS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50_000_000),  # at_ns
        st.booleans(),                                   # ok
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(EVENT_STREAMS)
def test_evaluation_is_deterministic(stream):
    events = [RequestEvent(at_ns=at, ok=ok) for at, ok in stream]
    first = [r.to_dict() for r in evaluate_slos(events, [AVAILABILITY])]
    second = [r.to_dict() for r in evaluate_slos(events, [AVAILABILITY])]
    assert first == second


@settings(max_examples=60, deadline=None)
@given(EVENT_STREAMS, st.data())
def test_alerting_is_monotone_in_error_rate(stream, data):
    """Flipping any successful request to a failure never clears alerts.

    Burn rate per cell is errors/requests/budget — strictly increasing
    in the error count — so the set of firing cells only grows.
    """
    events = [RequestEvent(at_ns=at, ok=ok) for at, ok in stream]
    ok_indices = [i for i, event in enumerate(events) if event.ok]
    if not ok_indices:
        return
    flip = data.draw(st.sampled_from(ok_indices))
    worse = list(events)
    worse[flip] = RequestEvent(
        at_ns=events[flip].at_ns,
        node=events[flip].node,
        tenant=events[flip].tenant,
        latency_ns=events[flip].latency_ns,
        ok=False,
    )
    (before,) = evaluate_slos(events, [AVAILABILITY])
    (after,) = evaluate_slos(worse, [AVAILABILITY])
    assert len(after.alerts) >= len(before.alerts)
    before_cells = {(a.window, a.start_ns) for a in before.alerts}
    after_cells = {(a.window, a.start_ns) for a in after.alerts}
    assert before_cells <= after_cells
