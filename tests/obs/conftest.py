"""Shared fixture: one fully traced FreePart drone run per module."""

import pytest

from repro.apps.base import Workload, execute_app
from repro.apps.drone import DroneApp
from repro.attacks.scenarios import build_gateway
from repro.core.runtime import FreePartConfig
from repro.sim.kernel import SimKernel


@pytest.fixture(scope="module")
def traced_drone():
    """(kernel, report) of a drone-tracker run with tracing enabled."""
    app = DroneApp()
    kernel = SimKernel()
    kernel.enable_tracing()
    config = FreePartConfig(
        trace=True, annotations=tuple(app.annotations)
    )
    gateway = build_gateway("freepart", kernel, app=app, config=config)
    report = execute_app(app, gateway, Workload(items=2, image_size=16))
    return kernel, report
