"""The unified run report: determinism, sections, and verification."""

import pytest

from repro.errors import AccountingError
from repro.obs.report import (
    REPORT_SCHEMA,
    build_report,
    render_report_json,
    render_report_markdown,
    top_slowest,
)
from repro.obs.slo import RequestEvent
from repro.obs.tracer import Span


def _serve_run():
    import numpy as np

    from repro.core.runtime import FreePartConfig
    from repro.serve.bench import standard_pipeline
    from repro.serve.server import PipelineServer
    from repro.sim.kernel import SimKernel

    server = PipelineServer(
        kernel=SimKernel(),
        config=FreePartConfig(trace=True),
        pool_size=2,
        batching=True,
    )
    rng = np.random.default_rng(0)
    for tenant in range(2):
        for index in range(2):
            path = f"/data/tenant-{tenant}/in-{index}.png"
            server.kernel.fs.write_file(path, rng.normal(size=(16, 16)))
            server.submit(
                f"tenant-{tenant}",
                standard_pipeline(
                    path, f"/out/tenant-{tenant}/out-{index}.png"
                ),
            )
    server.drain()
    server.shutdown()
    return server


def _serve_report(server):
    kernel = server.kernel
    return build_report(
        "serve-bench", "serve",
        nodes=[("node0", kernel.tracer, kernel.clock.now_ns)],
        events=server.events,
        series=kernel.series,
    )


@pytest.fixture(scope="module")
def serve_report():
    return _serve_report(_serve_run())


def test_report_sections_and_schema(serve_report):
    assert serve_report["schema"] == REPORT_SCHEMA
    for key in ("slo", "critical_path", "rollup", "top_slowest",
                "series", "extra", "virtual_ns"):
        assert key in serve_report
    assert serve_report["slo"]["requests"] == 4
    assert serve_report["rollup"][-1]["category"] == "untraced"
    assert serve_report["critical_path"]["nodes"][0]["label"] == "node0"


def test_clean_serve_run_fires_zero_alerts(serve_report):
    assert serve_report["slo"]["alert_count"] == 0
    assert serve_report["slo"]["all_met"] is True


def test_report_is_byte_identical_across_reruns(serve_report):
    again = _serve_report(_serve_run())
    assert render_report_json(again) == render_report_json(serve_report)


def test_series_include_serving_and_mechanism_dimensions(serve_report):
    keys = list(serve_report["series"])
    assert any(key.startswith("serve.latency_ns{tenant=") for key in keys)
    assert any(key.startswith("admission.queue_depth{") for key in keys)
    assert any(key.startswith("pool.lease{agent_pool=") for key in keys)
    assert any(key.startswith("mechanism.self_ns{mechanism=")
               for key in keys)


def test_markdown_rendering_is_deterministic(serve_report):
    text = render_report_markdown(serve_report)
    assert text == render_report_markdown(serve_report)
    for heading in ("# Run report — serve-bench (serve)",
                    "## SLO verdicts",
                    "## Critical path",
                    "## Mechanism rollup (verified)",
                    "## Slowest tenants"):
        assert heading in text


def test_top_slowest_ranks_by_worst_latency_and_skips_unlabeled():
    events = [
        RequestEvent(at_ns=0, tenant="a", latency_ns=10),
        RequestEvent(at_ns=1, tenant="a", latency_ns=30, ok=False),
        RequestEvent(at_ns=2, tenant="b", latency_ns=50),
        RequestEvent(at_ns=3, tenant="", latency_ns=999),
    ]
    rows = top_slowest(events, "tenant", k=5)
    assert [row["tenant"] for row in rows] == ["b", "a"]
    assert rows[1] == {
        "tenant": "a", "requests": 2, "errors": 1,
        "max_latency_ns": 30, "mean_latency_ns": 20,
    }


def test_report_refuses_to_render_unbalanced_books():
    class StubTracer:
        def __init__(self, spans):
            self._spans = spans

        def closed_spans(self):
            return list(self._spans)

    orphaned = StubTracer([
        Span(span_id=1, name="root", category="compute", start_ns=0,
             end_ns=100, pid=100, parent_id=None, depth=0),
        Span(span_id=2, name="mark", category="pool", start_ns=0,
             end_ns=0, pid=100, parent_id=None, depth=0, kind="instant"),
        Span(span_id=3, name="stray", category="rpc", start_ns=10,
             end_ns=40, pid=100, parent_id=2, depth=1),
    ])
    with pytest.raises(AccountingError) as excinfo:
        build_report("bad", "test", nodes=[("node0", orphaned, 100)])
    assert "node0" in str(excinfo.value)
