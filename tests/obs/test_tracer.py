"""SpanTracer: nesting, exception unwinding, instants, the null tracer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.tracer import NULL_TRACER, NullTracer, SpanTracer
from repro.sim.clock import VirtualClock


@pytest.fixture()
def clock():
    return VirtualClock()


@pytest.fixture()
def tracer(clock):
    return SpanTracer(clock)


def test_span_records_interval_from_virtual_clock(tracer, clock):
    with tracer.span("work", category="compute", pid=3, api="cv2.imread"):
        clock.advance(500)
    (span,) = tracer.closed_spans()
    assert span.name == "work"
    assert span.category == "compute"
    assert span.pid == 3
    assert (span.start_ns, span.end_ns, span.duration_ns) == (0, 500, 500)
    assert span.attrs["api"] == "cv2.imread"
    assert span.parent_id is None
    assert span.depth == 0


def test_tracer_never_advances_the_clock(tracer, clock):
    with tracer.span("outer", category="rpc"):
        tracer.instant("marker", category="state")
        with tracer.span("inner", category="syscall"):
            pass
    assert clock.now_ns == 0


def test_nested_spans_link_parent_child_and_depth(tracer, clock):
    with tracer.span("outer", category="rpc") as outer:
        clock.advance(100)
        with tracer.span("inner", category="ipc") as inner:
            clock.advance(50)
        clock.advance(25)
    assert inner.parent_id == outer.span_id
    assert inner.depth == outer.depth + 1
    assert outer.duration_ns == 175
    assert inner.duration_ns == 50
    assert tracer.current is None


def test_exception_unwinds_all_open_frames(tracer, clock):
    with pytest.raises(RuntimeError):
        with tracer.span("outer", category="rpc"):
            clock.advance(10)
            inner_cm = tracer.span("inner", category="syscall")
            inner_cm.__enter__()
            clock.advance(5)
            raise RuntimeError("agent crashed")
    spans = {s.name: s for s in tracer.closed_spans()}
    # The inner frame never reached __exit__, but closing the outer span
    # must still complete it at the same end time.
    assert spans["inner"].end_ns == spans["outer"].end_ns == 15
    assert tracer.current is None


def test_instant_is_zero_duration_and_not_pushed(tracer, clock):
    clock.advance(42)
    span = tracer.instant("transition", category="state", pid=1)
    assert span.kind == "instant"
    assert span.start_ns == span.end_ns == 42
    assert tracer.current is None


def test_add_span_is_out_of_band_by_default(tracer):
    span = tracer.add_span(
        "admission_wait", category="admission", start_ns=10, end_ns=90
    )
    assert span.out_of_band
    assert span.duration_ns == 80


def test_annotate_after_open(tracer, clock):
    with tracer.span("rpc", category="rpc") as span:
        span.annotate(agent="data_loading", agent_pid=7)
    assert tracer.closed_spans()[0].attrs["agent"] == "data_loading"


def test_name_track_first_name_wins(tracer):
    tracer.name_track(4, "agent:data_loading")
    tracer.name_track(4, "agent:replacement")
    assert tracer.track_names[4] == "agent:data_loading"


def test_by_category_groups_closed_spans(tracer, clock):
    with tracer.span("a", category="ipc"):
        clock.advance(1)
    with tracer.span("b", category="ipc"):
        clock.advance(1)
    with tracer.span("c", category="copy"):
        clock.advance(1)
    grouped = tracer.by_category()
    assert len(grouped["ipc"]) == 2
    assert len(grouped["copy"]) == 1


def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("x", category="y") as opened:
        opened.annotate(ignored=True)
    assert NULL_TRACER.instant("x", category="y") is None
    assert NULL_TRACER.add_span("x", "y", 0, 1) is None
    NULL_TRACER.name_track(1, "nope")
    assert NULL_TRACER.closed_spans() == []
    assert NULL_TRACER.by_category() == {}
    assert NULL_TRACER.current is None
    assert isinstance(NULL_TRACER, NullTracer)


# ----------------------------------------------------------------------
# Property: arbitrary open/advance/close interleavings keep the tree sound
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.sampled_from(["open", "close", "advance", "instant"]), max_size=60,
))
def test_span_tree_invariants_hold_for_any_interleaving(ops):
    clock = VirtualClock()
    tracer = SpanTracer(clock)
    open_cms = []
    for op in ops:
        if op == "open":
            cm = tracer.span(f"s{len(tracer.spans)}", category="t")
            cm.__enter__()
            open_cms.append(cm)
        elif op == "close" and open_cms:
            open_cms.pop().__exit__(None, None, None)
        elif op == "advance":
            clock.advance(100)
        else:
            tracer.instant("i", category="t")
    while open_cms:
        open_cms.pop().__exit__(None, None, None)

    spans = tracer.closed_spans()
    assert len(spans) == len(tracer.spans)  # everything closed
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        assert span.end_ns >= span.start_ns
        if span.parent_id is None:
            assert span.depth == 0
            continue
        parent = by_id[span.parent_id]
        assert span.depth == parent.depth + 1
        # A child's interval nests inside its parent's.
        assert parent.start_ns <= span.start_ns
        assert span.end_ns <= parent.end_ns
