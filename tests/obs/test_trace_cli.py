"""The ``repro trace`` subcommand: determinism, schema, targets, errors."""

import json

import pytest

from repro.cli import main
from repro.obs.export import validate_chrome_trace


def test_trace_drone_export_is_byte_identical_across_runs(tmp_path, capsys):
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert main(["trace", "drone", "--out", str(first)]) == 0
    assert main(["trace", "drone", "--out", str(second)]) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()


def test_trace_export_validates_against_chrome_schema(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "drone", "--out", str(out)]) == 0
    assert "perfetto" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert validate_chrome_trace(payload) == []
    assert len(payload["traceEvents"]) > 50


def test_trace_rollup_total_matches_end_to_end_time(capsys):
    assert main(["trace", "drone", "--rollup"]) == 0
    out = capsys.readouterr().out
    assert "Where the virtual nanoseconds went" in out
    assert "end-to-end virtual time:" in out
    # The TOTAL row repeats the exact ns figure from the note line.
    total_ns = out.rsplit("end-to-end virtual time:", 1)[1].split()[0]
    total_row = next(
        line for line in out.splitlines() if line.startswith("TOTAL")
    )
    assert total_ns in total_row.split()


def test_trace_defaults_to_rollup_without_flags(capsys):
    assert main(["trace", "drone"]) == 0
    assert "Where the virtual nanoseconds went" in capsys.readouterr().out


def test_trace_serve_bench_target_has_serving_spans(tmp_path, capsys):
    out = tmp_path / "serve.json"
    assert main([
        "trace", "serve-bench", "--items", "1", "--out", str(out),
    ]) == 0
    payload = json.loads(out.read_text())
    assert validate_chrome_trace(payload) == []
    names = {e["name"] for e in payload["traceEvents"]}
    assert {"serve_request", "admission_wait", "batch",
            "pool_lease"} <= names
    waits = [e for e in payload["traceEvents"]
             if e["name"] == "admission_wait"]
    assert all(e["args"].get("out_of_band") for e in waits)
    # One Chrome row per tenant lane.
    meta_names = {
        e["args"]["name"] for e in payload["traceEvents"]
        if e["ph"] == "M"
    }
    assert {"tenant:tenant-0", "tenant:tenant-1"} <= meta_names


def test_trace_cve_target_records_restart(capsys):
    assert main(["trace", "CVE-2017-12597", "--rollup"]) == 0
    out = capsys.readouterr().out
    restart_row = next(
        (line for line in out.splitlines() if line.startswith("restart")),
        None,
    )
    assert restart_row is not None  # the exploit crashed an agent
    assert "3500000" in restart_row  # CostModel.process_restart_ns


def test_trace_unknown_target_exits_2(capsys):
    assert main(["trace", "not-a-target"]) == 2
    assert "unknown trace target" in capsys.readouterr().err


def test_numeric_target_runs_suite_app(capsys):
    assert main(["trace", "8", "--rollup"]) == 0
    assert "end-to-end virtual time:" in capsys.readouterr().out
