"""Metrics registry: counters, gauges, histograms, the GatewayStats shim."""

import pytest

from repro.core.apitypes import APIType
from repro.core.gateway import CallRecord, GatewayStats
from repro.obs.metrics import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments_and_rejects_decrease():
    counter = Counter("calls")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("queue_depth")
    gauge.set(4)
    gauge.add(-3)
    assert gauge.value == 1


def test_histogram_buckets_are_upper_bound_inclusive():
    hist = Histogram("lat", bounds=(10, 100, 1000))
    for value in (10, 11, 100, 5000):
        hist.observe(value)
    # <=10, <=100, <=1000, overflow
    assert hist.bucket_counts == [1, 2, 0, 1]
    assert hist.count == 4
    assert hist.total == 5121
    assert hist.mean == pytest.approx(5121 / 4)


def test_histogram_rejects_non_increasing_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10, 10, 20))
    with pytest.raises(ValueError):
        Histogram("bad", bounds=())


def test_default_buckets_are_a_fixed_geometric_ladder():
    assert DEFAULT_NS_BUCKETS[0] == 1_000
    assert len(DEFAULT_NS_BUCKETS) == 15
    assert all(
        b == a * 4
        for a, b in zip(DEFAULT_NS_BUCKETS, DEFAULT_NS_BUCKETS[1:])
    )


def test_registry_instruments_are_get_or_create():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_registry_snapshot_is_sorted_and_json_able():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a").inc(2)
    registry.gauge("depth").set(3)
    registry.histogram("lat", bounds=(1, 2)).observe(1)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["counters"]["a"] == 2
    assert snap["gauges"]["depth"] == 3
    assert snap["histograms"]["lat"]["count"] == 1
    json.dumps(snap)  # must serialize cleanly


def test_gateway_stats_shim_feeds_the_registry():
    registry = MetricsRegistry()
    stats = GatewayStats(registry=registry)
    record = CallRecord(
        framework="opencv", name="imread", qualname="cv2.imread",
        api_type=APIType.LOADING,
    )
    stats.record(record)
    stats.record(record)
    # The legacy list API still works...
    assert stats.total_calls() == 2
    assert stats.unique_qualnames() == ["cv2.imread"]
    # ...and the registry sees the same traffic.
    assert registry.counter("gateway.api_calls").value == 2
    assert registry.counter("gateway.calls.data_loading").value == 2


def test_kernel_owns_a_registry_shared_by_its_gateways(traced_drone):
    kernel, _ = traced_drone
    snap = kernel.metrics.snapshot()
    assert snap["counters"]["gateway.api_calls"] > 0
    assert any(
        name.startswith("gateway.calls.") for name in snap["counters"]
    )


# ----------------------------------------------------------------------
# Histogram quantiles (bucket-upper-bound semantics, pinned)
# ----------------------------------------------------------------------


def test_histogram_quantile_reports_bucket_upper_bounds():
    histogram = Histogram("lat", bounds=(1_000, 4_000, 16_000))
    for value in (500, 1_500, 2_000, 10_000):
        histogram.observe(value)
    # ceil-rank: p25 -> 1st observation (500, bucket bound 1000); p50 ->
    # 2nd (1500 <= 4000); p99 -> 4th (10000 <= 16000).  Always the
    # bucket's upper bound, never an interpolation.
    assert histogram.quantile(0.25) == 1_000
    assert histogram.quantile(0.50) == 4_000
    assert histogram.quantile(0.99) == 16_000


def test_histogram_quantile_on_exact_bound_stays_in_bucket():
    histogram = Histogram("lat", bounds=(1_000, 4_000))
    histogram.observe(1_000)
    assert histogram.quantile(0.5) == 1_000


def test_histogram_quantile_empty_and_overflow_return_none():
    histogram = Histogram("lat", bounds=(1_000, 4_000))
    assert histogram.quantile(0.5) is None
    histogram.observe(1_000_000)  # above the top bound
    assert histogram.overflow == 1
    # The rank lands in the overflow bucket: no finite bound to report.
    assert histogram.quantile(0.99) is None


def test_histogram_snapshot_pins_the_overflow_count():
    histogram = Histogram("lat", bounds=(1_000,))
    histogram.observe(500)
    histogram.observe(2_000)
    snap = histogram.snapshot()
    assert snap["overflow"] == 1
    assert snap["overflow"] == snap["bucket_counts"][-1]
    assert snap["count"] == 2
