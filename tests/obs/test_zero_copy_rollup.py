"""Zero-copy spans in the mechanism rollup: exact partition, zero cost.

Page remaps and COW downgrades emit ``zero_copy``-category spans; the
rollup must still partition the end-to-end virtual time exactly, and the
traced run must charge byte-for-byte what the untraced run charges.
"""

import numpy as np

from repro.obs.export import mechanism_rollup
from repro.sim.kernel import ZERO_COPY_MIN_BYTES, SimKernel
from repro.sim.memory import Permission


def scenario(traced):
    kernel = SimKernel()
    if traced:
        kernel.enable_tracing()
    src = kernel.spawn("src")
    dst = kernel.spawn("dst")
    payload = np.zeros(ZERO_COPY_MIN_BYTES // 8 * 2, dtype=np.float64)
    buffer = kernel.transfer(src, dst, payload, zero_copy=True)
    dst.memory.protect_buffer(buffer.buffer_id, Permission.ro())
    dst.memory.protect_buffer(buffer.buffer_id, Permission.rw())
    dst.memory.store(buffer.buffer_id, np.ones_like(payload))  # COW
    kernel.transfer(src, dst, payload, zero_copy=True)
    return kernel


def test_rollup_partitions_time_with_zero_copy_spans():
    kernel = scenario(traced=True)
    total_ns = kernel.clock.now_ns
    rows = mechanism_rollup(kernel.tracer, total_ns)
    assert sum(r.self_ns for r in rows) == total_ns
    assert all(r.self_ns >= 0 for r in rows)
    by_category = {r.category: r.self_ns for r in rows}
    assert {"spawn", "ipc", "mprotect", "zero_copy"} <= set(by_category)
    cost = kernel.clock.cost_model
    payload_bytes = ZERO_COPY_MIN_BYTES * 2
    npages = payload_bytes // 4096
    # zero_copy self-time = two page remaps + one COW downgrade, exactly.
    assert by_category["zero_copy"] == (
        2 * cost.remap_cost(npages) + cost.copy_cost(payload_bytes)
    )


def test_zero_copy_span_names_and_attrs():
    kernel = scenario(traced=True)
    spans = [
        s for s in kernel.tracer.closed_spans()
        if s.category == "zero_copy"
    ]
    names = sorted(s.name for s in spans)
    assert names == ["cow_copy", "page_remap", "page_remap"]
    remap = next(s for s in spans if s.name == "page_remap")
    assert remap.attrs["pages"] == ZERO_COPY_MIN_BYTES * 2 // 4096
    assert remap.attrs["bytes"] == ZERO_COPY_MIN_BYTES * 2
    cow = next(s for s in spans if s.name == "cow_copy")
    assert cow.attrs["segment"] == remap.attrs["segment"]


def test_tracing_never_changes_the_charged_time():
    assert (
        scenario(traced=True).clock.now_ns
        == scenario(traced=False).clock.now_ns
    )
