"""Exports over a real traced run: Chrome schema, tree, mechanism rollup."""

import json

from repro.obs.export import (
    mechanism_rollup,
    render_rollup,
    render_tree,
    to_chrome_trace,
    validate_chrome_trace,
)


def test_traced_run_produces_expected_mechanism_spans(traced_drone):
    kernel, report = traced_drone
    assert not report.failed
    grouped = kernel.tracer.by_category()
    for category in ("rpc", "spawn", "compute", "ipc", "syscall",
                     "filter_check", "serialize", "mprotect", "state"):
        assert grouped.get(category), f"no {category} spans recorded"
    rpc_attrs = grouped["rpc"][0].attrs
    assert "api" in rpc_attrs
    assert "agent" in rpc_attrs  # annotated after routing


def test_chrome_export_is_schema_valid_and_json_able(traced_drone):
    kernel, _ = traced_drone
    payload = to_chrome_trace(kernel.tracer)
    assert validate_chrome_trace(payload) == []
    assert payload["displayTimeUnit"] == "ms"
    json.dumps(payload)


def test_chrome_export_has_one_named_row_per_process(traced_drone):
    kernel, _ = traced_drone
    payload = to_chrome_trace(kernel.tracer)
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    span_pids = {
        e["pid"] for e in payload["traceEvents"] if e["ph"] != "M"
    }
    assert {e["pid"] for e in meta} == span_pids
    names = {e["args"]["name"] for e in meta}
    assert any(name.startswith("agent:") for name in names)


def test_validator_flags_broken_payloads():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})
    bad_order = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 5.0, "pid": 1, "tid": 1, "dur": 1},
        {"name": "b", "ph": "X", "ts": 1.0, "pid": 1, "tid": 1, "dur": 1},
    ]}
    assert any("not sorted" in p for p in validate_chrome_trace(bad_order))
    no_dur = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1},
    ]}
    assert any("'dur'" in p for p in validate_chrome_trace(no_dur))


def test_rollup_partitions_end_to_end_virtual_time(traced_drone):
    kernel, _ = traced_drone
    total_ns = kernel.clock.now_ns
    rows = mechanism_rollup(kernel.tracer, total_ns)
    assert sum(r.self_ns for r in rows) == total_ns
    categories = {r.category for r in rows}
    assert "untraced" in categories
    assert all(r.self_ns >= 0 for r in rows)
    # Sorted by descending self time (untraced row appended last).
    body = rows[:-1]
    assert body == sorted(body, key=lambda r: (-r.self_ns, r.category))


def test_render_rollup_prints_total_equal_to_run_time(traced_drone):
    kernel, _ = traced_drone
    total_ns = kernel.clock.now_ns
    text = render_rollup(kernel.tracer, total_ns)
    assert f"end-to-end virtual time: {total_ns} ns" in text
    assert str(total_ns) in text.splitlines()[-3]  # the TOTAL row


def test_render_tree_indents_children(traced_drone):
    kernel, _ = traced_drone
    text = render_tree(kernel.tracer, max_spans=50)
    lines = text.splitlines()
    assert any(line.startswith("- rpc") for line in lines)
    assert any(line.startswith("  ") for line in lines)  # nested span
