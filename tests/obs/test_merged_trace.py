"""Merged multi-node trace and rollup validators, positive and negative."""

import pytest

from repro.obs.export import (
    NODE_PID_STRIDE,
    RollupRow,
    validate_merged_trace,
    validate_rollup_rows,
)


def _meta(pid, name="node0:host"):
    return {"name": "process_name", "ph": "M", "ts": 0,
            "pid": pid, "tid": pid, "args": {"name": name}}


def _event(pid, node, name="rpc_call", cat="rpc", ts=1.0):
    return {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": 1.0,
            "pid": pid, "tid": pid, "args": {"node": node}}


def _payload(events):
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def test_valid_merged_payload_passes():
    pid0 = 100
    pid1 = NODE_PID_STRIDE + 100
    payload = _payload([
        _meta(pid0, "node0:host"),
        _meta(pid1, "node1:host"),
        _event(pid0, 0, name="inter_node_send", cat="inter_node"),
        _event(pid1, 1, name="inter_node_recv", cat="inter_node", ts=2.0),
    ])
    assert validate_merged_trace(payload) == []


def test_duplicate_process_name_row_is_a_pid_collision():
    payload = _payload([
        _meta(100, "node0:host"),
        _meta(100, "node1:host"),
        _event(100, 0),
    ])
    problems = validate_merged_trace(payload)
    assert any("cross-node pid collision" in p for p in problems)


def test_event_without_node_arg_is_rejected():
    event = _event(100, 0)
    del event["args"]["node"]
    problems = validate_merged_trace(_payload([_meta(100), event]))
    assert any("args['node']" in p for p in problems)


def test_node_arg_must_match_pid_namespace():
    payload = _payload([
        _meta(NODE_PID_STRIDE + 100, "node1:host"),
        _event(NODE_PID_STRIDE + 100, 0, ts=1.0),
    ])
    problems = validate_merged_trace(payload)
    assert any("namespace" in p for p in problems)


def test_event_without_process_name_row_is_rejected():
    problems = validate_merged_trace(_payload([_event(100, 0)]))
    assert any("no process_name row" in p for p in problems)


def test_inter_node_send_without_recv_is_rejected():
    payload = _payload([
        _meta(100),
        _event(100, 0, name="inter_node_send", cat="inter_node"),
    ])
    problems = validate_merged_trace(payload)
    assert any("inter_node_recv" in p for p in problems)


def test_real_cluster_merged_trace_validates(tmp_path):
    import numpy as np

    from repro.cluster.kernel import ClusterKernel
    from repro.cluster.serve import ClusterServer
    from repro.cluster.sharding import DirectoryPartitioner
    from repro.cluster.trace import cluster_chrome_trace, cluster_rollup
    from repro.core.runtime import FreePartConfig
    from repro.serve.bench import standard_pipeline

    cluster = ClusterKernel(nodes=2)
    cluster.enable_tracing()
    server = ClusterServer(
        cluster=cluster, config=FreePartConfig(trace=True),
        pool_size=2, batching=True,
    )
    rng = np.random.default_rng(0)
    paths = []
    payloads = {}
    for tenant in range(4):
        path = f"/data/tenant-{tenant}/in-0.png"
        paths.append(path)
        payloads[path] = rng.normal(size=(16, 16))
    manifest = DirectoryPartitioner().split(paths)
    server.load_dataset(manifest, payloads)
    for tenant in range(4):
        server.pin_tenant_to_item(
            f"tenant-{tenant}", f"/data/tenant-{tenant}/in-0.png"
        )
        server.submit(
            f"tenant-{tenant}",
            standard_pipeline(
                f"/data/tenant-{tenant}/in-0.png",
                f"/out/tenant-{tenant}/out-0.png",
            ),
        )
    server.drain()
    server.shutdown()
    assert validate_merged_trace(cluster_chrome_trace(cluster)) == []
    assert validate_rollup_rows(cluster_rollup(cluster)) == []


def _row(category, spans=1, self_ns=10, percent=1.0):
    return RollupRow(category, spans, self_ns, percent)


def test_rollup_rows_validator_accepts_merged_table():
    rows = [_row("rpc"), _row("copy"), _row("untraced", spans=0)]
    assert validate_rollup_rows(rows) == []


def test_rollup_rows_validator_rejects_concatenation():
    rows = [_row("rpc"), _row("rpc"), _row("untraced", spans=0)]
    problems = validate_rollup_rows(rows)
    assert any("merge, not concatenate" in p for p in problems)


def test_rollup_rows_validator_requires_final_untraced():
    assert validate_rollup_rows([]) != []
    problems = validate_rollup_rows([_row("rpc")])
    assert any("untraced" in p for p in problems)


def test_rollup_rows_validator_rejects_negative_self_time():
    rows = [_row("rpc", self_ns=-5), _row("untraced", spans=0)]
    problems = validate_rollup_rows(rows)
    assert any("negative self time" in p for p in problems)
