"""Critical-path extraction and the attribution/rollup reconciliation."""

import pytest

from repro.errors import AccountingError
from repro.obs.critical_path import (
    accountable_spans,
    extract_critical_path,
    mechanism_attribution,
    reconcile_attribution,
)
from repro.obs.export import mechanism_rollup
from repro.obs.tracer import Span


class StubTracer:
    """A tracer double serving a hand-built span forest."""

    def __init__(self, spans):
        self._spans = list(spans)

    def closed_spans(self):
        return list(self._spans)


def _span(span_id, category, start_ns, end_ns, parent_id=None, depth=0,
          kind="span", out_of_band=False):
    return Span(
        span_id=span_id, name=f"s{span_id}", category=category,
        start_ns=start_ns, end_ns=end_ns, pid=100, parent_id=parent_id,
        depth=depth, kind=kind, out_of_band=out_of_band,
    )


def _tree_tracer():
    # root [0, 100) with children a [0, 60) and b [60, 90);
    # a has one child a1 [10, 30).
    return StubTracer([
        _span(1, "compute", 0, 100),
        _span(2, "rpc", 0, 60, parent_id=1, depth=1),
        _span(3, "copy", 60, 90, parent_id=1, depth=1),
        _span(4, "syscall", 10, 30, parent_id=2, depth=2),
    ])


def test_accountable_spans_filter_matches_rollup():
    tracer = StubTracer([
        _span(1, "compute", 0, 100),
        _span(2, "rpc", 0, 0, kind="instant"),
        _span(3, "copy", 0, 50, out_of_band=True),
    ])
    accountable = accountable_spans(tracer)
    assert [span.span_id for span in accountable] == [1]
    rows = mechanism_rollup(tracer, 100)
    assert [(row.category, row.self_ns) for row in rows] == \
        [("compute", 100), ("untraced", 0)]


def test_path_descends_heaviest_child_and_partitions_root():
    path = extract_critical_path(_tree_tracer())
    assert [step.span_id for step in path.steps] == [1, 2, 4]
    assert [step.exclusive_ns for step in path.steps] == [40, 40, 20]
    # Path exclusives partition the root's duration exactly.
    assert sum(step.exclusive_ns for step in path.steps) == 100
    assert path.total_ns == 100
    assert path.by_category == {"compute": 40, "rpc": 40, "syscall": 20}


def test_equal_duration_siblings_tie_break_on_span_id():
    tracer = StubTracer([
        _span(1, "compute", 0, 100),
        _span(3, "rpc", 50, 90, parent_id=1, depth=1),
        _span(2, "copy", 0, 40, parent_id=1, depth=1),
    ])
    path = extract_critical_path(tracer)
    # Both children last 40 ns; the smaller span id (2, the copy) wins.
    assert [step.span_id for step in path.steps] == [1, 2]


def test_attribution_agrees_with_rollup_on_hand_built_tree():
    tracer = _tree_tracer()
    attribution = mechanism_attribution(tracer)
    assert attribution == {
        "compute": (1, 10),   # 100 - 60 - 30
        "rpc": (1, 40),       # 60 - 20
        "copy": (1, 30),
        "syscall": (1, 20),
    }
    rows = reconcile_attribution(tracer, 120)
    assert rows[-1].category == "untraced"
    assert rows[-1].self_ns == 20
    assert sum(row.self_ns for row in rows) == 120


def test_reconcile_raises_naming_the_orphan_subtree():
    # A span parented to an instant: the flat rollup pass counts it, the
    # root-reachable attribution walk never visits it — the books must
    # not balance, and the error must name the off-by row.
    tracer = StubTracer([
        _span(1, "compute", 0, 100),
        _span(2, "pool", 0, 0, kind="instant"),
        _span(3, "rpc", 10, 50, parent_id=2, depth=1),
    ])
    with pytest.raises(AccountingError) as excinfo:
        reconcile_attribution(tracer, 100)
    assert "rpc" in str(excinfo.value)


def test_traced_drone_reconciles_exactly(traced_drone):
    kernel, _ = traced_drone
    total_ns = kernel.clock.now_ns
    rows = reconcile_attribution(kernel.tracer, total_ns)
    assert rows[-1].category == "untraced"
    # The verified rows partition the run's virtual time to the ns.
    assert sum(row.self_ns for row in rows) == total_ns
    path = extract_critical_path(kernel.tracer)
    untraced = rows[-1].self_ns
    assert path.total_ns == total_ns - untraced
    assert sum(path.by_category.values()) == path.total_ns


@pytest.mark.parametrize("sample_id", [1, 8, 16])
def test_catalog_apps_reconcile_exactly(sample_id):
    from repro.apps.base import Workload, execute_app
    from repro.apps.suite import make_app
    from repro.attacks.scenarios import build_gateway
    from repro.core.runtime import FreePartConfig
    from repro.sim.kernel import SimKernel

    app = make_app(sample_id)
    kernel = SimKernel()
    kernel.enable_tracing()
    config = FreePartConfig(
        trace=True, annotations=tuple(app.annotations)
    )
    gateway = build_gateway("freepart", kernel, app=app, config=config)
    report = execute_app(app, gateway, Workload(items=1, image_size=16))
    assert not report.failed
    total_ns = kernel.clock.now_ns
    rows = reconcile_attribution(kernel.tracer, total_ns)
    assert sum(row.self_ns for row in rows) == total_ns
