"""Dimensional time-series: fixed-grid sketches, windows, registries."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.timeseries import (
    DEFAULT_WINDOW_NS,
    QUANTILE_GRID,
    FixedGridSketch,
    TimeSeries,
    TimeSeriesRegistry,
    series_key,
)


class FakeClock:
    def __init__(self, now_ns=0):
        self.now_ns = now_ns


def test_quantile_grid_is_fixed_and_strictly_increasing():
    assert QUANTILE_GRID[0] == 1_000
    assert all(a < b for a, b in zip(QUANTILE_GRID, QUANTILE_GRID[1:]))
    # Rebuilding the module grid must give the same bounds (the grid is
    # data-independent, which is what makes sketches mergeable).
    assert FixedGridSketch.grid is QUANTILE_GRID


def test_empty_sketch_snapshot_is_all_zero():
    sketch = FixedGridSketch()
    assert sketch.quantile(0.99) == 0
    assert sketch.snapshot() == {
        "count": 0, "total": 0, "min": 0, "max": 0,
        "p50": 0, "p99": 0, "p999": 0,
    }


def test_sketch_quantile_is_grid_upper_bound_clamped_to_max():
    sketch = FixedGridSketch()
    for value in (900, 1_100, 2_000):
        sketch.observe(value)
    # ceil-rank: p50 of 3 observations is the 2nd (1_100), whose grid
    # upper bound is 1_250.
    assert sketch.quantile(0.5) == 1_250
    # The top quantile clamps to the exact tracked max, never the grid
    # bound above it.
    assert sketch.quantile(0.999) == 2_000
    assert sketch.snapshot()["min"] == 900
    assert sketch.snapshot()["max"] == 2_000


def test_sketch_overflow_degrades_to_exact_max():
    sketch = FixedGridSketch()
    huge = QUANTILE_GRID[-1] * 10
    sketch.observe(huge)
    assert sketch.quantile(0.5) == huge
    assert sketch.snapshot()["p999"] == huge


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10 ** 12),
                min_size=1, max_size=60))
def test_sketch_quantile_brackets_true_quantile(values):
    sketch = FixedGridSketch()
    for value in values:
        sketch.observe(value)
    ordered = sorted(values)
    for fraction in (0.5, 0.99, 0.999):
        rank = max(1, math.ceil(fraction * len(ordered)))
        true_value = ordered[rank - 1]
        got = sketch.quantile(fraction)
        # Never below the true ceil-rank observation, never above the
        # maximum, and at most one grid ratio (25%) above the truth.
        assert true_value <= got <= max(ordered)
        assert got <= max(true_value * 5 // 4 + 1, true_value + 1, 1_000)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10 ** 9), max_size=30),
       st.lists(st.integers(min_value=0, max_value=10 ** 9), max_size=30))
def test_sketch_merge_equals_union(left, right):
    merged = FixedGridSketch()
    union = FixedGridSketch()
    other = FixedGridSketch()
    for value in left:
        merged.observe(value)
        union.observe(value)
    for value in right:
        other.observe(value)
        union.observe(value)
    merged.merge(other)
    assert merged.snapshot() == union.snapshot()


def test_series_key_sorts_labels():
    assert series_key("lat", {}) == "lat"
    assert series_key("lat", {"tenant": "t0", "node": "n1"}) == \
        "lat{node=n1,tenant=t0}"
    assert series_key("lat", {"node": "n1", "tenant": "t0"}) == \
        series_key("lat", {"tenant": "t0", "node": "n1"})


def test_series_windows_bucket_by_virtual_time():
    series = TimeSeries("lat", {"tenant": "t0"}, window_ns=1_000)
    series.observe(0, 5)
    series.observe(999, 7)
    series.observe(1_000, 9)
    snapshot = series.snapshot()
    assert [w["start_ns"] for w in snapshot["windows"]] == [0, 1_000]
    assert snapshot["windows"][0]["count"] == 2
    assert snapshot["windows"][1]["count"] == 1
    assert snapshot["overall"]["count"] == 3
    assert snapshot["labels"] == {"tenant": "t0"}


def test_series_merge_rejects_window_width_mismatch():
    narrow = TimeSeries("lat", {}, window_ns=1_000)
    wide = TimeSeries("lat", {}, window_ns=2_000)
    with pytest.raises(ValueError):
        narrow.merge(wide)


def test_registry_observe_defaults_to_clock():
    clock = FakeClock(now_ns=3 * DEFAULT_WINDOW_NS)
    registry = TimeSeriesRegistry(clock)
    registry.observe("depth", None, 4)
    snapshot = registry.snapshot()
    assert snapshot["depth"]["windows"][0]["start_ns"] == \
        3 * DEFAULT_WINDOW_NS


def test_registry_without_clock_requires_explicit_time():
    registry = TimeSeriesRegistry(clock=None)
    with pytest.raises(ValueError):
        registry.observe("depth", None, 4)
    registry.observe("depth", None, 4, t_ns=0)
    assert registry.points == 1


def test_registry_merged_is_order_independent():
    a = TimeSeriesRegistry(clock=None)
    b = TimeSeriesRegistry(clock=None)
    a.observe("lat", {"node": "n0"}, 10, t_ns=0)
    a.observe("lat", {"node": "n0"}, 30, t_ns=DEFAULT_WINDOW_NS)
    b.observe("lat", {"node": "n1"}, 20, t_ns=0)
    b.observe("lat", {"node": "n0"}, 40, t_ns=0)
    ab = TimeSeriesRegistry.merged([a, b]).snapshot()
    ba = TimeSeriesRegistry.merged([b, a]).snapshot()
    assert ab == ba
    assert ab["lat{node=n0}"]["overall"]["count"] == 3
    assert ab["lat{node=n1}"]["overall"]["count"] == 1


def test_kernel_owns_a_clocked_series_registry():
    from repro.sim.kernel import SimKernel

    kernel = SimKernel()
    kernel.clock.advance(DEFAULT_WINDOW_NS)
    kernel.series.observe("depth", {"tenant": "t0"}, 1)
    snapshot = kernel.series.snapshot()
    assert snapshot["depth{tenant=t0}"]["windows"][0]["start_ns"] == \
        DEFAULT_WINDOW_NS
