"""End-to-end attack scenarios (Sections 3, 5.3, 5.4)."""

import pytest

from repro.apps.drone import DroneApp, SPEED_TAG, DEFAULT_SPEED
from repro.apps.mcomix import MComixApp, RECENT_TAG
from repro.apps.base import Workload
from repro.attacks.cves import TABLE5_CVES
from repro.attacks.scenarios import (
    run_attack,
    run_motivating_example,
    run_table5_attacks,
)

WORKLOAD = Workload(items=2, image_size=16)


class TestMotivatingExample:
    def test_freepart_prevents_all_five_attacks(self):
        verdict = run_motivating_example("freepart")
        assert verdict.memory_attack_prevented
        assert verdict.omrcrop_attack_prevented
        assert verdict.code_attack_prevented
        assert verdict.dos_attacks_prevented

    def test_no_isolation_prevents_nothing(self):
        verdict = run_motivating_example("none")
        assert not any(r.prevented for r in verdict.attacks.values())

    def test_memory_based_only_stops_template_corruption(self):
        verdict = run_motivating_example("memory_based")
        assert verdict.memory_attack_prevented
        assert not verdict.dos_attacks_prevented
        assert not verdict.code_attack_prevented

    def test_code_api_leaves_template_exposed(self):
        verdict = run_motivating_example("code_api")
        assert not verdict.memory_attack_prevented  # co-located with imread
        assert verdict.dos_attacks_prevented        # crashes confined

    def test_entire_library_leaves_shared_omrcrop_exposed(self):
        verdict = run_motivating_example("lib_entire")
        assert verdict.memory_attack_prevented      # template in host
        assert not verdict.omrcrop_attack_prevented # shared memory
        assert not verdict.code_attack_prevented    # footnote 3

    def test_individual_apis_prevent_everything(self):
        verdict = run_motivating_example("lib_individual")
        assert all(r.prevented for r in verdict.attacks.values())


class TestTable5:
    def test_all_attacks_fire_and_are_prevented_under_freepart(self):
        results = run_table5_attacks("freepart", workload=WORKLOAD)
        assert len(results) == len(TABLE5_CVES)
        for result in results:
            assert result.delivered, result.cve_id
            assert result.prevented, result.cve_id

    def test_all_attacks_succeed_without_isolation(self):
        results = run_table5_attacks("none", workload=WORKLOAD)
        for result in results:
            assert result.delivered, result.cve_id
            assert not result.prevented, result.cve_id

    def test_loading_cves_blocked_in_loading_agent(self):
        result = run_attack("CVE-2017-12597", "freepart", workload=WORKLOAD)
        assert result.outcomes[0].process_role == "agent"
        assert "data_loading" in result.outcomes[0].process_name

    def test_processing_cves_blocked_in_processing_agent(self):
        result = run_attack("CVE-2019-14491", "freepart", workload=WORKLOAD)
        assert "data_processing" in result.outcomes[0].process_name
        assert result.prevented

    def test_tensorflow_dos_contained(self):
        result = run_attack("CVE-2021-37661", "freepart", workload=WORKLOAD)
        assert result.prevented
        assert not result.host_crashed
        assert result.agent_crashes == 1


class TestDroneCaseStudy:
    def test_dos_without_freepart_downs_the_drone(self):
        result = run_attack(
            "CVE-2017-14136", "none", app=DroneApp(),
            target_tag=SPEED_TAG, workload=WORKLOAD,
        )
        assert result.host_crashed  # the drone falls

    def test_dos_with_freepart_keeps_flying(self):
        result = run_attack(
            "CVE-2017-14136", "freepart", app=DroneApp(),
            target_tag=SPEED_TAG, workload=WORKLOAD,
        )
        assert not result.host_crashed
        assert result.agent_crashes == 1
        assert result.prevented

    def test_speed_corruption_without_freepart(self):
        result = run_attack(
            "CVE-2017-12606", "none", app=DroneApp(),
            target_tag=SPEED_TAG, workload=WORKLOAD,
        )
        assert result.data_corrupted

    def test_speed_corruption_contained_by_freepart(self):
        result = run_attack(
            "CVE-2017-12606", "freepart", app=DroneApp(),
            target_tag=SPEED_TAG, workload=WORKLOAD,
        )
        assert not result.data_corrupted
        assert result.prevented


class TestMComixCaseStudy:
    def test_leak_succeeds_without_isolation(self):
        result = run_attack(
            "CVE-2020-10378", "none", app=MComixApp(),
            target_tag=RECENT_TAG, workload=WORKLOAD,
        )
        assert result.data_exfiltrated

    def test_leak_blocked_by_freepart(self):
        result = run_attack(
            "CVE-2020-10378", "freepart", app=MComixApp(),
            target_tag=RECENT_TAG, workload=WORKLOAD,
        )
        assert not result.data_exfiltrated
        assert result.prevented
        assert result.blocked_by  # isolation or syscall restriction


class TestVerdictLogic:
    def test_undelivered_attack_not_counted_prevented(self):
        from repro.attacks.cves import VulnType
        from repro.attacks.scenarios import AttackResult

        result = AttackResult(
            cve_id="X", technique="freepart", app_name="a",
            vuln_type=VulnType.DOS, delivered=False,
        )
        assert not result.prevented
