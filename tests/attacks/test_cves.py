"""The CVE registry (Table 5)."""

import pytest

from repro.attacks.cves import (
    ALL_CVES,
    CASE_STUDY_CVES,
    TABLE5_CVES,
    VulnType,
    by_vuln_type,
    cves_for_api,
    cves_for_sample,
    get,
)
from repro.core.apitypes import APIType


def test_table5_has_sixteen_rows():
    assert len(TABLE5_CVES) == 16


def test_table5_vuln_type_counts():
    counts = {}
    for record in TABLE5_CVES:
        counts[record.vuln_type] = counts.get(record.vuln_type, 0) + 1
    # Table 5: 4 memory-write, 3 RCE, 9 DoS rows.
    assert counts[VulnType.MEM_WRITE] == 4
    assert counts[VulnType.RCE] == 3
    assert counts[VulnType.DOS] == 9


def test_table5_api_types_match_paper():
    expectations = {
        "CVE-2017-12597": APIType.LOADING,
        "CVE-2017-17760": APIType.LOADING,
        "CVE-2019-5063": APIType.PROCESSING,
        "CVE-2017-14136": APIType.LOADING,
        "CVE-2019-14491": APIType.PROCESSING,
        "CVE-2021-29513": APIType.PROCESSING,
        "CVE-2021-41198": APIType.PROCESSING,
    }
    for cve_id, api_type in expectations.items():
        assert get(cve_id).api_type is api_type


def test_sample_lists_match_paper():
    assert get("CVE-2017-12597").samples == (1, 9, 10, 12)
    assert get("CVE-2017-17760").samples == (1, 7, 10, 12)
    assert get("CVE-2019-5063").samples == (1, 9, 10)
    assert get("CVE-2017-14136").samples == (1, 7, 9, 10, 12)
    assert get("CVE-2021-29513").samples == (21, 23)
    assert get("CVE-2021-29618").samples == (23,)
    assert get("CVE-2021-37661").samples == (21, 22, 23)
    assert get("CVE-2021-41198").samples == (20, 22)


def test_tensorflow_cves_on_tensorflow_apis():
    for record in TABLE5_CVES:
        if record.cve_id.startswith("CVE-2021-"):
            assert record.framework == "tensorflow"
        else:
            assert record.framework == "opencv"


def test_case_study_cves_present():
    ids = {record.cve_id for record in CASE_STUDY_CVES}
    assert "CVE-2020-10378" in ids       # MComix3 info leak
    assert "VULN-IMSHOW-DOS" in ids      # motivating example
    assert "STEGONET-TROJAN" in ids      # A.7


def test_get_unknown_raises():
    with pytest.raises(KeyError):
        get("CVE-0000-0000")


def test_cves_for_sample():
    sample1 = {record.cve_id for record in cves_for_sample(1)}
    assert "CVE-2017-12597" in sample1
    assert "CVE-2019-5063" in sample1
    assert "CVE-2021-29513" not in sample1


def test_cves_for_api():
    imread = cves_for_api("opencv", "imread")
    assert len(imread) >= 5
    assert all(record.api_type is APIType.LOADING for record in imread)


def test_by_vuln_type():
    dos = by_vuln_type(VulnType.DOS)
    assert all(record.vuln_type is VulnType.DOS for record in dos)
    assert len(dos) >= 9


def test_every_sample_reference_is_a_real_sample():
    from repro.apps.suite import SAMPLE_IDS

    for record in ALL_CVES:
        for sample in record.samples:
            assert sample in SAMPLE_IDS, (record.cve_id, sample)
