"""The StegoNet trojan-model case study (Appendix A.7)."""

import pytest

from repro.apps.base import Workload
from repro.apps.medical import CtViewerApp, InvoiceOcrApp
from repro.attacks.stegonet import run_stegonet_attack, trojaned_model

WORKLOAD = Workload(items=2, image_size=16)


def test_trojaned_model_carries_payload():
    model = trojaned_model()
    assert model.trojan is not None
    assert model.trojan.cve_id == "STEGONET-TROJAN"


def test_trojan_detonates_without_isolation():
    result = run_stegonet_attack(CtViewerApp(), "none", workload=WORKLOAD)
    assert result.trojan_fired
    assert result.fork_bomb_detonated
    assert not result.prevented


def test_freepart_blocks_fork_bomb():
    result = run_stegonet_attack(CtViewerApp(), "freepart", workload=WORKLOAD)
    assert result.trojan_fired
    assert not result.fork_bomb_detonated
    assert result.prevented
    assert result.outcomes[-1].blocked_by == "syscall-restriction"


def test_patient_record_survives_attack():
    result = run_stegonet_attack(CtViewerApp(), "freepart", workload=WORKLOAD)
    assert result.record_intact


def test_invoice_ocr_also_protected():
    result = run_stegonet_attack(InvoiceOcrApp(), "freepart", workload=WORKLOAD)
    assert result.prevented
    assert result.record_intact


def test_invoice_ocr_vulnerable_without_isolation():
    result = run_stegonet_attack(InvoiceOcrApp(), "none", workload=WORKLOAD)
    assert result.fork_bomb_detonated
