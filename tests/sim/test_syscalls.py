"""The simulated syscall table."""

import pytest

from repro.errors import UnknownSyscall
from repro.sim.syscalls import SYSCALL_TABLE, by_category, lookup, validate_names


def test_table_has_the_paper_syscalls():
    # Every syscall named in the paper's tables/figures must exist.
    for name in (
        "openat", "close", "brk", "fstat", "read", "lseek", "ioctl",
        "mmap", "select", "bind", "futex", "getcwd", "getpid", "listen",
        "mkdir", "recvfrom", "getrandom", "gettimeofday", "open",
        "clock_gettime", "access", "connect", "eventfd2", "getuid",
        "sendto", "accept", "dup", "exit", "lstat", "umask", "uname",
        "unlink", "write", "mprotect", "shm_open", "fork",
    ):
        assert name in SYSCALL_TABLE, name


def test_lookup_returns_entry():
    entry = lookup("read")
    assert entry.name == "read"
    assert entry.number == 0
    assert entry.category == "file"


def test_lookup_unknown_raises():
    with pytest.raises(UnknownSyscall):
        lookup("frobnicate")


def test_numbers_are_unique():
    numbers = [s.number for s in SYSCALL_TABLE.values()]
    assert len(numbers) == len(set(numbers))


def test_validate_names_roundtrip():
    names = ["read", "write", "close"]
    assert validate_names(names) == names


def test_validate_names_rejects_unknown():
    with pytest.raises(UnknownSyscall):
        validate_names(["read", "bogus"])


def test_by_category_sorted_by_number():
    network = by_category("network")
    assert network
    assert all(s.category == "network" for s in network)
    numbers = [s.number for s in network]
    assert numbers == sorted(numbers)


def test_dangerous_syscalls_categorized():
    assert lookup("fork").category == "process"
    assert lookup("mprotect").category == "memory"
    assert lookup("sendto").category == "network"
    assert lookup("shm_open").category == "ipc"
