"""Virtual clock and cost model."""

import pytest

from repro.sim.clock import CostModel, NS_PER_SEC, Stopwatch, VirtualClock


def test_clock_starts_at_zero():
    assert VirtualClock().now_ns == 0


def test_advance_moves_time_forward():
    clock = VirtualClock()
    clock.advance(1_000)
    clock.advance(500)
    assert clock.now_ns == 1_500


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1)


def test_now_conversions():
    clock = VirtualClock()
    clock.advance(NS_PER_SEC)
    assert clock.now_seconds == pytest.approx(1.0)
    assert clock.now_ms == pytest.approx(1_000.0)


def test_reset_rewinds():
    clock = VirtualClock()
    clock.advance(42)
    clock.reset()
    assert clock.now_ns == 0


def test_determinism_two_clocks_same_charges():
    a, b = VirtualClock(), VirtualClock()
    for ns in (3, 1_000, 77, 123_456):
        a.advance(ns)
        b.advance(ns)
    assert a.now_ns == b.now_ns


def test_copy_cost_scales_linearly():
    model = CostModel()
    assert model.copy_cost(0) == 0
    assert model.copy_cost(4_000) == 4 * model.copy_cost(1_000)


def test_serialize_cost_cheaper_than_copy():
    model = CostModel()
    nbytes = 1 << 20
    assert model.serialize_cost(nbytes) < model.copy_cost(nbytes)


def test_stopwatch_measures_span():
    clock = VirtualClock()
    watch = Stopwatch(clock).start()
    clock.advance(2_500)
    assert watch.stop() == 2_500


def test_stopwatch_context_manager():
    clock = VirtualClock()
    with Stopwatch(clock) as watch:
        clock.advance(999)
    assert watch.elapsed_ns == 999
    assert watch.elapsed_seconds == pytest.approx(999 / NS_PER_SEC)


def test_stopwatch_running_elapsed():
    clock = VirtualClock()
    watch = Stopwatch(clock).start()
    clock.advance(10)
    assert watch.elapsed_ns == 10  # still running
    clock.advance(10)
    assert watch.stop() == 20
