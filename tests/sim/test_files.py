"""Simulated filesystem."""

import numpy as np
import pytest

from repro.errors import FileNotFoundInSim
from repro.sim.files import SimFileSystem


@pytest.fixture
def fs():
    return SimFileSystem()


def test_write_then_read(fs):
    fs.write_file("/a/b.png", [1, 2, 3])
    assert fs.read_file("/a/b.png") == [1, 2, 3]


def test_read_missing_raises(fs):
    with pytest.raises(FileNotFoundInSim):
        fs.read_file("/missing")


def test_overwrite_bumps_version(fs):
    fs.write_file("/f", "v1")
    fs.write_file("/f", "v2")
    assert fs.stat("/f").version == 2
    assert fs.read_file("/f") == "v2"


def test_nbytes_tracks_payload(fs):
    fs.write_file("/arr", np.zeros((8, 8)))
    assert fs.stat("/arr").nbytes == 512


def test_exists(fs):
    assert not fs.exists("/x")
    fs.write_file("/x", 1)
    assert fs.exists("/x")


def test_unlink(fs):
    fs.write_file("/x", 1)
    fs.unlink("/x")
    assert not fs.exists("/x")
    with pytest.raises(FileNotFoundInSim):
        fs.unlink("/x")


def test_listdir_prefix(fs):
    fs.write_file("/data/a", 1)
    fs.write_file("/data/b", 2)
    fs.write_file("/other/c", 3)
    assert fs.listdir("/data/") == ["/data/a", "/data/b"]


def test_tempfile_paths_unique(fs):
    assert fs.tempfile() != fs.tempfile()


def test_access_log_records_ops(fs):
    fs.write_file("/f", 1, pid=7)
    fs.read_file("/f", pid=8)
    fs.unlink("/f", pid=9)
    modes = [(a.pid, a.mode) for a in fs.access_log]
    assert modes == [(7, "write"), (8, "read"), (9, "unlink")]


def test_accesses_for_filters_by_path(fs):
    fs.write_file("/a", 1)
    fs.write_file("/b", 2)
    fs.read_file("/a")
    assert len(fs.accesses_for("/a")) == 2
    assert len(fs.accesses_for("/b")) == 1


def test_clear_log(fs):
    fs.write_file("/a", 1)
    fs.clear_log()
    assert fs.access_log == []


def test_total_bytes(fs):
    fs.write_file("/a", np.zeros(4))
    fs.write_file("/b", np.zeros(8))
    assert fs.total_bytes == 96


def test_snapshot_paths(fs):
    fs.write_file("/a", 1)
    fs.write_file("/a", 2)
    fs.write_file("/b", 1)
    assert fs.snapshot_paths() == {"/a": 2, "/b": 1}
