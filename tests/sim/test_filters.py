"""seccomp-like syscall filters: allowlists, sealing, fd checks."""

import pytest

from repro.errors import FilterSealed, SyscallDenied, UnknownSyscall
from repro.sim.filters import FilterSpec, SyscallFilter, permissive_filter
from repro.sim.syscalls import SYSCALL_TABLE, FD_CHECKED_SYSCALLS, lookup


def test_allowlisted_call_passes():
    f = SyscallFilter(allowed=["read", "write"])
    f.check(1, "read")
    f.check(1, "write")


def test_unlisted_call_denied():
    f = SyscallFilter(allowed=["read"])
    with pytest.raises(SyscallDenied):
        f.check(1, "write")
    assert f.denials == 1


def test_unknown_syscall_name_rejected_at_config():
    f = SyscallFilter()
    with pytest.raises(UnknownSyscall):
        f.allow("not_a_syscall")


def test_sealing_blocks_loosening():
    f = SyscallFilter(allowed=["read"])
    f.seal()
    with pytest.raises(FilterSealed):
        f.allow("write")
    with pytest.raises(FilterSealed):
        f.allow_during_init("mprotect")
    with pytest.raises(FilterSealed):
        f.restrict_fds([1])


def test_init_only_allowed_during_init_phase():
    f = SyscallFilter(allowed=["read"], init_only=["mprotect"])
    f.check(1, "mprotect")  # init phase open
    f.end_init_phase()
    with pytest.raises(SyscallDenied):
        f.check(1, "mprotect")


def test_end_init_phase_permitted_after_sealing():
    f = SyscallFilter(allowed=["read"], init_only=["connect"])
    f.seal()
    f.end_init_phase()  # tightening is always allowed
    with pytest.raises(SyscallDenied):
        f.check(1, "connect")


def test_fd_restriction_applies_to_device_syscalls():
    f = SyscallFilter(allowed=["ioctl", "read"], allowed_fds=[10])
    f.check(1, "ioctl", fd=10)
    with pytest.raises(SyscallDenied):
        f.check(1, "ioctl", fd=20)


def test_fd_restriction_ignores_non_device_syscalls():
    f = SyscallFilter(allowed=["read"], allowed_fds=[10])
    f.check(1, "read", fd=999)  # read is not fd-checked


def test_fd_restriction_none_fd_passes():
    f = SyscallFilter(allowed=["select"], allowed_fds=[30])
    f.check(1, "select")  # fd unknown: allowed (argument not inspected)


def test_would_allow_does_not_count_denial():
    f = SyscallFilter(allowed=["read"])
    decision = f.would_allow("write")
    assert not decision.allowed
    assert f.denials == 0


def test_permissive_filter_allows_everything():
    f = permissive_filter()
    for name in list(SYSCALL_TABLE)[:20]:
        f.check(1, name)


def test_fd_checked_set_matches_paper():
    assert FD_CHECKED_SYSCALLS == {"ioctl", "connect", "select", "fcntl"}
    for name in FD_CHECKED_SYSCALLS:
        assert lookup(name).needs_fd_check


def test_filter_spec_builds_equivalent_filter():
    spec = FilterSpec(
        allowed=frozenset({"read", "close"}),
        init_only=frozenset({"mprotect"}),
        allowed_fds=frozenset({10}),
    )
    built = spec.build()
    assert built.allowed_names == {"read", "close"}
    assert built.init_only_names == {"mprotect"}
    assert built.allowed_fds == {10}
    assert not built.sealed


def test_filter_spec_build_is_fresh_each_time():
    spec = FilterSpec(allowed=frozenset({"read"}))
    first = spec.build()
    first.seal()
    second = spec.build()
    assert not second.sealed
