"""Simulated processes: lifecycle, syscall entry, seccomp kill."""

import pytest

from repro.errors import ProcessCrashed, SyscallDenied
from repro.sim.clock import VirtualClock
from repro.sim.filters import SyscallFilter
from repro.sim.process import ProcessState, SimProcess


@pytest.fixture
def clock():
    return VirtualClock()


def make_process(clock, allowed=None):
    syscall_filter = SyscallFilter(allowed=allowed) if allowed else None
    return SimProcess(1, "proc", clock, syscall_filter=syscall_filter)


def test_process_starts_running(clock):
    assert make_process(clock).state is ProcessState.RUNNING


def test_default_filter_is_permissive(clock):
    process = make_process(clock)
    process.syscall("fork")
    process.syscall("mprotect")


def test_syscall_records_trace(clock):
    process = make_process(clock)
    process.syscall("read", fd=3, path="/x", nbytes=10)
    record = process.syscall_log[-1]
    assert (record.name, record.fd, record.path, record.nbytes, record.allowed) == (
        "read", 3, "/x", 10, True
    )


def test_syscall_charges_clock(clock):
    process = make_process(clock)
    before = clock.now_ns
    process.syscall("read")
    assert clock.now_ns > before


def test_denied_syscall_kills_process(clock):
    process = make_process(clock, allowed=["read"])
    with pytest.raises(SyscallDenied):
        process.syscall("fork")
    assert process.state is ProcessState.CRASHED
    assert process.crash_record.syscall == "fork"
    assert process.denied_syscalls() == ["fork"]


def test_crashed_process_rejects_syscalls(clock):
    process = make_process(clock)
    process.crash("boom")
    with pytest.raises(ProcessCrashed):
        process.syscall("read")


def test_crash_is_idempotent(clock):
    process = make_process(clock)
    process.crash("first")
    process.crash("second")
    assert process.crash_record.reason == "first"


def test_exit_state(clock):
    process = make_process(clock)
    process.exit()
    assert process.state is ProcessState.EXITED
    assert not process.alive


def test_syscalls_used_distinct_ordered(clock):
    process = make_process(clock)
    for name in ("read", "openat", "read", "close"):
        process.syscall(name)
    assert process.syscalls_used() == ["read", "openat", "close"]


def test_denied_calls_excluded_from_used(clock):
    process = make_process(clock, allowed=["read"])
    process.syscall("read")
    with pytest.raises(SyscallDenied):
        process.syscall("write")
    assert "write" not in process.syscalls_used()


def test_require_alive(clock):
    process = make_process(clock)
    process.require_alive()
    process.crash("x")
    with pytest.raises(ProcessCrashed):
        process.require_alive()
