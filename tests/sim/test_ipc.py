"""IPC channels: framing, capacity, accounting."""

import numpy as np
import pytest

from repro.errors import ChannelClosed, ChannelFull
from repro.sim.clock import VirtualClock
from repro.sim.ipc import Channel, ChannelPair, IpcAccounting


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def accounting():
    return IpcAccounting()


@pytest.fixture
def channel(clock, accounting):
    return Channel("test", clock, accounting, capacity_bytes=1024)


def test_send_receive_roundtrip(channel):
    channel.send(1, "request", {"op": "x"})
    message = channel.receive()
    assert message.sender_pid == 1
    assert message.kind == "request"
    assert message.payload == {"op": "x"}


def test_messages_ordered_fifo(channel):
    channel.send(1, "m", "first")
    channel.send(1, "m", "second")
    assert channel.receive().payload == "first"
    assert channel.receive().payload == "second"


def test_sequence_numbers_monotonic(channel):
    a = channel.send(1, "m", 1)
    b = channel.send(1, "m", 2)
    assert b.seq == a.seq + 1


def test_capacity_enforced(clock, accounting):
    channel = Channel("tiny", clock, accounting, capacity_bytes=100)
    channel.send(1, "m", np.zeros(8))  # 64 bytes
    with pytest.raises(ChannelFull):
        channel.send(1, "m", np.zeros(8))


def test_oversize_message_raises_immediately(clock, accounting):
    """A message bigger than the whole ring buffer can never fit: the
    channel must flag it as permanent so backpressure loops don't retry
    forever waiting for a drain that cannot help."""
    channel = Channel("tiny", clock, accounting, capacity_bytes=100)
    with pytest.raises(ChannelFull) as excinfo:
        channel.send(1, "m", np.zeros(64))  # 512 bytes > 100 capacity
    assert excinfo.value.permanent
    # The channel is untouched: nothing was enqueued or accounted.
    assert channel.pending == 0
    assert channel.queued_bytes == 0
    assert accounting.messages == 0


def test_transient_fullness_is_not_permanent(clock, accounting):
    channel = Channel("tiny", clock, accounting, capacity_bytes=100)
    channel.send(1, "m", np.zeros(8))  # 64 bytes
    with pytest.raises(ChannelFull) as excinfo:
        channel.send(1, "m", np.zeros(8))  # fits alone, not alongside
    assert not excinfo.value.permanent
    channel.receive()
    channel.send(1, "m", np.zeros(8))  # drain resolved it


def test_would_fit(clock, accounting):
    channel = Channel("tiny", clock, accounting, capacity_bytes=100)
    assert channel.would_fit(64)
    channel.send(1, "m", np.zeros(8))
    assert not channel.would_fit(64)


def test_receive_frees_capacity(clock, accounting):
    channel = Channel("tiny", clock, accounting, capacity_bytes=100)
    channel.send(1, "m", np.zeros(8))
    channel.receive()
    channel.send(1, "m", np.zeros(8))  # fits again


def test_send_charges_clock(channel, clock):
    before = clock.now_ns
    channel.send(1, "m", np.zeros(64))
    assert clock.now_ns > before


def test_bigger_payload_costs_more(clock, accounting):
    a = Channel("a", clock, accounting)
    a.send(1, "m", np.zeros(8))
    small = clock.now_ns
    a.send(1, "m", np.zeros(8192))
    assert clock.now_ns - small > small


def test_receive_empty_raises(channel):
    with pytest.raises(ChannelClosed):
        channel.receive()


def test_try_receive_empty_returns_none(channel):
    assert channel.try_receive() is None


def test_closed_channel_rejects_send_and_receive(channel):
    channel.close()
    with pytest.raises(ChannelClosed):
        channel.send(1, "m", 1)
    with pytest.raises(ChannelClosed):
        channel.receive()


def test_accounting_counts_messages_and_bytes(channel, accounting):
    channel.send(1, "m", np.zeros(16))  # 128 bytes
    channel.send(1, "m", np.zeros(16))
    assert accounting.messages == 2
    assert accounting.message_bytes == 256


class TestIpcAccounting:
    def test_copy_counters(self, accounting):
        accounting.record_copy(100, lazy=True)
        accounting.record_copy(50, lazy=False)
        assert accounting.lazy_copies == 1
        assert accounting.nonlazy_copies == 1
        assert accounting.total_copy_bytes == 150
        assert accounting.lazy_fraction == pytest.approx(0.5)

    def test_lazy_fraction_empty_is_zero(self, accounting):
        assert accounting.lazy_fraction == 0.0

    def test_snapshot_and_delta(self, accounting):
        accounting.record_message(10)
        snap = accounting.snapshot()
        accounting.record_message(20)
        accounting.record_copy(5, lazy=True)
        delta = accounting.delta_since(snap)
        assert delta.messages == 1
        assert delta.message_bytes == 20
        assert delta.lazy_copies == 1

    def test_snapshot_is_independent(self, accounting):
        snap = accounting.snapshot()
        accounting.record_message(1)
        assert snap.messages == 0


def test_channel_pair_directions(clock, accounting):
    pair = ChannelPair("p", clock, accounting)
    pair.request.send(1, "request", "go")
    pair.response.send(2, "response", "done")
    assert pair.request.receive().payload == "go"
    assert pair.response.receive().payload == "done"
    pair.close()
    assert pair.request.closed and pair.response.closed


class TestLaneReconciliation:
    """The reconcile API: AccountingError names every off-by lane."""

    def test_lanes_exposes_every_counter(self, accounting):
        accounting.record_message(10)
        accounting.record_copy(5, lazy=True)
        lanes = accounting.lanes()
        assert lanes["messages"] == 1
        assert lanes["message_bytes"] == 10
        assert lanes["lazy_copies"] == 1
        assert lanes["lazy_copy_bytes"] == 5
        assert set(lanes) >= {
            "messages", "message_bytes", "framed_messages",
            "lazy_copies", "lazy_copy_bytes",
            "nonlazy_copies", "nonlazy_copy_bytes",
            "zero_copy_transfers", "zero_copy_bytes",
            "cow_downgrades", "cow_bytes",
        }

    def test_reconcile_passes_on_match(self, accounting):
        accounting.record_message(10)
        accounting.reconcile(messages=1, message_bytes=10)

    def test_reconcile_names_the_off_lane(self, accounting):
        from repro.errors import AccountingError

        accounting.record_message(10)
        with pytest.raises(AccountingError) as excinfo:
            accounting.reconcile(messages=1, message_bytes=14)
        message = str(excinfo.value)
        assert "message_bytes" in message
        assert "-4" in message
        assert "recorded 10" in message
        assert "expected 14" in message

    def test_reconcile_reports_every_off_lane(self, accounting):
        from repro.errors import AccountingError

        accounting.record_message(10)
        with pytest.raises(AccountingError) as excinfo:
            accounting.reconcile(messages=3, message_bytes=14)
        message = str(excinfo.value)
        assert "messages" in message and "message_bytes" in message

    def test_reconcile_derived_totals(self, accounting):
        accounting.record_copy(5, lazy=True)
        accounting.record_copy(7, lazy=False)
        accounting.reconcile(total_copies=2, total_copy_bytes=12)

    def test_reconcile_rejects_unknown_lane(self, accounting):
        with pytest.raises(ValueError):
            accounting.reconcile(not_a_lane=0)

    def test_accounting_error_is_simulation_error(self):
        from repro.errors import AccountingError, SimulationError

        assert issubclass(AccountingError, SimulationError)
