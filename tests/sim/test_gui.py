"""Simulated GUI subsystem."""

import numpy as np
import pytest

from repro.errors import GuiError
from repro.sim.gui import GuiSubsystem


@pytest.fixture
def gui():
    return GuiSubsystem()


def test_show_creates_window_and_stores_image(gui):
    gui.show("w", np.ones((2, 2)))
    window = gui.window("w")
    assert window is not None
    assert window.shown_count == 1
    assert np.array_equal(window.image, np.ones((2, 2)))


def test_show_twice_counts(gui):
    gui.show("w", 1)
    gui.show("w", 2)
    assert gui.window("w").shown_count == 2
    assert gui.draw_operations == 2


def test_move_window_requires_existing(gui):
    with pytest.raises(GuiError):
        gui.move_window("ghost", 1, 1)
    gui.named_window("w")
    gui.move_window("w", 5, 6)
    assert (gui.window("w").x, gui.window("w").y) == (5, 6)


def test_set_title_creates_window(gui):
    gui.set_title("w", "hello")
    assert gui.window("w").title == "hello"


def test_destroy_all(gui):
    gui.named_window("a")
    gui.named_window("b")
    assert gui.destroy_all() == 2
    assert gui.windows == {}


def test_connection_tracking(gui):
    assert not gui.is_connected(3)
    gui.connect(3)
    gui.require_connection(3)
    with pytest.raises(GuiError):
        gui.require_connection(4)


def test_key_queue_fifo(gui):
    gui.queue_keys("sq")
    assert gui.poll_key() == "s"
    assert gui.poll_key() == "q"
    assert gui.poll_key() == ""


def test_recent_files_most_recent_first_no_duplicates(gui):
    gui.add_recent_file("/a")
    gui.add_recent_file("/b")
    gui.add_recent_file("/a")
    assert gui.recent_files == ["/a", "/b"]
