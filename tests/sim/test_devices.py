"""Simulated devices: camera and network."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.sim.devices import (
    CAMERA_FD,
    Camera,
    DeviceBoard,
    GUI_SOCKET_FD,
    NETWORK_FD,
    Network,
)


class TestCamera:
    def test_read_requires_open(self):
        camera = Camera()
        with pytest.raises(DeviceError):
            camera.read_frame()

    def test_frames_are_deterministic(self):
        a, b = Camera(), Camera()
        a.open(), b.open()
        assert np.array_equal(a.read_frame(), b.read_frame())

    def test_frame_limit_ends_stream(self):
        camera = Camera(frame_limit=2)
        camera.open()
        assert camera.read_frame() is not None
        assert camera.read_frame() is not None
        assert camera.read_frame() is None
        assert camera.frames_read == 2

    def test_custom_source(self):
        frames = [np.ones((2, 2)), None]
        camera = Camera(frame_source=lambda i: frames[i])
        camera.open()
        assert np.array_equal(camera.read_frame(), np.ones((2, 2)))
        assert camera.read_frame() is None

    def test_rewind(self):
        camera = Camera(frame_limit=1)
        camera.open()
        camera.read_frame()
        assert camera.read_frame() is None
        camera.rewind()
        assert camera.read_frame() is not None

    def test_well_known_fd(self):
        assert Camera().fd == CAMERA_FD


class TestNetwork:
    def test_send_is_recorded(self):
        net = Network()
        net.send(1, "server", {"x": 1})
        assert len(net.outbound) == 1
        assert net.outbound[0].destination == "server"
        assert net.outbound[0].nbytes > 0

    def test_outbound_to_filters(self):
        net = Network()
        net.send(1, "a", 1)
        net.send(1, "b", 2)
        assert len(net.outbound_to("a")) == 1

    def test_download_hosted_content(self):
        net = Network()
        net.host_content("https://x/y", [1, 2])
        assert net.download("https://x/y") == [1, 2]

    def test_download_missing_raises(self):
        with pytest.raises(DeviceError):
            Network().download("https://nothing")

    def test_connect_tracks_pids(self):
        net = Network()
        assert not net.is_connected(5)
        net.connect(5)
        assert net.is_connected(5)

    def test_clear(self):
        net = Network()
        net.send(1, "a", 1)
        net.clear()
        assert net.outbound == []


class TestDeviceBoard:
    def test_fd_lookup(self):
        board = DeviceBoard()
        assert board.fd_of("camera") == CAMERA_FD
        assert board.fd_of("network") == NETWORK_FD
        assert board.fd_of("gui") == GUI_SOCKET_FD

    def test_unknown_device(self):
        with pytest.raises(DeviceError):
            DeviceBoard().fd_of("printer")
