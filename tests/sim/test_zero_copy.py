"""Zero-copy transfers: shared segments, COW downgrades, size memoization."""

import numpy as np
import pytest

from repro.errors import SegmentationFault
from repro.sim.kernel import ZERO_COPY_MIN_BYTES, SimKernel
from repro.sim.memory import Permission, payload_nbytes


def big_payload():
    """A payload comfortably above the remap threshold."""
    array = np.zeros(ZERO_COPY_MIN_BYTES // 8 * 2, dtype=np.float64)
    assert array.nbytes >= ZERO_COPY_MIN_BYTES
    return array


def two_processes():
    kernel = SimKernel()
    source = kernel.spawn("src")
    destination = kernel.spawn("dst")
    return kernel, source, destination


class TestZeroCopyTransfer:
    def test_large_payload_remaps_instead_of_copying(self):
        kernel, src, dst = two_processes()
        payload = big_payload()
        buffer = kernel.transfer(src, dst, payload, zero_copy=True)
        assert buffer.segment is not None
        assert buffer.segment.mappings == 1
        assert buffer.payload is payload  # no byte copy happened
        assert kernel.ipc.zero_copy_transfers == 1
        assert kernel.ipc.zero_copy_bytes == payload.nbytes
        assert kernel.ipc.lazy_copies == 0
        assert kernel.ipc.nonlazy_copies == 0

    def test_small_payload_falls_back_to_copy(self):
        kernel, src, dst = two_processes()
        payload = np.zeros(8, dtype=np.float64)  # far below the threshold
        buffer = kernel.transfer(src, dst, payload, zero_copy=True)
        assert buffer.segment is None
        assert kernel.ipc.zero_copy_transfers == 0
        assert kernel.ipc.nonlazy_copies == 1

    def test_remap_is_cheaper_than_the_copy_it_replaces(self):
        payload = big_payload()

        def elapsed(zero_copy):
            kernel, src, dst = two_processes()
            start = kernel.clock.now_ns
            kernel.transfer(src, dst, payload, zero_copy=zero_copy)
            return kernel.clock.now_ns - start

        cost = SimKernel().clock.cost_model
        saved = elapsed(False) - elapsed(True)
        expected = cost.copy_cost(payload.nbytes) - cost.remap_cost(
            (payload.nbytes + 4095) // 4096
        )
        assert saved == expected > 0

    def test_zero_copy_bytes_count_as_data_transferred(self):
        kernel, src, dst = two_processes()
        payload = big_payload()
        kernel.transfer(src, dst, payload, zero_copy=True)
        assert kernel.data_transferred_bytes == (
            kernel.ipc.message_bytes + payload.nbytes
        )
        assert kernel.ipc.total_copy_bytes == payload.nbytes

    def test_free_detaches_the_segment(self):
        kernel, src, dst = two_processes()
        buffer = kernel.transfer(src, dst, big_payload(), zero_copy=True)
        segment = buffer.segment
        dst.memory.free(buffer.buffer_id)
        assert segment.mappings == 0
        assert buffer.segment is None


class TestCowDowngrade:
    def test_first_write_pays_the_deferred_copy(self):
        kernel, src, dst = two_processes()
        payload = big_payload()
        buffer = kernel.transfer(src, dst, payload, zero_copy=True)
        segment = buffer.segment
        before = kernel.clock.now_ns
        dst.memory.store(buffer.buffer_id, np.ones_like(payload))
        cost = kernel.clock.cost_model.copy_cost(payload.nbytes)
        assert kernel.clock.now_ns - before == cost
        assert buffer.segment is None
        assert segment.mappings == 0
        assert dst.memory.cow_downgrades == 1
        assert dst.memory.cow_bytes == payload.nbytes
        assert kernel.ipc.cow_downgrades == 1
        assert kernel.ipc.cow_bytes == payload.nbytes

    def test_second_write_is_private_and_free_of_cow(self):
        kernel, src, dst = two_processes()
        payload = big_payload()
        buffer = kernel.transfer(src, dst, payload, zero_copy=True)
        dst.memory.store(buffer.buffer_id, np.ones_like(payload))
        before = kernel.clock.now_ns
        dst.memory.store(buffer.buffer_id, np.zeros_like(payload))
        assert kernel.clock.now_ns == before  # no second downgrade charge
        assert kernel.ipc.cow_downgrades == 1

    def test_frozen_write_faults_before_any_cow_happens(self):
        """Temporal freezing wins: the permission check runs first, so a
        write to a frozen shared mapping SIGSEGVs without detaching the
        segment or charging the deferred copy."""
        kernel, src, dst = two_processes()
        payload = big_payload()
        buffer = kernel.transfer(src, dst, payload, zero_copy=True)
        dst.memory.protect_buffer(buffer.buffer_id, Permission.ro())
        before = kernel.clock.now_ns
        with pytest.raises(SegmentationFault):
            dst.memory.store(buffer.buffer_id, np.ones_like(payload))
        assert kernel.clock.now_ns == before
        assert buffer.segment is not None
        assert buffer.segment.mappings == 1
        assert dst.memory.cow_downgrades == 0
        assert kernel.ipc.cow_downgrades == 0
        assert dst.memory.write_denials == 1
        assert dst.memory.frozen_write_granted == 0

    def test_raw_write_takes_the_same_cow_path(self):
        kernel, src, dst = two_processes()
        payload = big_payload()
        buffer = kernel.transfer(src, dst, payload, zero_copy=True)
        dst.memory.raw_write(buffer.address, 8, value=np.ones_like(payload))
        assert buffer.segment is None
        assert kernel.ipc.cow_downgrades == 1


class TestFrozenSizeMemoization:
    def test_frozen_size_matches_unfrozen(self):
        payload = {"a": np.ones((4, 4)), "b": [1, 2, "three"]}
        assert payload_nbytes(payload, frozen=True) == payload_nbytes(payload)

    def test_frozen_size_is_cached(self):
        from repro.sim.memory import _frozen_cache

        class Blob:  # hashable by identity and weakref-able
            nbytes = 512

        payload = Blob()
        size = payload_nbytes(payload, frozen=True)
        assert size == 512
        assert _frozen_cache()[payload] == size
        assert payload_nbytes(payload, frozen=True) == size

    def test_uncacheable_payloads_still_size_correctly(self):
        # Lists are unhashable: the memo is skipped, never an error.
        payload = [np.ones(8), b"xyz"]
        expected = 16 + np.ones(8).nbytes + 3
        assert payload_nbytes(payload, frozen=True) == expected
        assert payload_nbytes(payload, frozen=True) == expected
