"""Simulated MMU: allocation, permissions, mprotect, faults."""

import numpy as np
import pytest

from repro.errors import SegmentationFault
from repro.sim.clock import VirtualClock
from repro.sim.memory import (
    AddressSpace,
    MemoryLayout,
    PAGE_SIZE,
    Permission,
    page_of,
    pages_spanned,
    payload_nbytes,
)


@pytest.fixture
def space():
    return AddressSpace(pid=1, clock=VirtualClock())


def test_alloc_returns_page_aligned_buffer(space):
    buffer = space.alloc(100, tag="x")
    assert buffer.address % PAGE_SIZE == 0
    assert buffer.nbytes == 100


def test_allocations_do_not_overlap(space):
    buffers = [space.alloc(3 * PAGE_SIZE) for _ in range(10)]
    ranges = sorted((b.address, b.end) for b in buffers)
    for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
        assert end_a <= start_b


def test_guard_page_between_allocations(space):
    a = space.alloc(10)
    b = space.alloc(10)
    # the page right after a's last page is unmapped
    gap_addr = (page_of(a.end - 1) + 1) * PAGE_SIZE
    assert gap_addr < b.address
    assert space.permission_of(gap_addr) == Permission.NONE


def test_store_and_load_roundtrip(space):
    buffer = space.alloc_object({"k": 1}, tag="cfg")
    assert space.load(buffer.buffer_id) == {"k": 1}
    space.store(buffer.buffer_id, {"k": 2})
    assert space.load(buffer.buffer_id) == {"k": 2}


def test_store_grows_mapping_for_larger_payload(space):
    buffer = space.alloc_object(np.zeros(4), tag="arr")
    big = np.zeros(PAGE_SIZE)  # 8 pages of float64
    space.store(buffer.buffer_id, big)
    assert buffer.nbytes == big.nbytes
    space.check(buffer.address, buffer.nbytes, Permission.WRITE)


def test_mprotect_read_only_blocks_store(space):
    buffer = space.alloc_object([1, 2, 3], tag="data")
    space.protect_buffer(buffer.buffer_id, Permission.ro())
    with pytest.raises(SegmentationFault):
        space.store(buffer.buffer_id, [9])
    assert space.load(buffer.buffer_id) == [1, 2, 3]


def test_mprotect_restores_write(space):
    buffer = space.alloc_object([1], tag="data")
    space.protect_buffer(buffer.buffer_id, Permission.ro())
    space.protect_buffer(buffer.buffer_id, Permission.rw())
    space.store(buffer.buffer_id, [2])
    assert space.load(buffer.buffer_id) == [2]


def test_mprotect_unmapped_page_faults(space):
    with pytest.raises(SegmentationFault):
        space.mprotect(0xDEAD_0000, 10, Permission.ro())


def test_mprotect_charges_clock(space):
    buffer = space.alloc(10)
    before = space.clock.now_ns
    space.protect_buffer(buffer.buffer_id, Permission.ro())
    assert space.clock.now_ns > before
    assert space.mprotect_calls == 1


def test_raw_write_hits_containing_buffer(space):
    buffer = space.alloc_object("original", tag="var")
    corrupted = space.raw_write(buffer.address + 1, 4, value="evil")
    assert corrupted.buffer_id == buffer.buffer_id
    assert space.load(buffer.buffer_id) == "evil"


def test_raw_write_to_unmapped_address_faults(space):
    with pytest.raises(SegmentationFault):
        space.raw_write(0xBAD_0000, 8, value="x")


def test_raw_write_to_read_only_faults(space):
    buffer = space.alloc_object("secret", tag="var")
    space.protect_buffer(buffer.buffer_id, Permission.ro())
    with pytest.raises(SegmentationFault):
        space.raw_write(buffer.address, 8, value="evil")
    assert space.load(buffer.buffer_id) == "secret"


def test_raw_read(space):
    buffer = space.alloc_object(42, tag="var")
    assert space.raw_read(buffer.address, 8) == 42


def test_free_unmaps(space):
    buffer = space.alloc_object([1], tag="tmp")
    space.free(buffer.buffer_id)
    with pytest.raises(SegmentationFault):
        space.load(buffer.buffer_id)
    assert space.permission_of(buffer.address) == Permission.NONE


def test_find_buffer_returns_most_recent(space):
    space.alloc_object(1, tag="dup")
    latest = space.alloc_object(2, tag="dup")
    assert space.find_buffer("dup").buffer_id == latest.buffer_id


def test_find_buffer_missing_returns_none(space):
    assert space.find_buffer("ghost") is None


def test_buffers_in_state(space):
    space.alloc(8, origin_state="initialization")
    space.alloc(8, origin_state="data_loading")
    space.alloc(8, origin_state="data_loading")
    assert len(space.buffers_in_state("data_loading")) == 2
    assert len(space.buffers_in_state("storing")) == 0


def test_is_writable_reflects_protection(space):
    buffer = space.alloc(8)
    assert space.is_writable(buffer.buffer_id)
    space.protect_buffer(buffer.buffer_id, Permission.ro())
    assert not space.is_writable(buffer.buffer_id)


def test_resident_bytes(space):
    space.alloc(100)
    space.alloc(200)
    assert space.resident_bytes == 300


def test_pages_spanned_boundaries():
    assert list(pages_spanned(0, PAGE_SIZE)) == [0]
    assert list(pages_spanned(0, PAGE_SIZE + 1)) == [0, 1]
    assert list(pages_spanned(PAGE_SIZE - 1, 2)) == [0, 1]
    assert list(pages_spanned(100, 0)) == []


class TestPayloadNbytes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros((4, 4))) == 128

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_string_utf8(self):
        assert payload_nbytes("héllo") == len("héllo".encode("utf-8"))

    def test_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(True) == 8

    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_containers_recurse(self):
        flat = payload_nbytes([1.0, 2.0])
        assert flat == 16 + 16
        nested = payload_nbytes({"a": [1.0]})
        assert nested > payload_nbytes([1.0])

    def test_object_with_nbytes_attr(self):
        class Sized:
            nbytes = 77

        assert payload_nbytes(Sized()) == 77


class TestMemoryLayout:
    def test_valid(self):
        MemoryLayout(name="t", tag="template", nbytes=64).validate()

    def test_requires_name(self):
        from repro.errors import AnnotationError

        with pytest.raises(AnnotationError):
            MemoryLayout(name="", tag="t", nbytes=1).validate()

    def test_requires_positive_size(self):
        from repro.errors import AnnotationError

        with pytest.raises(AnnotationError):
            MemoryLayout(name="x", tag="t", nbytes=0).validate()
