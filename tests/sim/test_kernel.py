"""The simulated kernel: process table, transfer, restart."""

import numpy as np
import pytest

from repro.errors import ProcessCrashed, ProcessNotFound, SyscallDenied
from repro.sim.filters import FilterSpec
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


def test_spawn_assigns_unique_pids(kernel):
    a = kernel.spawn("a")
    b = kernel.spawn("b")
    assert a.pid != b.pid
    assert kernel.process(a.pid) is a


def test_spawn_charges_clock_unless_disabled(kernel):
    t0 = kernel.clock.now_ns
    kernel.spawn("a")
    charged = kernel.clock.now_ns
    assert charged > t0
    kernel.spawn("b", charge=False)
    assert kernel.clock.now_ns == charged


def test_process_lookup_missing(kernel):
    with pytest.raises(ProcessNotFound):
        kernel.process(9999)


def test_processes_filter_by_role(kernel):
    kernel.spawn("h", role="host")
    kernel.spawn("a1", role="agent")
    kernel.spawn("a2", role="agent")
    assert len(kernel.processes(role="agent")) == 2
    assert len(kernel.processes()) == 3


def test_kill_and_living(kernel):
    a = kernel.spawn("a")
    b = kernel.spawn("b")
    kernel.kill(a.pid, "test")
    living = kernel.living()
    assert b in living and a not in living


def test_transfer_copies_into_destination(kernel):
    src = kernel.spawn("src")
    dst = kernel.spawn("dst")
    payload = np.ones((4, 4))
    buffer = kernel.transfer(src, dst, payload, tag="img", lazy=True)
    assert dst.memory.load(buffer.buffer_id) is payload
    assert kernel.ipc.lazy_copies == 1
    assert kernel.ipc.lazy_copy_bytes == payload.nbytes


def test_transfer_counts_message_by_default(kernel):
    src, dst = kernel.spawn("s"), kernel.spawn("d")
    kernel.transfer(src, dst, np.ones(4))
    assert kernel.ipc.messages == 1


def test_transfer_count_message_false(kernel):
    src, dst = kernel.spawn("s"), kernel.spawn("d")
    kernel.transfer(src, dst, np.ones(4), count_message=False)
    assert kernel.ipc.messages == 0
    assert kernel.ipc.nonlazy_copies == 1


def test_transfer_requires_living_endpoints(kernel):
    src, dst = kernel.spawn("s"), kernel.spawn("d")
    src.crash("dead")
    with pytest.raises(ProcessCrashed):
        kernel.transfer(src, dst, 1)


def test_data_transferred_bytes_combines_messages_and_lazy(kernel):
    src, dst = kernel.spawn("s"), kernel.spawn("d")
    kernel.ipc.record_message(100)
    kernel.transfer(src, dst, np.zeros(8), lazy=True, count_message=False)
    assert kernel.data_transferred_bytes == 100 + 64


def test_restart_replaces_with_fresh_process(kernel):
    original = kernel.spawn("agent", role="agent")
    original.memory.alloc_object("state", tag="s")
    original.crash("exploited")
    replacement = kernel.restart(original)
    assert replacement.pid != original.pid
    assert replacement.name == original.name
    assert replacement.role == original.role
    assert replacement.generation == original.generation + 1
    # Variables are intentionally NOT restored (Section 6).
    assert replacement.memory.find_buffer("s") is None
    assert kernel.restarted_processes == 1


def test_restart_installs_sealed_filter(kernel):
    original = kernel.spawn("agent", role="agent")
    original.crash("x")
    spec = FilterSpec(allowed=frozenset({"read"}))
    replacement = kernel.restart(original, filter_spec=spec)
    assert replacement.filter.sealed
    replacement.syscall("read")
    with pytest.raises(SyscallDenied):
        replacement.syscall("fork")


def test_restart_charges_clock(kernel):
    original = kernel.spawn("a")
    original.crash("x")
    before = kernel.clock.now_ns
    kernel.restart(original)
    assert kernel.clock.now_ns - before >= kernel.clock.cost_model.process_restart_ns


def test_channel_pair_is_cached(kernel):
    assert kernel.channel_pair("x") is kernel.channel_pair("x")


def test_summary_shape(kernel):
    kernel.spawn("a")
    summary = kernel.summary()
    assert summary["processes"] == 1
    assert summary["alive"] == 1
    assert "virtual_seconds" in summary
