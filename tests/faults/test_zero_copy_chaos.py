"""Zero-copy COW downgrades stay correct and deterministic under chaos.

The zero-copy lane defers byte copies until first write; fault schedules
must never let that deferral weaken an invariant: frozen pages still
fault before any COW, accounting still reconciles, and the whole run is
byte-deterministic schedule by schedule.
"""

import numpy as np

from repro.apps.base import Workload, execute_app
from repro.apps.suite import make_app
from repro.attacks.scenarios import build_gateway
from repro.faults.campaign import ChaosSettings, run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRates
from repro.sim.kernel import ZERO_COPY_MIN_BYTES, SimKernel

# (64, 64) float64 intermediates are 32,768 bytes — even single-channel
# derived images clear the remap threshold, so every chaos run below
# genuinely exercises the zero-copy lane.
BIG = Workload(items=1, image_size=64)


def test_workload_actually_takes_the_zero_copy_lane():
    assert 64 * 64 * 8 >= ZERO_COPY_MIN_BYTES
    app = make_app(2)
    kernel = SimKernel()
    gateway = build_gateway("freepart", kernel, app=app)
    report = execute_app(app, gateway, BIG)
    assert not report.failed, report.error
    assert report.zero_copy_transfers > 0


# Message-level chaos only: drops, duplicates, reorders, and stalls are
# all masked by retransmission, so the run completes and its zero-copy
# accounting can be checked end to end.  (Crash faults legitimately end
# some runs failed-clean; the campaign test below covers those.)
MESSAGE_CHAOS = FaultRates(
    rpc_crash=0.0, ipc_drop=0.05, ipc_duplicate=0.05,
    ipc_reorder=0.02, channel_stall=0.02,
    checkpoint_tear=0.0, restart_crash=0.0,
)


def faulted_run(seed):
    """One seeded-fault run; returns the numbers that must reproduce."""
    app = make_app(2)
    kernel = SimKernel()
    plan = FaultPlan(seed, rates=MESSAGE_CHAOS)
    kernel.inject_faults(FaultInjector(plan))
    from repro.core.runtime import FreePartConfig

    gateway = build_gateway(
        "freepart", kernel, app=app,
        config=FreePartConfig(
            annotations=tuple(app.annotations), rpc_retries=3
        ),
    )
    report = execute_app(app, gateway, BIG)
    ipc = kernel.ipc
    frozen_granted = sum(
        p.memory.frozen_write_granted for p in kernel.processes()
    )
    return report, ipc, kernel.clock.now_ns, frozen_granted


def test_faulted_run_keeps_zero_copy_accounting_reconciled():
    report, ipc, _, frozen_granted = faulted_run(seed=13)
    assert not report.failed, report.error
    assert ipc.zero_copy_transfers > 0
    # The ledger reconciles exactly even with retransmits in the mix.
    assert ipc.total_copy_bytes == (
        ipc.lazy_copy_bytes + ipc.nonlazy_copy_bytes + ipc.zero_copy_bytes
    )
    assert report.data_transferred_bytes == (
        report.ipc_bytes + report.lazy_copy_bytes + report.zero_copy_bytes
    )
    # COW never fires on a frozen page: the permission check runs first.
    assert frozen_granted == 0
    assert ipc.cow_bytes <= ipc.zero_copy_bytes


def test_faulted_runs_are_byte_deterministic_per_schedule():
    for seed in (13, 91):
        first_report, first_ipc, first_ns, _ = faulted_run(seed)
        second_report, second_ipc, second_ns, _ = faulted_run(seed)
        assert first_ns == second_ns
        assert first_ipc.snapshot() == second_ipc.snapshot()
        assert first_report.to_dict() == second_report.to_dict()


def test_chaos_campaign_with_zero_copy_sheets_holds_every_invariant():
    settings = ChaosSettings(target="2", seed=7, campaign=10,
                             fault_rate=0.05, items=1, image_size=64)
    first = run_campaign(settings)
    second = run_campaign(settings)
    assert first.passed, [
        s.to_dict() for s in first.schedules if not s.passed
    ]
    assert first.faults_injected > 0
    assert first.digest() == second.digest()
