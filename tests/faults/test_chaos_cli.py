"""The ``repro chaos`` subcommand: exit contract and report formats."""

import json

import pytest

from repro.cli import main

FAST = ["--campaign", "2", "--fault-rate", "0.1",
        "--items", "1", "--image-size", "8"]


def test_passing_campaign_exits_zero(capsys):
    assert main(["chaos", "8", "--seed", "3"] + FAST) == 0
    out = capsys.readouterr().out
    assert "Chaos campaign" in out
    assert "PASS" in out
    assert "digest" in out


def test_json_report(capsys):
    assert main(["chaos", "8", "--seed", "3", "--json"] + FAST) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["passed"] is True
    assert payload["target"] == "8"
    assert len(payload["schedules"]) == 2
    assert len(payload["digest"]) == 64


def test_json_report_is_byte_identical_across_runs(capsys):
    main(["chaos", "8", "--seed", "3", "--json"] + FAST)
    first = capsys.readouterr().out
    main(["chaos", "8", "--seed", "3", "--json"] + FAST)
    assert capsys.readouterr().out == first


def test_unknown_target_exits_two(capsys):
    assert main(["chaos", "not-a-target"] + FAST) == 2
    assert "error" in capsys.readouterr().err


def test_bad_flag_values_exit_two(capsys):
    assert main(["chaos", "8", "--campaign", "0"]) == 2
    assert main(["chaos", "8", "--fault-rate", "-1"]) == 2
    capsys.readouterr()


def test_invariant_failure_exits_one(capsys, monkeypatch):
    import repro.faults.campaign as campaign

    def broken(baseline, faulted):
        return {"output": False, "frozen": True, "refs": True,
                "observed": True}

    monkeypatch.setattr(campaign, "check_invariants", broken)
    assert main(["chaos", "8", "--seed", "3"] + FAST) == 1
    assert "FAIL:output" in capsys.readouterr().out


def test_serve_target_supported(capsys):
    assert main(["chaos", "serve-bench", "--seed", "1"] + FAST) == 0
    capsys.readouterr()
