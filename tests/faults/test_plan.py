"""Seeded fault plans: determinism, rate scaling, scripted overrides."""

import pytest

from repro.faults.plan import (
    RPC_CRASH_POINTS,
    FaultKind,
    FaultPlan,
    FaultRates,
    NoFaultPlan,
)


def drive(plan, rounds=200):
    """A fixed tour of every hook point; returns the verdict sequence."""
    verdicts = []
    for index in range(rounds):
        verdicts.append(plan.rpc_crash_point("cv2.imread", index))
        verdicts.append(plan.channel_verdict("agent-1", "request", 1024))
        verdicts.append(plan.checkpoint_tear("processing", 4))
        verdicts.append(plan.restart_crash("loading"))
    return verdicts


def test_same_seed_same_schedule():
    first = drive(FaultPlan(42, FaultRates.scaled(0.3)))
    second = drive(FaultPlan(42, FaultRates.scaled(0.3)))
    assert first == second
    assert any(v not in (None, False) for v in first)  # faults actually fire


def test_different_seeds_diverge():
    rates = FaultRates.scaled(0.3)
    assert drive(FaultPlan(1, rates)) != drive(FaultPlan(2, rates))


def test_zero_rate_never_fires():
    plan = FaultPlan(7, FaultRates.scaled(0.0))
    assert all(v in (None, False) for v in drive(plan, rounds=500))
    assert plan.decisions > 0  # the draws still happened (digest input)


def test_negative_rate_rejected():
    with pytest.raises(ValueError):
        FaultRates.scaled(-0.1)


def test_crash_points_come_from_the_rpc_triple():
    plan = FaultPlan(3, FaultRates(rpc_crash=1.0))
    seen = {plan.rpc_crash_point("q", i) for i in range(50)}
    assert seen <= set(RPC_CRASH_POINTS)
    assert len(seen) > 1  # the point itself is drawn, not fixed


def test_tear_offset_strictly_inside_items():
    plan = FaultPlan(5, FaultRates(checkpoint_tear=1.0))
    for _ in range(100):
        offset = plan.checkpoint_tear("processing", 4)
        assert offset is not None and 0 <= offset < 4
    assert plan.checkpoint_tear("processing", 0) is None


def test_decisions_count_every_draw():
    plan = FaultPlan(9, FaultRates.scaled(0.0))
    plan.rpc_crash_point("q", 0)
    plan.channel_verdict("c", "request", 8)
    plan.checkpoint_tear("p", 2)
    plan.restart_crash("p")
    assert plan.decisions == 4


def test_no_fault_plan_declines_everything():
    plan = NoFaultPlan()
    assert plan.rpc_crash_point("q", 0) is None
    assert plan.channel_verdict("c", "request", 8) is None
    assert plan.checkpoint_tear("p", 3) is None
    assert plan.restart_crash("p") is False


def test_channel_verdict_covers_all_ipc_kinds():
    plan = FaultPlan(11, FaultRates(
        ipc_drop=0.25, ipc_duplicate=0.25, ipc_reorder=0.25,
        channel_stall=0.25,
    ))
    seen = {plan.channel_verdict("c", "request", 8) for _ in range(300)}
    assert {
        FaultKind.IPC_DROP, FaultKind.IPC_DUPLICATE,
        FaultKind.IPC_REORDER, FaultKind.CHANNEL_STALL,
    } <= seen
