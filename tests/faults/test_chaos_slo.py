"""Chaos schedules feed the SLO engine: faults become burn-rate alerts."""

from repro.faults.campaign import ChaosSettings, run_target
from repro.faults.plan import FaultPlan, FaultRates
from repro.obs.slo import evaluate_slos


def test_clean_serve_run_produces_events_but_no_alerts():
    settings = ChaosSettings(target="serve-bench", seed=0, campaign=1)
    outcome = run_target("serve-bench", settings, plan=None)
    assert outcome.ok
    assert len(outcome.request_events) == 4
    assert all(event.ok for event in outcome.request_events)
    for result in evaluate_slos(outcome.request_events):
        assert result.alerts == []


def test_some_faulted_schedule_trips_a_burn_rate_alert():
    """At the bench's fixed sweep (seed 11, rate 0.2) some schedule must
    exhaust its retries, fail a request, and trip the fast burn window —
    the chaos-to-alert pipeline end to end."""
    settings = ChaosSettings(
        target="serve-bench", seed=11, campaign=5, fault_rate=0.2
    )
    rates = FaultRates.scaled(settings.fault_rate)
    alerting = 0
    for index in range(settings.campaign):
        plan = FaultPlan(settings.schedule_seed(index), rates)
        outcome = run_target("serve-bench", settings, plan)
        results = evaluate_slos(outcome.request_events)
        fired = sum(len(result.alerts) for result in results)
        errors = sum(
            1 for event in outcome.request_events if not event.ok
        )
        if errors:
            # Any failed request concentrates enough burn in its 1 ms
            # cell to cross the fast threshold (error budget 0.001).
            assert fired > 0
        if fired:
            alerting += 1
    assert alerting >= 1


def test_cluster_outcome_labels_events_by_node():
    settings = ChaosSettings(
        target="cluster", seed=0, campaign=1, nodes=2
    )
    outcome = run_target("cluster", settings, plan=None)
    assert outcome.ok
    assert outcome.request_events
    nodes = {event.node for event in outcome.request_events}
    assert nodes <= {"node0", "node1"}
    assert len(nodes) == 2
    # Sorted tuple: deterministic SLO evaluation input.
    assert list(outcome.request_events) == sorted(outcome.request_events)
