"""Chaos campaigns: the four invariants, determinism, the acceptance sweep."""

import pytest

from repro.errors import ReproError
from repro.faults.campaign import (
    SCHEDULE_SEED_STRIDE,
    ChaosSettings,
    RunOutcome,
    check_invariants,
    run_campaign,
    run_target,
)


def outcome(**overrides):
    base = dict(
        ok=True, failed_clean=False, error="",
        outputs={"/out/a": "d1", "/out/b": "d2"},
        frozen_writes=0, stale_refs=0,
        fault_ids=(), observed_fault_ids=(), injected_by_kind={},
        decisions=0, virtual_ns=0, restarts=0, retries=0,
        losses_accounted=0,
    )
    base.update(overrides)
    return RunOutcome(**base)


BASELINE = outcome()


def test_identical_run_passes_all_invariants():
    assert all(check_invariants(BASELINE, outcome()).values())


def test_divergent_content_fails_output():
    faulted = outcome(outputs={"/out/a": "CORRUPT", "/out/b": "d2"})
    assert not check_invariants(BASELINE, faulted)["output"]


def test_extra_file_fails_output():
    faulted = outcome(outputs={**BASELINE.outputs, "/out/extra": "dx"})
    assert not check_invariants(BASELINE, faulted)["output"]


def test_missing_output_needs_an_accounted_loss():
    partial = {"/out/a": "d1"}
    silent = outcome(outputs=partial)
    assert not check_invariants(BASELINE, silent)["output"]
    accounted = outcome(outputs=partial, losses_accounted=1)
    assert check_invariants(BASELINE, accounted)["output"]
    failed = outcome(outputs=partial, ok=False, failed_clean=True)
    assert check_invariants(BASELINE, failed)["output"]


def test_frozen_write_fails_frozen():
    assert not check_invariants(BASELINE, outcome(frozen_writes=1))["frozen"]


def test_stale_ref_fails_refs():
    assert not check_invariants(BASELINE, outcome(stale_refs=2))["refs"]


def test_unobserved_fault_fails_observed():
    faulted = outcome(fault_ids=(1, 2), observed_fault_ids=(1,))
    assert not check_invariants(BASELINE, faulted)["observed"]
    complete = outcome(fault_ids=(1, 2), observed_fault_ids=(1, 2))
    assert check_invariants(BASELINE, complete)["observed"]


def test_schedule_seeds_spread_and_never_collide_across_campaigns():
    a = ChaosSettings(target="8", seed=0)
    b = ChaosSettings(target="8", seed=1)
    assert a.schedule_seed(1) - a.schedule_seed(0) == 1
    seeds_a = {a.schedule_seed(i) for i in range(a.campaign)}
    seeds_b = {b.schedule_seed(i) for i in range(b.campaign)}
    assert not seeds_a & seeds_b
    assert b.schedule_seed(0) == SCHEDULE_SEED_STRIDE


def test_unknown_target_rejected():
    settings = ChaosSettings(target="nonsense")
    with pytest.raises(ValueError):
        run_target("nonsense", settings, plan=None)


def test_fault_free_run_of_each_target_kind_is_ok():
    for target in ("8", "CVE-2017-12597", "serve-bench"):
        settings = ChaosSettings(target=target, items=1, image_size=8)
        result = run_target(target, settings, plan=None)
        assert result.ok, (target, result.error)
        assert result.fault_ids == ()
        assert result.outputs


def test_campaign_is_byte_deterministic():
    settings = ChaosSettings(target="8", seed=5, campaign=3,
                             fault_rate=0.1, items=1, image_size=8)
    first = run_campaign(settings)
    second = run_campaign(settings)
    assert first.to_dict() == second.to_dict()
    assert first.digest() == second.digest()
    assert first.faults_injected > 0


def test_campaign_report_shape():
    settings = ChaosSettings(target="8", seed=2, campaign=2,
                             fault_rate=0.1, items=1, image_size=8)
    report = run_campaign(settings)
    payload = report.to_dict()
    assert payload["target"] == "8"
    assert len(payload["schedules"]) == 2
    for schedule in payload["schedules"]:
        assert set(schedule["invariants"]) == {
            "output", "frozen", "refs", "observed",
        }
    assert len(report.digest()) == 64


def test_acceptance_sweep_three_apps_plus_serving():
    """The PR's acceptance bar: a 200-schedule seeded campaign across
    three applications and the serving workload, every invariant holding
    on every schedule."""
    total_schedules = 0
    total_faults = 0
    for target in ("2", "8", "drone", "serve-bench"):
        settings = ChaosSettings(target=target, seed=11, campaign=50,
                                 fault_rate=0.05, items=1, image_size=8)
        report = run_campaign(settings)
        assert report.passed, [
            s.to_dict() for s in report.schedules if not s.passed
        ]
        total_schedules += len(report.schedules)
        total_faults += report.faults_injected
    assert total_schedules == 200
    assert total_faults > 100  # the schedules genuinely inject faults


def test_loadgen_target_chaos_campaign():
    """The loadgen chaos target: open-loop burst traffic + faults, with
    the elastic controllers armed.  Every invariant holds, the storm
    forces at least one scale-up, and sheds/failures are accounted."""
    settings = ChaosSettings(target="loadgen", seed=3, campaign=3,
                             fault_rate=0.01, profile="burst")
    report = run_campaign(settings)
    assert report.passed, [
        s.to_dict() for s in report.schedules if not s.passed
    ]
    assert any(s.scale_ups >= 1 for s in report.schedules)
    payload = report.to_dict()
    assert payload["profile"] == "burst"
    for schedule in payload["schedules"]:
        assert "scale_ups" in schedule and "shed_requests" in schedule


def test_loadgen_target_is_deterministic():
    settings = ChaosSettings(target="loadgen", seed=1, campaign=2,
                             fault_rate=0.01, profile="flash")
    assert run_campaign(settings).digest() == run_campaign(settings).digest()
