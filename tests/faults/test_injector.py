"""The fault injector: recording, obs emission, channel-level effects."""

import pytest

from repro.errors import ChannelFull
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.faults.plan import FaultKind, NoFaultPlan
from repro.sim.kernel import SimKernel


class ScriptedChannelPlan(NoFaultPlan):
    """Returns a queued list of channel verdicts, then declines."""

    def __init__(self, *verdicts):
        self.queue = list(verdicts)

    def channel_verdict(self, channel_name, kind, nbytes):
        return self.queue.pop(0) if self.queue else None


def armed_kernel(plan, trace=True):
    kernel = SimKernel()
    if trace:
        kernel.enable_tracing()
    injector = kernel.inject_faults(FaultInjector(plan))
    return kernel, injector


def test_null_injector_is_disabled_and_declines():
    assert NULL_INJECTOR.enabled is False
    assert NULL_INJECTOR.rpc_crash_point(None, None) is None
    assert NULL_INJECTOR.channel_action(None, "request", 8) is None
    assert NULL_INJECTOR.checkpoint_tear(None, 4) is None
    assert NULL_INJECTOR.restart_crash(None) is False


def test_kernel_defaults_to_null_injector():
    assert SimKernel().faults is NULL_INJECTOR


def test_drop_charges_but_never_enqueues():
    kernel, injector = armed_kernel(ScriptedChannelPlan(FaultKind.IPC_DROP))
    pair = kernel.channel_pair("t")
    before = kernel.clock.now_ns
    pair.request.send(1, "request", b"x" * 64)
    assert pair.request.pending == 0  # lost in flight
    assert kernel.clock.now_ns > before  # the sender still paid
    assert [f.kind for f in injector.injected] == [FaultKind.IPC_DROP]


def test_duplicate_enqueues_twice():
    kernel, _ = armed_kernel(ScriptedChannelPlan(FaultKind.IPC_DUPLICATE))
    pair = kernel.channel_pair("t")
    pair.request.send(1, "request", b"x" * 64)
    assert pair.request.pending == 2
    first = pair.request.receive()
    second = pair.request.receive()
    assert first.payload == second.payload


def test_reorder_swaps_the_last_two():
    kernel, _ = armed_kernel(
        ScriptedChannelPlan(None, FaultKind.IPC_REORDER)
    )
    pair = kernel.channel_pair("t")
    pair.request.send(1, "request", b"first")
    pair.request.send(1, "request", b"second")
    assert pair.request.receive().payload == b"second"
    assert pair.request.receive().payload == b"first"


def test_stall_raises_transient_channel_full():
    kernel, injector = armed_kernel(
        ScriptedChannelPlan(FaultKind.CHANNEL_STALL)
    )
    pair = kernel.channel_pair("t")
    with pytest.raises(ChannelFull) as excinfo:
        pair.request.send(1, "request", b"x" * 64)
    assert excinfo.value.permanent is False
    assert pair.request.pending == 0
    # The retry (no verdict left) goes through.
    pair.request.send(1, "request", b"x" * 64)
    assert pair.request.pending == 1


def test_every_fault_recorded_with_sequential_ids_and_obs_instants():
    kernel, injector = armed_kernel(ScriptedChannelPlan(
        FaultKind.IPC_DROP, FaultKind.IPC_DUPLICATE,
    ))
    pair = kernel.channel_pair("t")
    pair.request.send(1, "request", b"a" * 8)
    pair.request.send(1, "request", b"b" * 8)
    assert [f.fault_id for f in injector.injected] == [1, 2]
    assert all(f.site == "channel:t:req" or f.site.startswith("channel:")
               for f in injector.injected)
    observed = [
        span.attrs["fault_id"]
        for span in kernel.tracer.closed_spans()
        if span.category == "fault"
    ]
    assert sorted(observed) == [1, 2]


def test_record_detail_carries_message_kind_and_bytes():
    kernel, injector = armed_kernel(ScriptedChannelPlan(FaultKind.IPC_DROP))
    pair = kernel.channel_pair("t")
    pair.request.send(1, "batch-request", b"x" * 32)
    (fault,) = injector.injected
    assert fault.detail["message_kind"] == "batch-request"
    assert fault.detail["bytes"] > 0
    assert fault.to_dict()["kind"] == "ipc-drop"


def test_by_kind_counts_sorted():
    kernel, injector = armed_kernel(ScriptedChannelPlan(
        FaultKind.IPC_DROP, FaultKind.IPC_DROP, FaultKind.IPC_DUPLICATE,
    ))
    pair = kernel.channel_pair("t")
    for _ in range(3):
        pair.request.send(1, "request", b"x" * 8)
    assert injector.by_kind() == {"ipc-drop": 2, "ipc-duplicate": 1}


def test_disarming_restores_null_behavior():
    kernel, injector = armed_kernel(ScriptedChannelPlan(FaultKind.IPC_DROP))
    kernel.inject_faults(NULL_INJECTOR)
    pair = kernel.channel_pair("t")
    pair.request.send(1, "request", b"x" * 8)
    assert pair.request.pending == 1
    assert injector.injected == []
