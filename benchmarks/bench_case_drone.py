"""Section 5.4.1 — the autonomous object-tracking drone case study."""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload, execute_app
from repro.apps.drone import DEFAULT_SPEED, DroneApp, SPEED_TAG
from repro.attacks.scenarios import run_attack
from repro.bench.tables import render_table

WORKLOAD = Workload(items=4, image_size=16)


@pytest.fixture(scope="module")
def results():
    table = {}
    for label, cve_id in (("DoS (crash imread)", "CVE-2017-14136"),
                          ("corrupt self.speed", "CVE-2017-12606")):
        table[label] = {
            technique: run_attack(cve_id, technique=technique, app=DroneApp(),
                                  target_tag=SPEED_TAG, workload=WORKLOAD)
            for technique in ("none", "freepart")
        }
    return table


def test_case_drone(benchmark, results):
    benchmark.pedantic(
        run_attack,
        args=("CVE-2017-14136",),
        kwargs={"technique": "freepart", "app": DroneApp(),
                "target_tag": SPEED_TAG, "workload": WORKLOAD},
        rounds=1, iterations=1,
    )
    rows = []
    for label, by_technique in results.items():
        unprotected = by_technique["none"]
        protected = by_technique["freepart"]
        rows.append([
            label,
            "drone down" if unprotected.host_crashed else
            ("speed flipped" if unprotected.data_corrupted else "?"),
            "still flying" if not protected.host_crashed else "DOWN",
            protected.agent_crashes,
        ])
    emit(render_table(
        "Section 5.4.1 — drone case study",
        ["attack", "unprotected", "FreePart", "agent crashes"],
        rows,
        note="paper: the DoS only crashes the data-loading agent (drone "
             "keeps flying, agent restarts); the speed variable lives in "
             "the target program process and stays 0.3",
    ))
    dos = results["DoS (crash imread)"]
    assert dos["none"].host_crashed
    assert not dos["freepart"].host_crashed
    assert dos["freepart"].agent_crashes == 1
    corrupt = results["corrupt self.speed"]
    assert corrupt["none"].data_corrupted
    assert not corrupt["freepart"].data_corrupted


def test_case_drone_keeps_operating_through_poisoned_frames(benchmark):
    """With restart enabled the drone skips the poisoned frame and keeps
    tracking (the paper: 'a little sluggish' but alive)."""
    from repro.apps.drone import drone_followed_object
    from repro.apps.suite import used_api_objects
    from repro.attacks.exploits import DosExploit
    from repro.attacks.payloads import CraftedInput, benign_image
    from repro.core.runtime import FreePart
    from repro.sim.kernel import SimKernel

    def fly_through_attack():
        app = DroneApp()
        kernel = SimKernel()
        gateway = FreePart(kernel=kernel).deploy(
            used_apis=used_api_objects(app)
        )
        app.setup(kernel, Workload(items=6))
        # Poison the third frame.
        crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
        kernel.fs.write_file(app.frame_path(2), crafted)
        return execute_app(app, gateway, Workload(items=6), setup=False)

    report = benchmark.pedantic(fly_through_attack, rounds=1, iterations=1)
    assert not report.failed
    assert report.result.crashes_survived == 1
    assert report.result.items_processed == 5  # one frame dropped
    assert drone_followed_object(report.result)
    assert report.restarts == 1
