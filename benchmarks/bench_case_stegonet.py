"""Appendix A.7 — the StegoNet trojan-model case study."""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload
from repro.apps.medical import CtViewerApp, InvoiceOcrApp
from repro.attacks.stegonet import run_stegonet_attack
from repro.bench.tables import render_table

WORKLOAD = Workload(items=2, image_size=16)


@pytest.fixture(scope="module")
def results():
    table = {}
    for app_cls in (CtViewerApp, InvoiceOcrApp):
        table[app_cls.__name__] = {
            technique: run_stegonet_attack(app_cls(), technique,
                                           workload=WORKLOAD)
            for technique in ("none", "freepart")
        }
    return table


def test_case_stegonet(benchmark, results):
    benchmark.pedantic(
        run_stegonet_attack, args=(CtViewerApp(), "freepart"),
        kwargs={"workload": WORKLOAD}, rounds=1, iterations=1,
    )
    rows = []
    for app_name, by_technique in results.items():
        unprotected = by_technique["none"]
        protected = by_technique["freepart"]
        rows.append([
            app_name,
            "fork bomb detonated" if unprotected.fork_bomb_detonated else "-",
            "payload seccomp-killed" if protected.prevented else "MISSED",
            "intact" if protected.record_intact else "LEAKED/CORRUPTED",
        ])
    emit(render_table(
        "Appendix A.7 — StegoNet trojan models",
        ["application", "unprotected", "FreePart", "sensitive record"],
        rows,
        note="no framework API in any agent requires fork(); the trojan's "
             "payload dies on its first syscall",
    ))
    for app_name, by_technique in results.items():
        assert by_technique["none"].fork_bomb_detonated, app_name
        assert by_technique["freepart"].prevented, app_name
        assert by_technique["freepart"].record_intact, app_name


def test_case_stegonet_blocked_by_syscall_restriction(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for by_technique in results.values():
        outcome = by_technique["freepart"].outcomes[-1]
        assert outcome.blocked_by == "syscall-restriction"
        assert outcome.process_role == "agent"
