"""Cluster scaling — sharded serving at 4 nodes vs 1, plus node failure.

Not a paper table: this bench measures the PR 7 cluster subsystem.
Tenants shard by directory and sticky-route to their shard's node, so
four nodes serve four tenants' pipelines genuinely in parallel (per-node
virtual clocks; cluster makespan is the max, not the sum).  Acceptance
bars: >= 2.5x requests/sec at 4 nodes over 1, zero cross-node LDC
dereferences under the affinity-respecting default placement, and full
goodput (every admitted client request eventually answered ok) through
one scripted node failure.

All numbers derive from the virtual clocks, so the full result dict
renders to byte-identical JSON on every run and machine.
"""

import json

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.cluster.bench import run_cluster_benchmark

NODES = 4
TENANTS = 8
REQUESTS = 2


@pytest.fixture(scope="module")
def result():
    return run_cluster_benchmark(
        nodes=NODES,
        tenants=TENANTS,
        requests_per_tenant=REQUESTS,
        pool_size=2,
        partitioner="directory",
        image_size=16,
        failure=True,
    )


def _config(result, name):
    for config in result["configs"]:
        if config["name"] == name:
            return config
    raise AssertionError(f"missing config {name!r}")


def test_cluster_scaling_table(benchmark, result):
    benchmark.pedantic(
        run_cluster_benchmark,
        kwargs=dict(nodes=2, tenants=2, requests_per_tenant=1,
                    pool_size=2, image_size=8, failure=False),
        rounds=1, iterations=1,
    )
    rows = [
        [c["name"], c["requests"], c["ok"], f"{c['goodput']:.3f}",
         f"{c['requests_per_second']:.1f}", c["node_failures"],
         c["shards_replaced"], c["cross_node_derefs"]]
        for c in result["configs"]
    ]
    emit(render_table(
        f"Cluster scaling — {TENANTS} tenants x {REQUESTS} requests",
        ["config", "requests", "ok", "goodput", "req/s",
         "failures", "re-placed", "x-node derefs"],
        rows,
        note=f"scaling {result['scaling']}x; "
             f"manifest {result['workload']['manifest_digest'][:16]}",
    ))


def test_scaling_beats_acceptance_bar(result):
    assert result["scaling"] >= 2.5


def test_every_request_served_at_both_widths(result):
    total = TENANTS * REQUESTS
    for name in ("1 node", f"{NODES} nodes"):
        config = _config(result, name)
        assert config["ok"] == total
        assert config["goodput"] == 1.0


def test_affinity_placement_keeps_derefs_node_local(result):
    for config in result["configs"]:
        assert config["cross_node_derefs"] == 0


def test_goodput_retained_through_node_failure(result):
    chaos = _config(result, f"{NODES} nodes, 1 failure")
    assert chaos["node_failures"] == 1
    assert chaos["shards_replaced"] > 0
    assert result["failure_goodput"] == 1.0


def test_result_json_is_byte_identical_across_reruns(result):
    rerun = run_cluster_benchmark(
        nodes=NODES,
        tenants=TENANTS,
        requests_per_tenant=REQUESTS,
        pool_size=2,
        partitioner="directory",
        image_size=16,
        failure=True,
    )
    assert json.dumps(result, sort_keys=True) == \
        json.dumps(rerun, sort_keys=True)
