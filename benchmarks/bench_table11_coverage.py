"""Table 11 — coverage of the dynamic analysis per framework."""

import pytest

from benchmarks.conftest import emit
from repro.analysis import apps_use_only_covered_apis, major_framework_coverage
from repro.bench.tables import render_table

#: Paper values: API coverage 80.4 / 82.8 / 91.9 / 82.6 %, code coverage
#: 91 / 84 / 76 / 73 %.
PAPER_API_COVERAGE = {
    "opencv": 0.804, "pytorch": 0.828, "caffe": 0.919, "tensorflow": 0.826,
}


def test_table11_dynamic_analysis_coverage(benchmark):
    reports = benchmark.pedantic(
        major_framework_coverage, rounds=1, iterations=1
    )
    rows = [
        [name,
         f"{report.api_coverage * 100:.1f}% ({report.covered}/{report.total})",
         f"{report.code_coverage * 100:.0f}%"]
        for name, report in reports.items()
    ]
    emit(render_table(
        "Table 11 — dynamic-analysis coverage",
        ["framework", "API coverage", "code coverage"],
        rows,
        note="paper: OpenCV 80.4% (424/527), PyTorch 82.8%, Caffe 91.9%, "
             "TensorFlow 82.6%; our API surfaces are smaller but the "
             "coverage band matches",
    ))
    for name, report in reports.items():
        # Same band as the paper: most APIs covered, none fully untested.
        assert 0.75 <= report.api_coverage <= 1.0, name
        assert report.code_coverage >= report.api_coverage


def test_table11_footnote_no_uncovered_api_used(benchmark):
    """Footnote 5: uncovered APIs are not used by any evaluated program."""
    ok, offenders = benchmark.pedantic(
        apps_use_only_covered_apis, rounds=1, iterations=1
    )
    assert ok, offenders
