"""Fig. 4 — average runtime for different numbers of partitions.

The paper splits the data-processing agent into randomly chosen finer
partitions (7,750 samples per k from 5 to 25) and finds a 1.4x runtime
jump from 4 to 5 partitions — caused by the two hot-loop APIs
(cv.rectangle, cv.putText) landing in different partitions and copying
their shared image on every call — followed by a plateau.

We run the same sweep with a seeded subsample per k (configurable via
FIG4_SEEDS) on an OMRChecker workload with paper-scale sheet sizes, so
the hot-loop data movement is substantial relative to the API compute.
"""

import os

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload, execute_app
from repro.apps.omrchecker import OMRCheckerApp
from repro.apps.suite import used_api_objects
from repro.bench.tables import render_series
from repro.core.runtime import FreePart, FreePartConfig
from repro.sim.kernel import SimKernel

SEEDS_PER_K = int(os.environ.get("FIG4_SEEDS", "4"))
PARTITION_COUNTS = (4, 5, 6, 7, 8, 9, 14, 19, 24)
WORKLOAD = Workload(items=1, image_size=16)
SHEET_SIZE = 256  # paper-scale input (a ~1.6 MB sheet after decode)


def run_once(partition_count: int, seed: int) -> float:
    app = OMRCheckerApp()
    kernel = SimKernel()
    config = FreePartConfig(
        partition_count=partition_count,
        partition_seed=seed,
        annotations=tuple(app.annotations),
        # Fig. 4 reproduces the paper's *byte-copy* LDC phenomenon: the
        # runtime jump when the hot API pair splits across partitions
        # comes from repeated cross-agent byte copies.  Zero-copy
        # remapping (this repo's extension) deliberately flattens that
        # jump, so it is ablated here to keep the reproduced curve.
        zero_copy=False,
    )
    gateway = FreePart(kernel=kernel, config=config).deploy(
        used_apis=used_api_objects(app)
    )
    app.setup(kernel, WORKLOAD)
    # Replace the small sheets with paper-scale ones.
    import numpy as np

    rng = np.random.default_rng(7)
    for item in range(WORKLOAD.items):
        sheet = np.zeros((SHEET_SIZE, SHEET_SIZE, 3))
        for x, y, w, h in ((20, 20, 80, 80), (180, 20, 80, 80), (20, 180, 80, 80)):
            sheet[y:y + h, x:x + w] = 255.0
        sheet += rng.normal(scale=2.0, size=sheet.shape)
        kernel.fs.write_file(app.input_path(item), sheet)
    report = execute_app(app, gateway, WORKLOAD, setup=False)
    assert not report.failed, report.error
    return report.virtual_seconds


def average_runtime(partition_count: int) -> float:
    if partition_count == 4:
        return run_once(4, 0)  # the default plan is unique
    samples = [run_once(partition_count, seed) for seed in range(SEEDS_PER_K)]
    return sum(samples) / len(samples)


@pytest.fixture(scope="module")
def series():
    return {k: average_runtime(k) for k in PARTITION_COUNTS}


def test_fig4_partition_sweep(benchmark, series):
    benchmark.pedantic(run_once, args=(5, 0), rounds=1, iterations=1)
    baseline = series[4]
    emit(render_series(
        "Fig. 4 — average runtime vs number of partitions "
        f"(x{SEEDS_PER_K} random partitionings per k)",
        list(series.keys()),
        [f"{series[k]:.4f}s ({series[k] / baseline:.2f}x)" for k in series],
        x_label="partitions",
        y_label="avg runtime (vs 4 partitions)",
    ))
    # The 4->5 jump: splitting the processing agent separates the two
    # hot-loop APIs in a fraction of the random partitionings.
    assert series[5] > 1.10 * baseline
    # Beyond the jump the curve plateaus (paper: flat ~75-77s after 5).
    plateau = [series[k] for k in PARTITION_COUNTS if k >= 5]
    assert max(plateau) < 1.35 * min(plateau)
    # Finer partitioning never gets cheaper than the 4-way default.
    assert min(plateau) > baseline


def test_fig4_hot_pair_split_is_the_cause(benchmark):
    """Pin the mechanism: a plan that splits cv.rectangle from cv.putText
    is measurably slower than one that keeps them together."""
    import random

    from repro.core.hybrid import HybridAnalyzer
    from repro.core.partitioner import apis_split_across, split_processing_plan
    from repro.apps.suite import used_api_objects as used

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    app = OMRCheckerApp()
    categorization = HybridAnalyzer().categorize(used(app))
    together, apart = None, None
    for seed in range(64):
        plan = split_processing_plan(categorization, 5, rng=random.Random(seed))
        split = apis_split_across(plan, "cv2.rectangle", "cv2.putText")
        if split and apart is None:
            apart = seed
        if not split and together is None:
            together = seed
        if together is not None and apart is not None:
            break
    assert together is not None and apart is not None
    assert run_once(5, apart) > 1.10 * run_once(5, together)
