"""Fig. 13 — normalized runtime overhead of FreePart per application.

The paper's headline: average 3.68% overhead across the 23 evaluation
applications, per-app values between ~2.6% and ~5.7%.  The bench runs
every application natively and under FreePart on the same workload and
prints the normalized series.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload
from repro.apps.suite import SAMPLE_IDS
from repro.bench.runner import average_overhead, overhead_for_sample, overhead_sweep
from repro.bench.tables import render_table

WORKLOAD = Workload(items=2, image_size=16)


@pytest.fixture(scope="module")
def rows():
    return overhead_sweep(SAMPLE_IDS, workload=WORKLOAD)


def test_fig13_per_app_overhead(benchmark, rows):
    benchmark.pedantic(
        overhead_for_sample, args=(8,), kwargs={"workload": WORKLOAD},
        rounds=1, iterations=1,
    )
    table = [
        [row.sample_id, row.app_name,
         f"{row.normalized_runtime:.3f}", f"{row.overhead_percent:.2f}%"]
        for row in rows
    ]
    average = average_overhead(rows)
    table.append(["-", "AVERAGE", "-", f"{average:.2f}%"])
    emit(render_table(
        "Fig. 13 — normalized runtime overhead of FreePart",
        ["id", "application", "normalized runtime", "overhead"],
        table,
        note="paper: per-app 2.6%-5.7%, average 3.68%",
    ))
    for row in rows:
        assert 0.0 < row.overhead_percent < 8.0, row.app_name
    assert 1.5 < average < 6.0


def test_fig13_every_app_pays_something(benchmark, rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(row.normalized_runtime > 1.0 for row in rows)
    assert max(row.overhead_percent for row in rows) < 3 * min(
        row.overhead_percent for row in rows
    ) + 5  # no outlier app dominates the average
