"""Section 5.4.2 — the MComix3 information-leak case study."""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload
from repro.apps.mcomix import MComixApp, RECENT_TAG
from repro.attacks.scenarios import ATTACKER_SERVER, run_attack
from repro.bench.tables import render_table

WORKLOAD = Workload(items=3, image_size=16)


@pytest.fixture(scope="module")
def results():
    return {
        technique: run_attack(
            "CVE-2020-10378", technique=technique, app=MComixApp(),
            target_tag=RECENT_TAG, workload=WORKLOAD,
        )
        for technique in ("none", "freepart")
    }


def test_case_mcomix_info_leak(benchmark, results):
    benchmark.pedantic(
        run_attack, args=("CVE-2020-10378",),
        kwargs={"technique": "freepart", "app": MComixApp(),
                "target_tag": RECENT_TAG, "workload": WORKLOAD},
        rounds=1, iterations=1,
    )
    rows = [
        [technique,
         "leaked recent file names" if result.data_exfiltrated
         else "nothing left the machine",
         "/".join(result.blocked_by) or "-"]
        for technique, result in results.items()
    ]
    emit(render_table(
        "Section 5.4.2 — MComix3 recent-file-names leak (CVE-2020-10378)",
        ["technique", "outcome", "blocked by"],
        rows,
        note="the variables live in the target program process and the "
             "visualizing process; the loading-agent exploit can reach "
             "neither, and its filter cannot send data out",
    ))
    assert results["none"].data_exfiltrated
    assert not results["freepart"].data_exfiltrated
    assert results["freepart"].prevented


def test_case_mcomix_recent_state_locations(benchmark):
    """The two copies of the recent list live outside the loading agent:
    one in the host program, one in the GUI (visualizing) domain."""
    from repro.apps.base import execute_app
    from repro.apps.suite import used_api_objects
    from repro.core.runtime import FreePart
    from repro.sim.kernel import SimKernel

    def measure():
        app = MComixApp()
        kernel = SimKernel()
        gateway = FreePart(kernel=kernel).deploy(
            used_apis=used_api_objects(app)
        )
        execute_app(app, gateway, WORKLOAD)
        return kernel, gateway

    kernel, gateway = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert gateway.host.memory.find_buffer(RECENT_TAG) is not None
    assert kernel.gui.recent_files  # the Gtk.RecentManager copy
    loading_agent = gateway.agents[0]
    assert loading_agent.process.memory.find_buffer(RECENT_TAG) is None
