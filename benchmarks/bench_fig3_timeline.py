"""Fig. 3 — timeline of API calls and data protection.

Replays the motivating example's first grading pass under FreePart and
prints the Fig. 3 timeline: the framework state at each step and the
writability of ``template`` and ``OMRCrop`` — template becomes read-only
at the first ``imread``, OMRCrop when processing begins, both stay
read-only afterwards.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.apps.omrchecker import (
    DEFAULT_TEMPLATE,
    MASTER_ANSWERS,
    OMRCROP_TAG,
    TEMPLATE_TAG,
    OMRCheckerApp,
)
from repro.apps.suite import used_api_objects
from repro.bench.tables import render_table
from repro.core.runtime import FreePart, FreePartConfig
from repro.sim.kernel import SimKernel


def replay_timeline():
    app = OMRCheckerApp()
    kernel = SimKernel()
    config = FreePartConfig(annotations=tuple(app.annotations))
    gateway = FreePart(kernel=kernel, config=config).deploy(
        used_apis=used_api_objects(app)
    )
    sheet_pixels = np.zeros((20, 20, 3))
    for x, y, w, h in DEFAULT_TEMPLATE:
        sheet_pixels[y:y + h, x:x + w] = 255.0
    kernel.fs.write_file("/in/sheet.png", sheet_pixels)

    def writable(tag):
        try:
            buffer = gateway.host_buffer(tag)
        except KeyError:
            return "-"
        return ("writable" if gateway.host.memory.is_writable(buffer.buffer_id)
                else "READ-ONLY")

    timeline = []

    def snapshot(event):
        timeline.append([
            event, gateway.machine.state_label,
            writable(TEMPLATE_TAG), writable(OMRCROP_TAG),
        ])

    gateway.host_alloc(TEMPLATE_TAG, [list(b) for b in DEFAULT_TEMPLATE])
    gateway.host_alloc("answers", list(MASTER_ANSWERS))
    snapshot("template defined (host init)")

    sheet = gateway.call("opencv", "imread", "/in/sheet.png")
    gateway.host_alloc(OMRCROP_TAG, sheet)
    snapshot("imread() — data loading")

    blurred = gateway.call("opencv", "GaussianBlur", sheet)
    snapshot("GaussianBlur() — data processing")

    gateway.call("opencv", "morphologyEx", blurred)
    snapshot("morphologyEx() — data processing")

    gateway.call("opencv", "imshow", "result", blurred)
    snapshot("imshow() — visualizing")
    return timeline


def test_fig3_timeline(benchmark):
    timeline = benchmark.pedantic(replay_timeline, rounds=1, iterations=1)
    emit(render_table(
        "Fig. 3 — framework state and data permissions over time",
        ["event", "framework state", "template", "OMRCrop"],
        timeline,
        note="template is read-only from the first data-loading call on; "
             "OMRCrop is writable while being defined and read-only once "
             "processing begins",
    ))
    by_event = {row[0]: row for row in timeline}
    assert by_event["template defined (host init)"][2] == "writable"
    assert by_event["imread() — data loading"][2] == "READ-ONLY"
    assert by_event["imread() — data loading"][3] == "writable"
    assert by_event["GaussianBlur() — data processing"][3] == "READ-ONLY"
    assert by_event["imshow() — visualizing"][2] == "READ-ONLY"
    assert by_event["imshow() — visualizing"][3] == "READ-ONLY"
