"""Table 12 — lazy vs non-lazy data-copy operations per application."""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload
from repro.apps.suite import SAMPLE_IDS, make_app
from repro.bench.runner import run_under
from repro.bench.tables import render_table

WORKLOAD = Workload(items=2, image_size=16)


@pytest.fixture(scope="module")
def reports():
    return {
        sample_id: run_under(make_app(sample_id), "freepart", WORKLOAD)
        for sample_id in SAMPLE_IDS
    }


def test_table12_lazy_copy_statistics(benchmark, reports):
    benchmark.pedantic(
        lambda: run_under(make_app(8), "freepart", WORKLOAD),
        rounds=1, iterations=1,
    )
    rows = []
    total_lazy = 0
    total_nonlazy = 0
    for sample_id, report in reports.items():
        rows.append([
            sample_id, report.app_name, report.lazy_copies,
            report.nonlazy_copies,
            f"{report.lazy_fraction * 100:.1f}%",
        ])
        total_lazy += report.lazy_copies
        total_nonlazy += report.nonlazy_copies
    overall = total_lazy / max(total_lazy + total_nonlazy, 1)
    rows.append(["-", "TOTAL", total_lazy, total_nonlazy,
                 f"{overall * 100:.2f}%"])
    emit(render_table(
        "Table 12 — lazy vs non-lazy data copies (FreePart)",
        ["id", "application", "lazy", "non-lazy", "lazy %"],
        rows,
        note="paper total: 1,170,660 lazy vs 82,789 non-lazy = 95.08% lazy",
    ))
    assert total_lazy > 0
    # Paper: 95.08% of copies are lazy; assert the same dominance band.
    assert overall > 0.90
    # Per-app: almost every application is LDC-dominated.
    dominated = [r for r in reports.values() if r.lazy_fraction > 0.8]
    assert len(dominated) >= len(reports) - 2


def test_zero_copy_lane_reconciles():
    """Large payloads take the zero-copy lane and byte totals still add up.

    The table above uses small images (below the remap threshold), so
    this check runs OMRChecker with paper-scale sheets: dereferences of
    those sheets must remap pages instead of copying bytes, and the
    machine-wide copy-byte total must reconcile *exactly* with the sum
    of the lazy, non-lazy, and zero-copy lanes.
    """
    import numpy as np

    from repro.apps.base import execute_app
    from repro.attacks.scenarios import build_gateway
    from repro.sim.kernel import SimKernel

    app = make_app(8)
    kernel = SimKernel()
    gateway = build_gateway("freepart", kernel, app=app)
    workload = Workload(items=2, image_size=16)
    app.setup(kernel, workload)
    rng = np.random.default_rng(3)
    for item in range(workload.items):
        sheet = rng.normal(size=(128, 128, 3))
        kernel.fs.write_file(app.input_path(item), sheet)
    report = execute_app(app, gateway, workload, setup=False)
    assert not report.failed, report.error

    assert report.zero_copy_transfers > 0
    assert report.zero_copy_bytes > 0
    ipc = kernel.ipc
    # Raises AccountingError naming the off-by lane on a mismatch.
    ipc.reconcile(
        "table12 ldc accounting",
        total_copy_bytes=(
            ipc.lazy_copy_bytes + ipc.nonlazy_copy_bytes + ipc.zero_copy_bytes
        ),
    )
    assert report.data_transferred_bytes == (
        report.ipc_bytes + report.lazy_copy_bytes + report.zero_copy_bytes
    )
    assert kernel.data_transferred_bytes == report.data_transferred_bytes
    # Zero-copy counts toward the lazy fraction: a remapped dereference
    # is a lazy copy that got cheaper, not a new kind of eager copy.
    lazy_like = report.lazy_copies + report.zero_copy_transfers
    expected = lazy_like / (lazy_like + report.nonlazy_copies)
    assert report.lazy_fraction == expected
    assert report.lazy_fraction > 0.5
