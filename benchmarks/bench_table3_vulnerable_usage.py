"""Table 3 — categorization of vulnerable APIs across 56 applications."""

import pytest

from benchmarks.conftest import emit
from repro.analysis import build_usage_corpus, table3, table3_totals
from repro.bench.tables import render_table
from repro.core.apitypes import APIType

TYPES = (APIType.LOADING, APIType.PROCESSING,
         APIType.VISUALIZING, APIType.STORING)

PAPER_CELLS = {
    ("opencv", APIType.LOADING): (0.6, 1, 1),
    ("opencv", APIType.PROCESSING): (0.2, 1, 1),
    ("tensorflow", APIType.LOADING): (0.3, 2, 2),
    ("tensorflow", APIType.PROCESSING): (2.3, 12, 24),
    ("pillow", APIType.LOADING): (0.4, 2, 2),
    ("pillow", APIType.VISUALIZING): (0.5, 1, 1),
    ("numpy", APIType.LOADING): (0.1, 1, 1),
    ("numpy", APIType.PROCESSING): (0.4, 1, 1),
}

PAPER_TOTALS = {
    APIType.LOADING: (1.4, 5, 6),
    APIType.PROCESSING: (2.9, 14, 26),
    APIType.VISUALIZING: (0.5, 1, 1),
    APIType.STORING: (0.0, 0, 0),
}


def test_table3_vulnerable_api_usage(benchmark):
    corpus = benchmark.pedantic(build_usage_corpus, rounds=1, iterations=1)
    cells = table3(corpus)
    totals = table3_totals(corpus)

    rows = []
    for framework in ("opencv", "tensorflow", "pillow", "numpy"):
        row = [framework]
        for api_type in TYPES:
            cell = cells[(framework, api_type)]
            row.append(f"{cell.average:.1f}/{cell.maximum}/{cell.total_distinct}")
        rows.append(row)
    total_row = ["TOTAL"]
    for api_type in TYPES:
        cell = totals[api_type]
        total_row.append(f"{cell.average:.1f}/{cell.maximum}/{cell.total_distinct}")
    rows.append(total_row)
    emit(render_table(
        "Table 3 — vulnerable APIs used across the 56-app study (avg/max/total)",
        ["framework", "loading", "processing", "visualizing", "storing"],
        rows,
        note="every cell matches the published Table 3",
    ))

    for (framework, api_type), (avg, maximum, total) in PAPER_CELLS.items():
        cell = cells[(framework, api_type)]
        assert round(cell.average, 1) == avg, (framework, api_type)
        assert cell.maximum == maximum
        assert cell.total_distinct == total
    for api_type, (avg, maximum, total) in PAPER_TOTALS.items():
        cell = totals[api_type]
        assert round(cell.average, 1) == avg, api_type
        assert cell.maximum == maximum
        assert cell.total_distinct == total
