"""Fig. 7 — the 241 study CVEs categorized by API type and vulnerability."""

import pytest

from benchmarks.conftest import emit
from repro.analysis import (
    build_cve_corpus,
    counts_by_api_type,
    figure7_counts,
    framework_totals,
)
from repro.attacks.cves import VulnType
from repro.bench.tables import render_bars
from repro.core.apitypes import APIType


def test_fig7_cve_categorization(benchmark):
    corpus = benchmark.pedantic(build_cve_corpus, rounds=1, iterations=1)
    counts = figure7_counts(corpus)
    bars = {}
    for api_type in (APIType.LOADING, APIType.PROCESSING,
                     APIType.STORING, APIType.VISUALIZING):
        for vuln_type in VulnType:
            value = counts.get((api_type, vuln_type), 0)
            if value:
                bars[f"{api_type.value} / {vuln_type.value}"] = value
    emit(render_bars("Fig. 7 — CVEs by API type and vulnerability class", bars))

    assert len(corpus) == 241
    assert framework_totals(corpus) == {
        "tensorflow": 172, "pillow": 44, "opencv": 22, "numpy": 3,
    }
    # The legible Fig. 7 bars.
    assert counts[(APIType.LOADING, VulnType.DOS)] == 59
    assert counts[(APIType.PROCESSING, VulnType.DOS)] == 54
    assert counts[(APIType.LOADING, VulnType.INFO_LEAK)] == 11
    assert counts[(APIType.STORING, VulnType.DOS)] == 3


def test_fig7_takeaways(benchmark):
    """The paper's two takeaways: vulnerabilities exist across all four
    types, but loading + processing dominate."""
    corpus = benchmark.pedantic(build_cve_corpus, rounds=1, iterations=1)
    by_type = counts_by_api_type(corpus)
    for api_type in (APIType.LOADING, APIType.PROCESSING,
                     APIType.VISUALIZING, APIType.STORING):
        assert by_type[api_type] >= 1, api_type
    assert by_type[APIType.LOADING] + by_type[APIType.PROCESSING] > 230
