"""Table 5 — the evaluation CVEs and their attack outcomes.

Prints the CVE roster (vulnerability type, carrying API, agent type,
affected samples) and runs every exploit twice — unprotected and under
FreePart — asserting the paper's headline: all attacks succeed without
isolation and all are mitigated with it (no false negatives).
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload
from repro.attacks.cves import TABLE5_CVES
from repro.attacks.scenarios import run_table5_attacks
from repro.bench.tables import render_table

WORKLOAD = Workload(items=2, image_size=16)


@pytest.fixture(scope="module")
def outcomes():
    return {
        "none": run_table5_attacks("none", workload=WORKLOAD),
        "freepart": run_table5_attacks("freepart", workload=WORKLOAD),
    }


def test_table5_cve_roster_and_outcomes(benchmark, outcomes):
    benchmark.pedantic(
        lambda: run_table5_attacks("freepart", workload=WORKLOAD),
        rounds=1, iterations=1,
    )
    unprotected = {r.cve_id: r for r in outcomes["none"]}
    protected = {r.cve_id: r for r in outcomes["freepart"]}
    rows = []
    for record in TABLE5_CVES:
        rows.append([
            record.cve_id,
            record.vuln_type.value,
            f"{record.framework}.{record.api_name}",
            record.api_type.value,
            ",".join(str(s) for s in record.samples),
            "succeeded" if not unprotected[record.cve_id].prevented else "-",
            "mitigated" if protected[record.cve_id].prevented else "MISSED",
        ])
    emit(render_table(
        "Table 5 — evaluation CVEs (16 rows + 2 case-study vulns)",
        ["CVE", "class", "vulnerable API", "agent", "samples",
         "unprotected", "FreePart"],
        rows,
        note="paper: all attacks succeed unprotected; FreePart mitigates "
             "all of them with no false negatives",
    ))
    assert all(not unprotected[r.cve_id].prevented for r in TABLE5_CVES)
    assert all(protected[r.cve_id].prevented for r in TABLE5_CVES)


def test_table5_mitigations_name_a_mechanism(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    known = {"process-isolation", "temporal-permissions", "syscall-restriction"}
    for result in outcomes["freepart"]:
        assert result.blocked_by, result.cve_id
        assert set(result.blocked_by) <= known, result.cve_id
