"""Fig. 12 — required system calls per API and the loading-agent union.

Prints (a) the per-API syscall requirements of the Fig. 10 program's
loading APIs, measured from their dynamic traces, (b) the union the
data-loading agent is allowed (Fig. 12-b), and (c) the finer-grained
sub-partitioned variant of Appendix A.6, where CascadeClassifier::load
loses access to ``ioctl``.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.facial import FacialRecognitionApp
from repro.apps.suite import used_api_objects
from repro.bench.tables import render_table
from repro.core.apitypes import APIType
from repro.core.dynamic_analysis import DynamicAnalyzer
from repro.core.runtime import FreePart, FreePartConfig
from repro.frameworks.registry import get_api

FIG12_APIS = ("CascadeClassifier_load", "VideoCapture", "VideoCapture_read")


@pytest.fixture(scope="module")
def traces():
    analyzer = DynamicAnalyzer()
    return {
        name: analyzer.analyze(get_api("opencv", name))
        for name in FIG12_APIS
    }


def test_fig12_per_api_requirements(benchmark, traces):
    benchmark.pedantic(
        lambda: DynamicAnalyzer().analyze(get_api("opencv", "VideoCapture_read")),
        rounds=1, iterations=1,
    )
    rows = [
        [f"cv2.{name}", ", ".join(sorted(traces[name].syscalls))]
        for name in FIG12_APIS
    ]
    union = sorted(set().union(*(traces[name].syscalls for name in FIG12_APIS)))
    rows.append(["data-loading agent (union)", ", ".join(union)])
    emit(render_table(
        "Fig. 12 — required syscalls (measured from dynamic traces)",
        ["API / agent", "system calls"],
        rows,
        note="paper Fig. 12-b union: openat, close, brk, fstat, read, "
             "lseek, ioctl, mmap, select",
    ))
    # The paper's Fig. 12-a per-API lists.
    assert {"openat", "read", "close", "fstat",
            "lseek"} <= set(traces["CascadeClassifier_load"].syscalls)
    assert "ioctl" not in traces["CascadeClassifier_load"].syscalls
    assert {"openat", "ioctl", "mmap"} <= set(traces["VideoCapture"].syscalls)
    assert {"ioctl", "select"} <= set(traces["VideoCapture_read"].syscalls)
    # And the Fig. 12-b union.
    assert {"openat", "close", "brk", "fstat", "read", "lseek",
            "ioctl", "mmap", "select"} <= set(union)


def test_fig12_sub_partitioned_agents(benchmark):
    """Appendix A.6: splitting the loading agent gives the classifier
    loader a filter without ioctl — the finer-grained restriction."""
    app = FacialRecognitionApp()
    config = FreePartConfig(subpartitions={APIType.LOADING: [
        ["cv2.CascadeClassifier_load"],
        ["cv2.VideoCapture", "cv2.VideoCapture_read"],
    ]})
    freepart = FreePart(config=config)
    gateway = benchmark.pedantic(
        lambda: freepart.deploy(used_apis=used_api_objects(app)),
        rounds=1, iterations=1,
    )
    by_label = {a.partition.label: a for a in gateway.agents.values()}
    rows = [
        [label, len(agent.process.filter.allowed_names),
         "yes" if "ioctl" in agent.process.filter.allowed_names else "no"]
        for label, agent in sorted(by_label.items())
    ]
    emit(render_table(
        "A.6 — sub-partitioned loading agents (tight filters)",
        ["agent", "allowlist size", "ioctl allowed"],
        rows,
    ))
    classifier = by_label["data_loading#0"].process.filter
    capture = by_label["data_loading#1"].process.filter
    assert "ioctl" not in classifier.allowed_names
    assert "ioctl" in capture.allowed_names
    assert len(classifier.allowed_names) < 43  # far below the type pool
