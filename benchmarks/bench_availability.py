"""Availability under fault injection — goodput and recovery latency.

Not a paper table: this bench measures the PR 5 hardening.  The serving
workload runs at 0%, 1%, and 5% per-decision fault rates; the hardened
recovery path (RPC retransmission + dedup, backoff restarts, checkpoint
fallback, circuit breakers) should hold goodput high while paying a
bounded recovery-latency cost, and the whole report must be
byte-identical across reruns for a fixed seed.

All numbers come from the deterministic virtual clock; pytest-benchmark's
wall time tracks the harness only.
"""

import json

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.faults.bench import availability_report

SEED = 3
SCHEDULES = 6


@pytest.fixture(scope="module")
def result():
    return availability_report(seed=SEED, schedules=SCHEDULES,
                               items=2, image_size=16)


def test_availability_table(benchmark, result):
    benchmark.pedantic(
        availability_report,
        kwargs=dict(seed=SEED, schedules=2, fault_rates=(0.0, 0.05),
                    items=1, image_size=8),
        rounds=1, iterations=1,
    )
    rows = [
        [f"{p['fault_rate'] * 100:g}%", p["faults_injected"],
         f"{p['goodput'] * 100:.1f}%", p["restarts"], p["retries"],
         f"{p['p50_recovery_ns'] / 1e6:.3f}",
         f"{p['p99_recovery_ns'] / 1e6:.3f}"]
        for p in result["points"]
    ]
    emit(render_table(
        f"Availability under injected faults — {SCHEDULES} schedules/rate",
        ["fault rate", "faults", "goodput", "restarts", "retries",
         "p50 rec ms", "p99 rec ms"],
        rows,
        note=f"virtual-clock recovery overhead vs fault-free baseline; "
             f"digest {result['digest'][:16]}",
    ))
    emit(json.dumps(result, indent=2))


def test_fault_free_goodput_is_total(result):
    clean = result["points"][0]
    assert clean["fault_rate"] == 0.0
    assert clean["goodput"] == 1.0
    assert clean["faults_injected"] == 0
    assert clean["p99_recovery_ns"] == 0


def test_faulted_rates_actually_inject(result):
    for point in result["points"][1:]:
        assert point["faults_injected"] > 0, point


def test_recovery_keeps_goodput_above_the_floor(result):
    """The hardening's acceptance shape: even at 5% per-decision faults
    the recovery path keeps a large majority of requests answered."""
    for point in result["points"]:
        assert point["goodput"] >= 0.75, point


def test_recovery_latency_is_ordered_and_bounded(result):
    for point in result["points"]:
        assert 0 <= point["p50_recovery_ns"] <= point["p99_recovery_ns"]
    # Recovering from faults costs time: the faulted p99 exceeds the
    # fault-free p99 (which is zero).
    assert result["points"][-1]["p99_recovery_ns"] > 0


def test_invariants_hold_at_every_rate(result):
    assert all(point["invariants_held"] for point in result["points"])


def test_report_is_byte_identical_for_a_fixed_seed(result):
    again = availability_report(seed=SEED, schedules=SCHEDULES,
                                items=2, image_size=16)
    assert again == result
    assert json.dumps(again, sort_keys=True) == \
        json.dumps(result, sort_keys=True)
