"""Fig. 6 — the pipeline pattern of data processing (Study 1).

Checks the study corpus (all 56 programs follow loading → processing →
visualizing/storing, some looping back to loading) and verifies the same
holds *dynamically* for every evaluation application: the observed
framework-state sequence at runtime is pipeline-shaped.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import all_follow_pipeline, build_usage_corpus, follows_pipeline
from repro.apps.base import Workload
from repro.apps.suite import SAMPLE_IDS, make_app, used_api_objects
from repro.bench.tables import render_table
from repro.core.apitypes import APIType

WORKLOAD = Workload(items=2, image_size=16)

_STAGE_OF = {
    APIType.LOADING: "loading",
    APIType.PROCESSING: "processing",
    APIType.VISUALIZING: "visualizing",
    APIType.STORING: "storing",
}


def observed_stage_sequence(sample_id):
    """The de-duplicated state sequence one app's run goes through."""
    from repro.bench.runner import run_under

    app = make_app(sample_id)
    from repro.attacks.scenarios import build_gateway
    from repro.apps.base import execute_app
    from repro.sim.kernel import SimKernel

    kernel = SimKernel()
    gateway = build_gateway("none", kernel, app=app)
    execute_app(app, gateway, WORKLOAD)
    stages = []
    for record in gateway.stats.calls:
        stage = _STAGE_OF[record.api_type]
        if not stages or stages[-1] != stage:
            stages.append(stage)
    return tuple(stages)


def test_fig6_study_corpus_is_pipeline_shaped(benchmark):
    corpus = benchmark.pedantic(build_usage_corpus, rounds=1, iterations=1)
    shapes = {}
    for app in corpus:
        shapes[app.stages] = shapes.get(app.stages, 0) + 1
    emit(render_table(
        "Fig. 6 — pipeline shapes across the 56-program study",
        ["stage sequence", "# programs"],
        [[" -> ".join(shape), count] for shape, count in sorted(shapes.items())],
        note="all 56 follow loading -> processing -> visualizing/storing, "
             "some looping back to loading (video apps)",
    ))
    assert all_follow_pipeline(corpus)


def test_fig6_evaluation_apps_follow_pipeline_dynamically(benchmark):
    sequences = benchmark.pedantic(
        lambda: {sid: observed_stage_sequence(sid) for sid in SAMPLE_IDS},
        rounds=1, iterations=1,
    )
    rows = [[sid, " -> ".join(seq[:6]) + (" ..." if len(seq) > 6 else "")]
            for sid, seq in sequences.items()]
    emit(render_table(
        "Fig. 6 — observed stage sequences of the evaluation apps",
        ["sample", "stage sequence (deduplicated)"],
        rows,
    ))
    for sample_id, sequence in sequences.items():
        assert follows_pipeline(sequence), (sample_id, sequence)
