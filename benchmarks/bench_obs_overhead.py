"""Tracing overhead — enabled spans must not move the virtual clock.

The span tracer only *reads* the clock; every instrumented code path
charges the same virtual time with tracing on or off (split advances are
additive).  The acceptance bar is < 1% overhead on the Table 9 FreePart
workload; the design target — asserted exactly — is zero.
"""

from benchmarks.conftest import emit
from repro.apps.base import Workload, execute_app
from repro.apps.suite import make_app
from repro.attacks.scenarios import build_gateway
from repro.core.runtime import FreePartConfig
from repro.obs.export import render_rollup
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=4, image_size=16)


def run_freepart(traced):
    app = make_app(8)
    kernel = SimKernel()
    if traced:
        kernel.enable_tracing()
    config = FreePartConfig(
        trace=traced, annotations=tuple(app.annotations)
    )
    gateway = build_gateway("freepart", kernel, app=app, config=config)
    report = execute_app(app, gateway, WORKLOAD)
    assert not report.failed, report.error
    return kernel, report


def test_enabled_tracer_adds_zero_virtual_overhead():
    plain_kernel, plain = run_freepart(traced=False)
    traced_kernel, traced = run_freepart(traced=True)

    # The default tracer recorded nothing; the traced run recorded a lot.
    assert plain_kernel.tracer.closed_spans() == []
    spans = traced_kernel.tracer.closed_spans()
    assert len(spans) > 100

    # Identical virtual-clock outcomes, metric by metric.
    assert traced.virtual_seconds == plain.virtual_seconds
    assert traced.ipc_messages == plain.ipc_messages
    assert traced.data_transferred_bytes == plain.data_transferred_bytes

    # The acceptance bar, stated as the bench asserts it: < 1%.
    overhead = traced.virtual_seconds / plain.virtual_seconds - 1.0
    assert abs(overhead) < 0.01
    emit(
        f"tracing overhead: {overhead * 100:.4f}% "
        f"({len(spans)} spans over {traced.virtual_seconds:.4f}s virtual)"
    )
    emit(render_rollup(
        traced_kernel.tracer, traced_kernel.clock.now_ns
    ))
