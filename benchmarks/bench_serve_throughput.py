"""Serving throughput — pooled agents + batched RPC vs runtime-per-request.

Not a paper table: this bench measures the PR 2 serving layer.  The
naive baseline re-pays the full online-phase cost (host + four agent
spawns, ~10 ms of virtual time) for every request; the pipeline server
pays it once and amortizes.  Acceptance bar: pooled + batched sustains
at least 2x the naive requests/sec at 8 concurrent tenants.

All throughput/latency numbers come from the deterministic virtual
clock; pytest-benchmark's wall time tracks the harness only.
"""

import json

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.serve.bench import best_pooled, run_serving_benchmark

TENANTS = 8
REQUESTS = 2


@pytest.fixture(scope="module")
def result():
    return run_serving_benchmark(
        tenants=TENANTS,
        requests_per_tenant=REQUESTS,
        pool_sizes=(1, 4),
        batching_modes=(False, True),
    )


def _config(result, pool_size, batching):
    for config in result["configs"]:
        if config["pool_size"] == pool_size and config["batching"] == batching:
            return config
    raise AssertionError(f"missing config {pool_size}/{batching}")


def test_serve_throughput_table(benchmark, result):
    benchmark.pedantic(
        run_serving_benchmark,
        kwargs=dict(tenants=2, requests_per_tenant=1, pool_sizes=(2,),
                    batching_modes=(True,)),
        rounds=1, iterations=1,
    )
    rows = [
        [c["name"], f"{c['requests_per_second']:.1f}",
         f"{c['p50_latency_ms']:.3f}", f"{c['p99_latency_ms']:.3f}",
         f"{c['speedup_vs_naive']:.2f}x"]
        for c in result["configs"]
    ]
    emit(render_table(
        f"Serving throughput — {TENANTS} tenants x {REQUESTS} requests",
        ["configuration", "req/s", "p50 ms", "p99 ms", "speedup"],
        rows,
        note="virtual-clock time; naive = seed's runtime-per-request",
    ))
    emit(json.dumps(result, indent=2))


def test_pooled_batched_clears_2x_bar(result):
    """The PR's acceptance criterion, verbatim."""
    naive = result["configs"][0]
    assert naive["pool_size"] == 0
    champion = best_pooled(result)
    assert champion["batching"] is True
    assert champion["speedup_vs_naive"] >= 2.0, champion


def test_more_lanes_raise_throughput(result):
    one = _config(result, pool_size=1, batching=True)
    four = _config(result, pool_size=4, batching=True)
    assert four["requests_per_second"] > one["requests_per_second"]


def test_batching_helps_at_fixed_pool(result):
    for pool_size in (1, 4):
        off = _config(result, pool_size, batching=False)
        on = _config(result, pool_size, batching=True)
        assert on["requests_per_second"] >= off["requests_per_second"]
        assert on["ipc_messages_saved"] > 0


def test_every_pooled_config_beats_naive(result):
    for config in result["configs"][1:]:
        assert config["speedup_vs_naive"] > 1.0, config["name"]
