"""Serving throughput — pooled agents + batched RPC vs runtime-per-request.

Not a paper table: this bench measures the PR 2 serving layer.  The
naive baseline re-pays the full online-phase cost (host + four agent
spawns, ~10 ms of virtual time) for every request; the pipeline server
pays it once and amortizes.  Acceptance bar: pooled + batched sustains
at least 2x the naive requests/sec at 8 concurrent tenants.

All throughput/latency numbers come from the deterministic virtual
clock; pytest-benchmark's wall time tracks the harness only.
"""

import json

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.serve.bench import best_pooled, run_serving_benchmark

TENANTS = 8
REQUESTS = 2


@pytest.fixture(scope="module")
def result():
    return run_serving_benchmark(
        tenants=TENANTS,
        requests_per_tenant=REQUESTS,
        pool_sizes=(1, 4),
        batching_modes=(False, True),
    )


def _config(result, pool_size, batching):
    for config in result["configs"]:
        if config["pool_size"] == pool_size and config["batching"] == batching:
            return config
    raise AssertionError(f"missing config {pool_size}/{batching}")


def test_serve_throughput_table(benchmark, result):
    benchmark.pedantic(
        run_serving_benchmark,
        kwargs=dict(tenants=2, requests_per_tenant=1, pool_sizes=(2,),
                    batching_modes=(True,)),
        rounds=1, iterations=1,
    )
    rows = [
        [c["name"], f"{c['requests_per_second']:.1f}",
         f"{c['p50_latency_ms']:.3f}", f"{c['p99_latency_ms']:.3f}",
         f"{c['speedup_vs_naive']:.2f}x"]
        for c in result["configs"]
    ]
    emit(render_table(
        f"Serving throughput — {TENANTS} tenants x {REQUESTS} requests",
        ["configuration", "req/s", "p50 ms", "p99 ms", "speedup"],
        rows,
        note="virtual-clock time; naive = seed's runtime-per-request",
    ))
    emit(json.dumps(result, indent=2))


def test_pooled_batched_clears_2x_bar(result):
    """The PR's acceptance criterion, verbatim."""
    naive = result["configs"][0]
    assert naive["pool_size"] == 0
    champion = best_pooled(result)
    assert champion["batching"] is True
    assert champion["speedup_vs_naive"] >= 2.0, champion


def test_more_lanes_raise_throughput(result):
    one = _config(result, pool_size=1, batching=True)
    four = _config(result, pool_size=4, batching=True)
    assert four["requests_per_second"] > one["requests_per_second"]


def test_batching_helps_at_fixed_pool(result):
    for pool_size in (1, 4):
        off = _config(result, pool_size, batching=False)
        on = _config(result, pool_size, batching=True)
        assert on["requests_per_second"] >= off["requests_per_second"]
        assert on["ipc_messages_saved"] > 0
        # Fused batch framing trims envelope bytes on every batch.
        assert on["fused_bytes_saved"] > 0
        assert off["fused_bytes_saved"] == 0


def test_every_pooled_config_beats_naive(result):
    for config in result["configs"][1:]:
        assert config["speedup_vs_naive"] > 1.0, config["name"]


def test_serve_trace_rollup_partitions_run_time():
    """Trace-rollup mode for the serving path: spans cover pool leases,
    batches, admission waits — and still sum to the end-to-end time."""
    import numpy as np

    from repro.core.runtime import FreePartConfig
    from repro.obs.export import mechanism_rollup, render_rollup
    from repro.serve.bench import standard_pipeline
    from repro.serve.server import PipelineServer
    from repro.sim.kernel import SimKernel

    server = PipelineServer(
        kernel=SimKernel(),
        config=FreePartConfig(trace=True),
        pool_size=2,
        batching=True,
    )
    rng = np.random.default_rng(0)
    for tenant in range(2):
        for request in range(2):
            path = f"/data/tenant-{tenant}/in-{request}.png"
            server.kernel.fs.write_file(path, rng.normal(size=(16, 16)))
            server.submit(
                f"tenant-{tenant}",
                standard_pipeline(path, f"/out/t{tenant}-{request}.png"),
            )
    responses = server.drain()
    assert all(r.ok for r in responses)

    total_ns = server.kernel.clock.now_ns
    rows = mechanism_rollup(server.kernel.tracer, total_ns)
    assert sum(r.self_ns for r in rows) == total_ns
    assert all(r.self_ns >= 0 for r in rows)
    categories = {r.category for r in rows}
    assert {"serve", "batch", "spawn", "ipc"} <= categories
    # admission_wait is out-of-band: exported, but never in the rollup.
    assert "admission" not in categories
    assert any(
        s.category == "admission"
        for s in server.kernel.tracer.closed_spans()
    )
    emit(render_rollup(server.kernel.tracer, total_ns))
    server.shutdown()
