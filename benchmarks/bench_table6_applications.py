"""Table 6 — the 23 evaluation applications and their API-site counts."""

import pytest

from benchmarks.conftest import emit
from repro.apps.suite import SAMPLE_IDS, make_app
from repro.bench.tables import render_table
from repro.core.apitypes import APIType


def test_table6_applications(benchmark):
    apps = benchmark.pedantic(
        lambda: [make_app(sample_id) for sample_id in SAMPLE_IDS],
        rounds=1, iterations=1,
    )
    rows = []
    for app in apps:
        spec = app.spec
        counts = app.schedule_counts()

        def cell(api_type):
            got = counts.get(api_type)
            return f"{got.unique}/{got.total}" if got else "0/0"

        rows.append([
            spec.sample_id, spec.name, spec.main_framework, spec.language,
            spec.sloc,
            cell(APIType.LOADING), cell(APIType.PROCESSING),
            cell(APIType.VISUALIZING), cell(APIType.STORING),
        ])
    emit(render_table(
        "Table 6 — evaluation applications (unique/total call sites)",
        ["id", "name", "framework", "lang", "SLOC",
         "loading", "processing", "visualizing", "storing"],
        rows,
        note="every unique/total cell matches the published table "
             "(rows 10/11's trailing pair placed under storing; see "
             "EXPERIMENTS.md)",
    ))
    # Exact equality with the transcribed table, for every app and type.
    for app in apps:
        spec = app.spec
        counts = app.schedule_counts()
        for api_type, expected in (
            (APIType.LOADING, spec.loading),
            (APIType.PROCESSING, spec.processing),
            (APIType.VISUALIZING, spec.visualizing),
            (APIType.STORING, spec.storing),
        ):
            got = counts.get(api_type)
            unique, total = (got.unique, got.total) if got else (0, 0)
            assert (unique, total) == (expected.unique, expected.total), (
                spec.name, api_type,
            )


def test_table6_headline_observations(benchmark):
    """The paper's reading of Table 6: loading APIs are few but total
    processing sites dwarf unique ones (duplicated optimized variants)."""
    apps = benchmark.pedantic(
        lambda: [make_app(sample_id) for sample_id in SAMPLE_IDS],
        rounds=1, iterations=1,
    )
    duplication = [
        app.spec.processing.total / app.spec.processing.unique
        for app in apps if app.spec.processing.unique
    ]
    assert max(duplication) > 5           # PyTorch-GAN: 1747/41 ≈ 42.6
    assert sum(duplication) / len(duplication) > 2
