"""Open-loop traffic realism — load profiles, autoscaling, brownout.

Not a paper table: this bench measures the PR 10 traffic layer.  Each
named profile (diurnal / burst / flash) is thinned from a seeded rate
curve into a digestable arrival schedule and replayed open-loop against
a fixed 2-lane pool and against the same server with the burn-rate
autoscaler and brownout controller armed.  Acceptance bars, verbatim
from the issue:

* burst + 1 % faults: elastic goodput >= 1.5x fixed at the same p99
  budget;
* clean diurnal day: zero SLO alerts, zero sheds, with both
  controllers armed.

All numbers come from the deterministic virtual clock and the
earliest-free-lane latency replay; pytest-benchmark's wall time tracks
the harness only.
"""

import json

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.serve.loadbench import (
    BUDGET_NS,
    canonical_schedule,
    run_loadgen_benchmark,
    run_profile,
)


@pytest.fixture(scope="module")
def result():
    return run_loadgen_benchmark()


def test_loadgen_profile_table(benchmark, result):
    benchmark.pedantic(
        run_profile, kwargs=dict(name="flash", elastic=True),
        rounds=1, iterations=1,
    )
    rows = [
        [
            name,
            f"{run['offered']}",
            f"{run['goodput']:.3f}",
            f"{run['p99_latency_ms']:.2f}",
            f"{run['shed']}",
            f"{run.get('scale_ups', '-')}",
            f"{run['slo_alerts']}",
        ]
        for name, run in result["runs"].items()
    ]
    emit(render_table(
        f"Open-loop load profiles — goodput at "
        f"{BUDGET_NS / 1e6:.0f} ms budget",
        ["run", "offered", "goodput", "p99 ms", "shed", "ups", "alerts"],
        rows,
        note=f"burst runs inject {result['fault_rate']:.0%} faults; "
             f"retention {result['burst_goodput_retention']:.2f}x",
    ))
    emit(json.dumps(
        {k: v for k, v in result.items() if k != "runs"}, indent=2
    ))


def test_burst_elastic_retains_1_5x_goodput(result):
    """The PR's acceptance criterion, verbatim."""
    assert result["burst_goodput_retention"] >= 1.5, result


def test_clean_diurnal_fires_nothing(result):
    """The other acceptance criterion: a clean day stays silent."""
    diurnal = result["runs"]["diurnal_elastic"]
    assert diurnal["slo_alerts"] == 0
    assert diurnal["shed"] == 0
    assert diurnal["scale_ups"] == 0
    assert diurnal["goodput"] == 1.0


def test_brownout_sheds_lowest_priority_first(result):
    """Gold is sacred; bronze pays for the storm before silver."""
    sheds = result["runs"]["burst_elastic"]["sheds_by_priority"]
    assert "gold" not in sheds
    if sheds:
        assert sheds.get("bronze", 0) >= sheds.get("silver", 0)


def test_schedules_are_seed_deterministic():
    first = canonical_schedule("burst")
    second = canonical_schedule("burst")
    assert first.digest() == second.digest()
    assert canonical_schedule("burst", seed=7).digest() != first.digest()


def test_elastic_pool_returns_toward_baseline(result):
    """Scale-downs fire in the calm tail; the pool does not stay pinned
    at max forever."""
    burst = result["runs"]["burst_elastic"]
    assert burst["scale_ups"] >= 1
    assert burst["pool_size"] < 8
