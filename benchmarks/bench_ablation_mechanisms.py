"""Mechanism ablation — which FreePart mechanism stops which attack.

DESIGN.md calls out three enforcement mechanisms (process isolation,
temporal permissions, syscall restriction) plus the restart support.
This bench disables each one in turn and re-runs the attack that that
mechanism uniquely stops, confirming the paper's security argument is
load-bearing rather than redundant.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload
from repro.apps.drone import DroneApp, SPEED_TAG
from repro.attacks.scenarios import run_attack
from repro.attacks.stegonet import run_stegonet_attack
from repro.apps.medical import CtViewerApp
from repro.bench.tables import render_table
from repro.core.runtime import FreePartConfig

WORKLOAD = Workload(items=2, image_size=16)


def corruption_with(config):
    """Template corruption via imread (stopped by process isolation)."""
    return run_attack("CVE-2017-12597", "freepart", sample_id=8,
                      workload=WORKLOAD, config=config)


def same_agent_corruption_with(config):
    """Corrupting an earlier *loading-agent* buffer from a later
    loading-agent exploit — the case only temporal permissions stop
    (Section 5.3: 'the attack may corrupt previous inputs').

    The previous input must belong to a *closed* loading window, so the
    scenario forces a loading -> processing transition (which flips the
    loading-state buffers read-only, Fig. 3) before delivering the
    exploit back into the loading agent.
    """
    import numpy as np

    from repro.apps.suite import make_app, used_api_objects
    from repro.attacks.exploits import MemoryCorruptionExploit
    from repro.attacks.payloads import CraftedInput, benign_image
    from repro.attacks.scenarios import build_gateway
    from repro.apps.base import execute_app
    from repro.errors import FrameworkCrash
    from repro.sim.kernel import SimKernel

    app = make_app(8)
    kernel = SimKernel()
    gateway = build_gateway("freepart", kernel, app=app, config=config)
    app.setup(kernel, WORKLOAD)
    execute_app(app, gateway, WORKLOAD, setup=False)

    previous_input = gateway.call("opencv", "imread", app.input_path(0))
    gateway.call("opencv", "GaussianBlur", previous_input)  # close the window
    crafted = CraftedInput(
        "CVE-2017-12604",
        MemoryCorruptionExploit("cv2.imread", new_value="corrupted"),
        benign_image(),
    )
    kernel.fs.write_file("/attack/stale.png", crafted)
    try:
        gateway.call("opencv", "imread", "/attack/stale.png")
    except FrameworkCrash:
        pass
    outcome = crafted.last_outcome

    class Verdict:
        prevented = not outcome.succeeded
        blocked_by = (outcome.blocked_by,) if outcome.blocked_by else ()

    return Verdict()


def code_rewrite_with(config):
    """mprotect-based code rewriting (stopped by syscall restriction)."""
    return run_attack("CVE-2017-17760", "freepart", sample_id=8,
                      workload=WORKLOAD, config=config)


def stegonet_with(config):
    return run_stegonet_attack(CtViewerApp(), "freepart",
                               workload=WORKLOAD, config=config)


def full_config(**overrides):
    from repro.apps.omrchecker import OMRCheckerApp

    annotations = tuple(OMRCheckerApp().annotations)
    return FreePartConfig(annotations=annotations, **overrides)


def test_ablation_matrix(benchmark):
    benchmark.pedantic(
        corruption_with, args=(full_config(),), rounds=1, iterations=1
    )
    rows = []

    # 1. Temporal permissions: same-agent corruption of a previous
    #    input buffer is only blocked while enforcement is on.
    on = same_agent_corruption_with(full_config())
    off = same_agent_corruption_with(full_config(enforce_permissions=False))
    rows.append(["temporal permissions", "same-agent stale-buffer write",
                 "blocked" if on.prevented else "MISSED",
                 "succeeds" if not off.prevented else "still blocked"])
    assert on.prevented
    assert not off.prevented

    # 2. Syscall restriction: mprotect-based code rewriting and the
    #    StegoNet fork bomb only die under the filters.
    on = code_rewrite_with(full_config())
    off = code_rewrite_with(full_config(restrict_syscalls=False))
    rows.append(["syscall restriction", "mprotect code rewrite",
                 "blocked" if on.prevented else "MISSED",
                 "succeeds" if not off.prevented else "still blocked"])
    assert on.prevented and not off.prevented

    on_sn = stegonet_with(None)
    off_sn = stegonet_with(FreePartConfig(restrict_syscalls=False))
    rows.append(["syscall restriction", "StegoNet fork bomb",
                 "blocked" if on_sn.prevented else "MISSED",
                 "succeeds" if off_sn.fork_bomb_detonated else "still blocked"])
    assert on_sn.prevented and off_sn.fork_bomb_detonated

    # 3. Process isolation: cross-process template corruption stays
    #    blocked even with the other two mechanisms off.
    minimal = full_config(enforce_permissions=False, restrict_syscalls=False)
    isolated_only = corruption_with(minimal)
    rows.append(["process isolation", "host-variable corruption",
                 "blocked (isolation alone suffices)"
                 if isolated_only.prevented else "MISSED", "-"])
    assert isolated_only.prevented

    emit(render_table(
        "Ablation — one mechanism off at a time",
        ["mechanism", "attack it uniquely stops", "mechanism ON",
         "mechanism OFF"],
        rows,
        note="each enforcement mechanism is load-bearing for a distinct "
             "attack class; process isolation alone already protects "
             "host-resident critical data",
    ))


def test_ablation_restart_availability(benchmark):
    """Restart support (Section 4.4.2) trades nothing for availability:
    with it the drone survives a poisoned frame; without it the loading
    agent stays down and frames stop flowing."""

    def survived_frames(restart: bool) -> int:
        from repro.apps.base import execute_app
        from repro.apps.suite import used_api_objects
        from repro.attacks.exploits import DosExploit
        from repro.attacks.payloads import CraftedInput, benign_image
        from repro.core.runtime import FreePart
        from repro.sim.kernel import SimKernel

        app = DroneApp()
        kernel = SimKernel()
        config = FreePartConfig(restart_agents=restart)
        gateway = FreePart(kernel=kernel, config=config).deploy(
            used_apis=used_api_objects(app)
        )
        workload = Workload(items=6)
        app.setup(kernel, workload)
        crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
        kernel.fs.write_file(app.frame_path(2), crafted)
        report = execute_app(app, gateway, workload, setup=False)
        assert not report.failed
        return report.result.items_processed

    with_restart = benchmark.pedantic(
        survived_frames, args=(True,), rounds=1, iterations=1
    )
    without_restart = survived_frames(False)
    emit(render_table(
        "Ablation — agent restart (availability)",
        ["configuration", "frames processed of 6"],
        [["restart on", with_restart], ["restart off", without_restart]],
        note="the paper: users prioritizing security over availability "
             "can opt out of restarting",
    ))
    assert with_restart == 5      # only the poisoned frame is lost
    assert without_restart == 2   # everything after the crash is lost
