"""Static linter throughput — files/sec and findings over the corpus.

Runs ``repro.staticcheck`` over the repo's own host programs
(``examples/`` + ``src/repro/apps/``) and the purpose-built violation
fixtures, reporting files scanned per second and the rule-findings
histogram.  Later PRs track linter speed here the way the Fig. 13
benches track runtime overhead.
"""

import os

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.staticcheck import run_check
from repro.staticcheck.checker import iter_python_files

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS = [
    os.path.join(REPO, "examples"),
    os.path.join(REPO, "src", "repro", "apps"),
    os.path.join(REPO, "tests", "fixtures", "staticcheck"),
]


@pytest.mark.benchmark(group="staticcheck")
def test_bench_staticcheck_throughput(benchmark):
    file_count = len(iter_python_files(CORPUS))

    result = benchmark.pedantic(
        lambda: run_check(CORPUS), rounds=1, iterations=1
    )

    seconds = benchmark.stats.stats.mean
    files_per_second = file_count / seconds if seconds else float("inf")
    rows = [[rule, count] for rule, count in sorted(result.by_rule().items())]
    rows.append(["files checked", result.files_checked])
    rows.append(["files/sec", f"{files_per_second:,.0f}"])
    rows.append(["errors", result.errors])
    rows.append(["warnings", result.warnings])
    emit(render_table(
        "Static partition linter — corpus scan",
        ["metric", "value"], rows,
    ))

    # The corpus includes every violating fixture: all six rule classes
    # must surface, and the scan must cover the full file set.
    assert result.files_checked == file_count
    by_rule = result.by_rule()
    for rule in ("frozen-write", "phase-order", "syscall-pool",
                 "wrong-partition-deref", "dead-api", "uncategorizable",
                 "tenant-ref-leak"):
        assert by_rule.get(rule, 0) >= 1, rule
