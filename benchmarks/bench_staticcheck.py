"""Static linter throughput — files/sec and findings over the corpus.

Runs ``repro.staticcheck`` over the repo's own host programs
(``examples/`` + ``src/repro/apps/``) and the purpose-built violation
fixtures, reporting files scanned per second and the rule-findings
histogram.  Later PRs track linter speed here the way the Fig. 13
benches track runtime overhead.
"""

import os

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.staticcheck import run_check
from repro.staticcheck.checker import iter_python_files

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS = [
    os.path.join(REPO, "examples"),
    os.path.join(REPO, "src", "repro", "apps"),
    os.path.join(REPO, "tests", "fixtures", "staticcheck"),
]


@pytest.mark.benchmark(group="staticcheck")
def test_bench_staticcheck_throughput(benchmark):
    file_count = len(iter_python_files(CORPUS))

    result = benchmark.pedantic(
        lambda: run_check(CORPUS), rounds=1, iterations=1
    )

    seconds = benchmark.stats.stats.mean
    files_per_second = file_count / seconds if seconds else float("inf")
    rows = [[rule, count] for rule, count in sorted(result.by_rule().items())]
    rows.append(["files checked", result.files_checked])
    rows.append(["files/sec", f"{files_per_second:,.0f}"])
    rows.append(["errors", result.errors])
    rows.append(["warnings", result.warnings])
    emit(render_table(
        "Static partition linter — corpus scan",
        ["metric", "value"], rows,
    ))

    # The corpus includes every violating fixture: every rule class
    # must surface, and the scan must cover the full file set.
    assert result.files_checked == file_count
    by_rule = result.by_rule()
    for rule in ("frozen-write", "phase-order", "syscall-pool",
                 "wrong-partition-deref", "dead-api", "uncategorizable",
                 "tenant-ref-leak", "cross-partition-leak",
                 "tenant-taint-escape", "frozen-alias-write"):
        assert by_rule.get(rule, 0) >= 1, rule


@pytest.mark.benchmark(group="staticcheck")
def test_bench_dataflow_pass(benchmark):
    """The interprocedural flow pass alone, isolated from parsing and
    the syntactic rules — what the taint walker costs per file."""
    from repro.staticcheck.callgraph import build_module
    from repro.staticcheck.dataflow import DataflowAnalysis
    from repro.staticcheck.inference import PartitionInferencer

    summaries = []
    for path in iter_python_files(CORPUS):
        summary = build_module(path)
        if summary.parse_error is None:
            summaries.append(summary)

    def flow_pass():
        reports = []
        for summary in summaries:
            inferencer = PartitionInferencer(summary)
            reports.append(DataflowAnalysis(summary, inferencer).run())
        return reports

    reports = benchmark.pedantic(flow_pass, rounds=3, iterations=1)

    seconds = benchmark.stats.stats.mean
    leaks = sum(len(r.leaks) for r in reports)
    escapes = sum(len(r.escapes) for r in reports)
    alias_writes = sum(len(r.alias_writes) for r in reports)
    emit(render_table(
        "Interprocedural dataflow — flow pass only",
        ["metric", "value"],
        [
            ["modules analyzed", len(reports)],
            ["modules/sec", f"{len(reports) / seconds:,.0f}" if seconds
             else "inf"],
            ["flow pass ms", f"{seconds * 1e3:,.2f}"],
            ["leak hits", leaks],
            ["escape hits", escapes],
            ["alias-write hits", alias_writes],
        ],
    ))

    assert len(reports) == len(summaries)
    assert leaks >= 1 and escapes >= 1 and alias_writes >= 1
