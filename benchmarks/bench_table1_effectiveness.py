"""Table 1 — effectiveness of existing techniques and FreePart.

Runs the five motivating-example attacks (two memory corruptions, the
code rewrite, two DoS) against OMRChecker under every technique and
prints the prevention matrix, the number of processes, and the isolated
vulnerable APIs — the qualitative content of Table 1 / Table 8.
"""

import pytest

from benchmarks.conftest import emit
from repro.attacks.scenarios import MOTIVATING_ATTACKS, run_motivating_example
from repro.bench.tables import render_table

TECHNIQUES = (
    "none", "memory_based", "code_api", "code_api_data",
    "lib_entire", "lib_individual", "freepart",
)

#: Which of the five attacks each technique prevents in the paper's
#: qualitative account (Section 3.1 / Table 8).
PAPER_EXPECTATIONS = {
    "none": set(),
    "memory_based": {"mem-write-template"},
    "code_api": {"mem-write-omrcrop", "dos-imread", "dos-imshow"},
    "code_api_data": {"mem-write-template", "mem-write-omrcrop",
                      "dos-imread", "dos-imshow"},
    "lib_entire": {"mem-write-template", "dos-imread", "dos-imshow"},
    "lib_individual": {"mem-write-template", "mem-write-omrcrop",
                       "code-rewrite", "dos-imread", "dos-imshow"},
    "freepart": {"mem-write-template", "mem-write-omrcrop",
                 "code-rewrite", "dos-imread", "dos-imshow"},
}


@pytest.fixture(scope="module")
def verdicts():
    return {technique: run_motivating_example(technique)
            for technique in TECHNIQUES}


def test_table1_effectiveness(benchmark, verdicts):
    benchmark.pedantic(
        run_motivating_example, args=("freepart",), rounds=1, iterations=1
    )
    labels = [label for label, *_ in MOTIVATING_ATTACKS]
    rows = []
    for technique in TECHNIQUES:
        verdict = verdicts[technique]
        marks = ["prevented" if verdict.attacks[label].prevented else "FAILED"
                 for label in labels]
        rows.append([technique] + marks)
    emit(render_table(
        "Table 1 — attacks prevented on the motivating example",
        ["technique"] + labels,
        rows,
        note="paper marks: FreePart & individual-API isolation prevent all; "
             "memory-based only stops the template write; code-based leaves "
             "template co-located; entire-library leaves shared OMRCrop "
             "writable and cannot restrict syscalls (footnote 3)",
    ))
    for technique, expected in PAPER_EXPECTATIONS.items():
        got = {
            label for label in verdicts[technique].attacks
            if verdicts[technique].attacks[label].prevented
        }
        assert got == expected, technique


def test_table1_process_counts(benchmark, verdicts):
    """Table 1's '# of processes' column: 1 / 1 / 3 / 6 / 2 / per-API / 5."""
    from repro.apps.base import Workload, execute_app
    from repro.apps.suite import make_app
    from repro.attacks.scenarios import build_gateway
    from repro.sim.kernel import SimKernel

    def measure():
        counts = {}
        for technique in TECHNIQUES:
            app = make_app(8)
            kernel = SimKernel()
            gateway = build_gateway(technique, kernel, app=app)
            execute_app(app, gateway, Workload(items=1, image_size=16))
            counts[technique] = gateway.process_count
        return counts

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(render_table(
        "Table 1 — processes per technique",
        ["technique", "processes"],
        sorted(counts.items()),
    ))
    assert counts["none"] == 1
    assert counts["memory_based"] == 1
    assert counts["lib_entire"] == 2
    assert counts["freepart"] == 5          # host + 4 agents (paper: 5)
    assert counts["code_api"] <= 4
    assert counts["lib_individual"] > 20    # one process per used API
