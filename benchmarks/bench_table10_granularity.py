"""Table 10 — API isolation granularity (APIs per process)."""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload, execute_app
from repro.apps.suite import make_app
from repro.attacks.scenarios import build_gateway
from repro.bench.tables import render_table
from repro.core.apitypes import APIType
from repro.core.hybrid import HybridAnalyzer
from repro.core.partitioner import four_way_plan, granularity_stats
from repro.sim.kernel import SimKernel


def freepart_partition_sizes():
    """APIs per FreePart agent over the motivating-example universe."""
    from benchmarks.bench_table2_categorization import motivating_example_universe

    categorization = HybridAnalyzer().categorize(motivating_example_universe())
    plan = four_way_plan(categorization)
    return plan, categorization


def test_table10_freepart_granularity(benchmark):
    plan, categorization = benchmark.pedantic(
        freepart_partition_sizes, rounds=1, iterations=1
    )
    sizes = {p.api_type.value: len(p) for p in plan.partitions}
    stats = granularity_stats(plan)
    emit(render_table(
        "Table 10 — FreePart agents over the 86-API example universe",
        ["partition", "# APIs"],
        sorted(sizes.items()),
        note=f"min={stats['min']} max={stats['max']} "
             f"stddev={stats['stddev']:.1f} processes={stats['processes']}; "
             "paper row: 3 / 75 / 6 / 2 across 5 processes",
    ))
    assert sizes["data_loading"] == 3
    assert sizes["data_processing"] == 75
    assert sizes["visualizing"] == 6
    assert sizes["storing"] == 2
    assert stats["processes"] == 5


def test_table10_technique_granularity(benchmark):
    """APIs-per-process extremes across the techniques (Table 10 rows)."""

    def run(technique):
        app = make_app(8)
        kernel = SimKernel()
        gateway = build_gateway(technique, kernel, app=app)
        execute_app(app, gateway, Workload(items=2, image_size=16))
        return gateway

    gateways = benchmark.pedantic(
        lambda: {t: run(t) for t in
                 ("memory_based", "lib_entire", "lib_individual")},
        rounds=1, iterations=1,
    )
    unique_apis = len(gateways["lib_entire"].stats.unique_qualnames())
    rows = [
        ["memory_based", "1 process holds every API",
         gateways["memory_based"].process_count],
        ["lib_entire", f"1 library process holds all {unique_apis} APIs",
         gateways["lib_entire"].process_count],
        ["lib_individual", "1 API per process",
         gateways["lib_individual"].process_count],
    ]
    emit(render_table(
        "Table 10 — granularity extremes",
        ["technique", "granularity", "processes"],
        rows,
    ))
    # Individual isolation: one process per distinct API (+ host).
    assert gateways["lib_individual"].process_count == unique_apis + 1
    assert gateways["lib_entire"].process_count == 2
    assert gateways["memory_based"].process_count == 1
