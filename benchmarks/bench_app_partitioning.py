"""Appendix A.2 — why hook the framework instead of the application.

Two comparisons:

1. **Structural** (A.2.1, Figs. 16–17): partitioning real application
   source requires duplicating exception structure into every partition
   and wrapping loop-resident partitions in service loops — shown by
   running the AST transformer over the paper's own snippets.
2. **Performance** (A.2.2): application-based partitioning ends up
   duplicating data across processes and paying per-access IPC (we use
   the code-based API+data baseline as its stand-in), while framework
   hooking keeps one copy per agent and passes references.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.app_partitioning import (
    FIG16_SOURCE,
    FIG17_SOURCE,
    partition_source,
)
from repro.apps.base import Workload, execute_app
from repro.apps.suite import make_app
from repro.attacks.scenarios import build_gateway
from repro.bench.tables import render_table
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=3, image_size=16)


def test_a21_structural_challenges(benchmark):
    fig16 = benchmark.pedantic(
        partition_source, args=(FIG16_SOURCE, {"show": "partition2"}),
        rounds=1, iterations=1,
    )
    fig17 = partition_source(
        FIG17_SOURCE, {"show": "partition4", "saveOrShowStacks": "partition2"}
    )
    rows = [
        ["Fig. 16 (try/except)", len(fig16.partitions),
         fig16.duplicated_try_blocks, fig16.service_loops, fig16.ipc_sites],
        ["Fig. 17 (loop + call chain)", len(fig17.partitions),
         fig17.duplicated_try_blocks, fig17.service_loops, fig17.ipc_sites],
    ]
    emit(render_table(
        "A.2.1 — application-based partitioning of the paper's snippets",
        ["snippet", "partitions", "try/except duplicated",
         "service loops added", "IPC stubs"],
        rows,
        note="every partition needs the enclosing exception structure "
             "copied in, and loop-resident partitions must stay alive "
             "in a while-True service loop",
    ))
    assert fig16.duplicated_try_blocks == 1
    assert fig17.service_loops == 2
    emit("--- generated partition2 for Fig. 16 ---\n"
         + fig16.source_of("partition2"))


def test_a22_framework_hooking_beats_app_partitioning(benchmark):
    """A.2.2: 'the framework instrumentation approach results in less
    overhead ... [app instrumentation] causes more inter-process data
    transfers between the processes.'"""

    def run(technique):
        app = make_app(8)
        kernel = SimKernel()
        gateway = build_gateway(technique, kernel, app=app)
        report = execute_app(app, gateway, WORKLOAD)
        assert not report.failed, report.error
        return report

    freepart = benchmark.pedantic(run, args=("freepart",),
                                  rounds=1, iterations=1)
    app_style = run("code_api_data")  # the app-partitioning stand-in
    rows = [
        ["framework hooking (FreePart)", freepart.ipc_messages,
         f"{freepart.data_transferred_bytes / 1e6:.2f}",
         f"{freepart.virtual_seconds:.4f}"],
        ["application partitioning (API+data)", app_style.ipc_messages,
         f"{app_style.data_transferred_bytes / 1e6:.2f}",
         f"{app_style.virtual_seconds:.4f}"],
    ]
    emit(render_table(
        "A.2.2 — framework hooking vs application partitioning",
        ["approach", "#IPC", "data (MB)", "time (s)"],
        rows,
    ))
    assert freepart.data_transferred_bytes < app_style.data_transferred_bytes
    assert freepart.virtual_seconds < app_style.virtual_seconds
