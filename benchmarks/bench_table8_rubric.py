"""Table 8 (Appendix A.1.1) — the security-level rubric, evaluated.

The appendix grades each technique against concrete yes/no criteria.
This bench evaluates every rubric line mechanically from the simulated
state after the motivating-example attacks.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload, execute_app
from repro.apps.omrchecker import OMRCROP_TAG, TEMPLATE_TAG, OMRCheckerApp
from repro.apps.suite import make_app
from repro.attacks.scenarios import build_gateway, run_motivating_example
from repro.bench.tables import render_table
from repro.sim.kernel import SimKernel

TECHNIQUES = ("memory_based", "code_api", "lib_entire",
              "lib_individual", "freepart")


def rubric_for(technique):
    """Evaluate the Table 8 lines for one technique."""
    verdict = run_motivating_example(technique)

    app = make_app(8)
    kernel = SimKernel()
    gateway = build_gateway(technique, kernel, app=app)
    execute_app(app, gateway, Workload(items=1, image_size=16))

    def shared_with_apis(tag):
        """Is the variable mapped where framework APIs execute?"""
        if technique in ("memory_based",):
            return True  # single process: everything is shared
        try:
            buffer_home = gateway.host.memory.find_buffer(tag)
        except Exception:
            buffer_home = None
        if buffer_home is not None:
            return technique == "none"
        return True  # lives in a worker/library process

    return {
        "memory corruption on OMRCrop mitigated":
            verdict.prevented("mem-write-omrcrop"),
        "memory corruption on template mitigated":
            verdict.prevented("mem-write-template"),
        "template memory not shared with APIs":
            not shared_with_apis(TEMPLATE_TAG),
        "OMRCrop memory not shared with APIs":
            not shared_with_apis(OMRCROP_TAG),
        "code-rewriting attack mitigated":
            verdict.prevented("code-rewrite"),
        "vulnerable imread isolated":
            verdict.prevented("dos-imread"),
        "vulnerable imshow isolated":
            verdict.prevented("dos-imshow"),
        "APIs distributed across 5+ processes":
            gateway.process_count >= 5,
    }


@pytest.fixture(scope="module")
def rubric():
    return {technique: rubric_for(technique) for technique in TECHNIQUES}


def test_table8_rubric(benchmark, rubric):
    benchmark.pedantic(rubric_for, args=("freepart",), rounds=1, iterations=1)
    criteria = list(next(iter(rubric.values())))
    rows = [
        [criterion] + ["yes" if rubric[t][criterion] else "-"
                       for t in TECHNIQUES]
        for criterion in criteria
    ]
    emit(render_table(
        "Table 8 — security rubric per technique",
        ["criterion"] + list(TECHNIQUES),
        rows,
        note="FreePart and individual-API isolation satisfy every "
             "attack-mitigation line; only they distribute APIs across "
             "5+ processes (FreePart) or per-API sandboxes",
    ))
    freepart = rubric["freepart"]
    assert all(freepart[c] for c in criteria)
    assert sum(rubric["memory_based"].values()) < sum(freepart.values())
    assert not rubric["code_api"]["memory corruption on template mitigated"]
    assert not rubric["lib_entire"]["memory corruption on OMRCrop mitigated"]
