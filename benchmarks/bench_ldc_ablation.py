"""Section 5.2 ablation — FreePart without lazy data copy.

The paper measures 3.68% average overhead with LDC and 9.7% without it,
with ~95% of copies being lazy.  The bench runs a representative subset
of the applications in both configurations.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload
from repro.bench.runner import average_overhead, overhead_sweep
from repro.bench.tables import render_table
from repro.core.runtime import FreePartConfig

WORKLOAD = Workload(items=2, image_size=16)
SAMPLES = (1, 2, 5, 8, 12, 15, 16, 19, 20, 23)


@pytest.fixture(scope="module")
def sweeps():
    return {
        "with LDC": overhead_sweep(SAMPLES, workload=WORKLOAD),
        "without LDC": overhead_sweep(
            SAMPLES, workload=WORKLOAD, config=FreePartConfig(ldc=False)
        ),
    }


def test_ldc_ablation(benchmark, sweeps):
    benchmark.pedantic(
        overhead_sweep, args=((8,),),
        kwargs={"workload": WORKLOAD, "config": FreePartConfig(ldc=False)},
        rounds=1, iterations=1,
    )
    with_ldc = {row.sample_id: row for row in sweeps["with LDC"]}
    without_ldc = {row.sample_id: row for row in sweeps["without LDC"]}
    rows = [
        [sample_id, with_ldc[sample_id].app_name,
         f"{with_ldc[sample_id].overhead_percent:.2f}%",
         f"{without_ldc[sample_id].overhead_percent:.2f}%"]
        for sample_id in SAMPLES
    ]
    avg_with = average_overhead(sweeps["with LDC"])
    avg_without = average_overhead(sweeps["without LDC"])
    rows.append(["-", "AVERAGE", f"{avg_with:.2f}%", f"{avg_without:.2f}%"])
    emit(render_table(
        "Section 5.2 — overhead with vs without lazy data copy",
        ["id", "application", "with LDC", "without LDC"],
        rows,
        note="paper: 3.68% with LDC vs 9.7% without",
    ))
    assert avg_without > 1.7 * avg_with
    for sample_id in SAMPLES:
        assert (without_ldc[sample_id].overhead_percent
                > with_ldc[sample_id].overhead_percent), sample_id
