"""Table 2 — framework APIs categorized for the motivating example.

The paper categorizes the 86 APIs of OMRChecker's framework universe
(OpenCV plus the pandas/json/matplotlib companions) into 3 loading, 75
processing, 6 visualizing, and 2 storing APIs.  The bench reconstructs
that universe deterministically, runs the hybrid analysis over it, and
checks the per-type counts.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.core.apitypes import APIType
from repro.core.hybrid import HybridAnalyzer
from repro.frameworks.registry import get_api, get_framework


def motivating_example_universe():
    """The 86 APIs the paper's example categorizes (Table 2)."""
    apis = [
        get_api("opencv", "imread"),
        get_api("pandas", "read_csv"),
        get_api("json", "load"),
    ]
    opencv = get_framework("opencv")
    processing = [
        api for api in opencv.apis_of_type(APIType.PROCESSING)
        if api.spec.has_test_case and not api.spec.neutral
    ]
    apis.extend(processing[:75])
    apis.extend([
        get_api("opencv", "imshow"),
        get_api("opencv", "moveWindow"),
        get_api("opencv", "namedWindow"),
        get_api("opencv", "setWindowTitle"),
        get_api("opencv", "waitKey"),
        get_api("matplotlib", "show"),
    ])
    apis.extend([
        get_api("opencv", "imwrite"),
        get_api("matplotlib", "savefig"),
    ])
    return apis


def test_table2_api_categorization(benchmark):
    universe = motivating_example_universe()
    categorization = benchmark.pedantic(
        lambda: HybridAnalyzer().categorize(universe), rounds=1, iterations=1
    )
    counts = categorization.counts_by_type()
    examples = {
        api_type: ", ".join(
            entry.qualname for entry in categorization.of_type(api_type)[:3]
        )
        for api_type in (APIType.LOADING, APIType.PROCESSING,
                         APIType.VISUALIZING, APIType.STORING)
    }
    emit(render_table(
        "Table 2 — APIs categorized for the motivating example",
        ["type", "# APIs", "examples"],
        [
            ["Data Loading", counts[APIType.LOADING],
             examples[APIType.LOADING]],
            ["Data Processing", counts[APIType.PROCESSING],
             examples[APIType.PROCESSING]],
            ["Visualizing", counts[APIType.VISUALIZING],
             examples[APIType.VISUALIZING]],
            ["Storing", counts[APIType.STORING], examples[APIType.STORING]],
        ],
        note="paper: 3 / 75 / 6 / 2 (86 total); the pandas/json/plt entries "
             "required the hybrid analysis (dynamic fallback)",
    ))
    assert len(universe) == 86
    assert counts[APIType.LOADING] == 3
    assert counts[APIType.PROCESSING] == 75
    assert counts[APIType.VISUALIZING] == 6
    assert counts[APIType.STORING] == 2
    # The footnoted APIs were categorized dynamically.
    for qualname in ("pd.read_csv", "json.load", "plt.show", "plt.savefig"):
        assert categorization.get(qualname).method == "dynamic", qualname
    assert categorization.accuracy() == 1.0
