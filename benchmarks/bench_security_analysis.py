"""Section 5.3 — data exfiltration and data corruption analysis.

Reproduces the two attack scenarios of the security analysis: a powerful
attacker who knows the exact location of sensitive data tries to (a)
ship it to an attacker-controlled server and (b) overwrite it, through a
loading-agent and a processing-agent vulnerability.  The analysis
asserts the paper's two findings: the sensitive data is not reachable
from the compromised agents, and even when an agent holds data, its
filter has no syscall that can write it out.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload
from repro.apps.facial import FacialRecognitionApp, USERPROFILE_TAG
from repro.attacks.scenarios import ATTACKER_SERVER, run_attack
from repro.bench.tables import render_table

WORKLOAD = Workload(items=2, image_size=16)

SCENARIOS = (
    # (label, cve, technique-independent target)
    ("exfiltrate user profiles via loading vuln", "CVE-2020-10378",
     USERPROFILE_TAG),
    ("corrupt user profiles via loading vuln", "CVE-2017-12606",
     USERPROFILE_TAG),
    ("corrupt user profiles via processing vuln", "CVE-2019-5063",
     USERPROFILE_TAG),
)


def run_scenario(cve_id, target, technique):
    return run_attack(
        cve_id, technique=technique, app=FacialRecognitionApp(),
        target_tag=target, workload=Workload(items=2, image_size=16,
                                             keys=""),
    )


@pytest.fixture(scope="module")
def results():
    table = {}
    for label, cve_id, target in SCENARIOS:
        table[label] = {
            technique: run_scenario(cve_id, target, technique)
            for technique in ("none", "freepart")
        }
    return table


def test_section53_security_analysis(benchmark, results):
    benchmark.pedantic(
        run_scenario, args=(SCENARIOS[0][1], SCENARIOS[0][2], "freepart"),
        rounds=1, iterations=1,
    )
    rows = []
    for label, by_technique in results.items():
        unprotected = by_technique["none"]
        protected = by_technique["freepart"]
        rows.append([
            label,
            "succeeded" if not unprotected.prevented else "-",
            "blocked: " + "/".join(protected.blocked_by)
            if protected.prevented else "MISSED",
        ])
    emit(render_table(
        "Section 5.3 — exfiltration / corruption analysis "
        "(facial-recognition app, user profiles as the sensitive data)",
        ["attack", "unprotected", "FreePart"],
        rows,
        note="loading and processing agents cannot reach the host's "
             "sensitive data, and their filters lack every data-egress "
             "syscall",
    ))
    for label, by_technique in results.items():
        assert not by_technique["none"].prevented, label
        assert by_technique["freepart"].prevented, label


def test_section53_nothing_reaches_the_attacker(benchmark, results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for label, by_technique in results.items():
        assert not by_technique["freepart"].data_exfiltrated, label


def test_section53_profiles_unreadable_from_agents(benchmark):
    """The target program process keeps the profiles; agents never map
    them."""
    from repro.apps.base import execute_app
    from repro.apps.suite import used_api_objects
    from repro.core.runtime import FreePart
    from repro.sim.kernel import SimKernel

    def measure():
        app = FacialRecognitionApp()
        kernel = SimKernel()
        gateway = FreePart(kernel=kernel).deploy(
            used_apis=used_api_objects(app)
        )
        execute_app(app, gateway, WORKLOAD)
        return gateway

    gateway = benchmark.pedantic(measure, rounds=1, iterations=1)
    for agent in gateway.agents.values():
        assert agent.process.memory.find_buffer(USERPROFILE_TAG) is None
    assert gateway.host.memory.find_buffer(USERPROFILE_TAG) is not None
