"""Table 4 — API type categorization examples per framework."""

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.core.apitypes import APIType
from repro.core.hybrid import HybridAnalyzer
from repro.frameworks.registry import MAJOR_FRAMEWORKS, get_framework

#: Table 4's named examples, which must exist and categorize correctly.
PAPER_EXAMPLES = {
    ("opencv", APIType.LOADING): ["imread", "cvLoad", "VideoCapture",
                                  "readOpticalFlow"],
    ("opencv", APIType.PROCESSING): ["CascadeClassifier", "cvtColor",
                                     "equalizeHist"],
    ("opencv", APIType.VISUALIZING): ["setWindowTitle", "getMouseWheelDelta",
                                      "imshow"],
    ("opencv", APIType.STORING): ["imwrite", "writeOpticalFlow",
                                  "VideoWriter"],
    ("caffe", APIType.LOADING): ["ReadProtoFromTextFile",
                                 "ReadProtoFromBinaryFile"],
    ("caffe", APIType.PROCESSING): ["Forward", "Backward",
                                    "CopyTrainedLayersFrom"],
    ("caffe", APIType.STORING): ["hdf5_save_string", "WriteProtoToTextFile"],
    ("pytorch", APIType.LOADING): ["load", "hub_load", "model_zoo_load_url"],
    ("pytorch", APIType.PROCESSING): ["argmax", "tensor", "nn_Conv2d",
                                      "combinations"],
    ("pytorch", APIType.STORING): ["save", "SummaryWriter"],
    ("tensorflow", APIType.LOADING): ["image_dataset_from_directory",
                                      "utils_get_file"],
    ("tensorflow", APIType.PROCESSING): ["conv3d", "avg_pool", "max_pool"],
    ("tensorflow", APIType.STORING): ["preprocessing_image_save_img",
                                      "Model_save_weights"],
}


@pytest.fixture(scope="module")
def categorizations():
    analyzer = HybridAnalyzer()
    return {
        name: analyzer.categorize_framework(get_framework(name))
        for name in MAJOR_FRAMEWORKS
    }


def test_table4_api_examples(benchmark, categorizations):
    benchmark.pedantic(
        lambda: HybridAnalyzer().categorize_framework(get_framework("caffe")),
        rounds=1, iterations=1,
    )
    rows = []
    for (framework, api_type), names in sorted(
        PAPER_EXAMPLES.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        qualnames = [
            get_framework(framework).get(name).spec.qualname for name in names
        ]
        rows.append([framework, api_type.value, ", ".join(qualnames)])
    emit(render_table(
        "Table 4 — example APIs per framework and type",
        ["framework", "type", "examples (as categorized)"],
        rows,
        note="Caffe/PyTorch/TensorFlow have no visualizing APIs (footnote)",
    ))
    for (framework, api_type), names in PAPER_EXAMPLES.items():
        categorization = categorizations[framework]
        for name in names:
            qualname = get_framework(framework).get(name).spec.qualname
            entry = categorization.get(qualname)
            effective = entry.api_type
            # cvtColor is type-neutral: its home type is processing.
            assert effective is api_type or entry.neutral, (framework, name)


def test_table4_no_visualizing_in_ml_frameworks(benchmark, categorizations):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.core.apitypes import APIType

    for name in ("caffe", "pytorch", "tensorflow"):
        assert categorizations[name].of_type(APIType.VISUALIZING) == []
