"""Table 7 — system calls allowed for each API type."""

import pytest

from benchmarks.conftest import emit
from repro.bench.tables import render_table
from repro.core.apitypes import APIType
from repro.core.policy import policy_report


def test_table7_allowed_syscalls(benchmark):
    report = benchmark.pedantic(policy_report, rounds=1, iterations=1)
    rows = []
    for api_type, label in (
        (APIType.LOADING, "Loading"),
        (APIType.PROCESSING, "Processing"),
        (APIType.VISUALIZING, "Visualizing"),
        (APIType.STORING, "Storing"),
    ):
        allowed = report.per_type_allowed[api_type]
        rows.append([
            f"{label} ({len(allowed)})",
            ", ".join(allowed[:9]) + ", ...",
        ])
    emit(render_table(
        "Table 7 — per-API-type syscall allowlists",
        ["type (count)", "allowed system calls"],
        rows,
        note="paper counts: Loading 43, Processing 22, Visualizing 56, "
             "Storing 27; loading/processing exclude every data-egress "
             "syscall (write/send), which is what defeats exfiltration",
    ))
    assert report.per_type_counts == {
        APIType.LOADING: 43,
        APIType.PROCESSING: 22,
        APIType.VISUALIZING: 56,
        APIType.STORING: 27,
    }


def test_table7_exfiltration_gap(benchmark):
    """Section 5.3: no write-capable syscall in loading/processing."""
    report = benchmark.pedantic(policy_report, rounds=1, iterations=1)
    egress = {"write", "pwrite64", "writev", "sendto", "sendmsg", "sendfile"}
    for api_type in (APIType.LOADING, APIType.PROCESSING):
        allowed = set(report.per_type_allowed[api_type])
        assert not (allowed & egress), api_type
