"""Shared fixtures for the benchmark harness.

Every bench prints the rows/series of the paper table or figure it
regenerates (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them) and asserts the reproduced *shape* — orderings, ratios, crossovers
— against the published numbers.  All reported metrics come from the
deterministic virtual clock; pytest-benchmark's wall-time measurement
tracks harness performance only.
"""

import sys

import pytest


def emit(text: str) -> None:
    """Print a rendered table, visible even without -s via terminalwriter."""
    print()
    print(text)
    sys.stdout.flush()


@pytest.fixture(scope="session")
def workload():
    from repro.apps.base import Workload

    return Workload(items=2, image_size=16)
