"""Table 9 — #IPC, data volume, and runtime per technique.

Runs OMRChecker on the same workload under every technique plus
FreePart, reporting the virtual-clock quantities the paper tabulates.
The published *orderings* are asserted: code-based API isolation does
the fewest IPCs; entire-library shares memory and moves almost no data;
code+data isolation pays per-access IPC in hot loops; individual-API
isolation moves the most data and is slowest; FreePart's message count
matches the per-call RPC techniques while its data volume stays near the
shared-memory one.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.base import Workload, execute_app
from repro.apps.suite import make_app
from repro.attacks.scenarios import build_gateway
from repro.bench.tables import render_table
from repro.sim.kernel import SimKernel

TECHNIQUES = (
    "none", "code_api", "code_api_data", "lib_entire",
    "lib_individual", "memory_based", "freepart",
)

WORKLOAD = Workload(items=4, image_size=16)
SHEET_SIZE = 128  # paper-scale sheets so data movement is visible


def run_one(technique, traced=False):
    import numpy as np

    app = make_app(8)
    kernel = SimKernel()
    config = None
    if traced:
        from repro.core.runtime import FreePartConfig

        kernel.enable_tracing()
        config = FreePartConfig(
            trace=True, annotations=tuple(app.annotations)
        )
    gateway = build_gateway(technique, kernel, app=app, config=config)
    app.setup(kernel, WORKLOAD)
    rng = np.random.default_rng(9)
    for item in range(WORKLOAD.items):
        sheet = np.zeros((SHEET_SIZE, SHEET_SIZE, 3))
        for x, y, w, h in ((8, 8, 32, 32), (72, 8, 32, 32), (8, 72, 32, 32)):
            sheet[y:y + h, x:x + w] = 255.0
        sheet += rng.normal(scale=2.0, size=sheet.shape)
        kernel.fs.write_file(app.input_path(item), sheet)
    report = execute_app(app, gateway, WORKLOAD, setup=False)
    assert not report.failed, (technique, report.error)
    return report, kernel


@pytest.fixture(scope="module")
def reports():
    return {technique: run_one(technique)[0] for technique in TECHNIQUES}


def test_table9_overhead_breakdown(benchmark, reports):
    benchmark.pedantic(run_one, args=("freepart",), rounds=1, iterations=1)
    base = reports["none"].virtual_seconds
    rows = []
    for technique in TECHNIQUES:
        report = reports[technique]
        rows.append([
            technique,
            report.ipc_messages,
            f"{report.data_transferred_bytes / 1e6:.3f}",
            f"{report.virtual_seconds:.4f}",
            f"{report.virtual_seconds / base:.2f}x",
        ])
    emit(render_table(
        "Table 9 — IPCs, data transferred, runtime (OMRChecker workload)",
        ["technique", "#IPC", "data (MB)", "time (s)", "vs native"],
        rows,
        note="paper (seconds): API-code 54.3 / API+data 88.8 / entire 54.9 "
             "/ individual 121.8 / memory 54.1 / FreePart 55.6; shapes "
             "asserted, absolute values are virtual-clock units",
    ))

    r = reports
    # IPC ordering: code-based API isolation crosses partitions rarely.
    assert r["code_api"].ipc_messages < r["lib_entire"].ipc_messages
    assert r["code_api_data"].ipc_messages > r["lib_entire"].ipc_messages
    assert r["memory_based"].ipc_messages == 0
    # FreePart RPCs per call, like the library techniques.
    assert r["freepart"].ipc_messages >= r["lib_entire"].ipc_messages

    # Data volume: entire-library shares memory; individual moves the most.
    volumes = {t: r[t].data_transferred_bytes for t in TECHNIQUES}
    assert volumes["lib_entire"] <= min(
        volumes[t] for t in ("code_api", "code_api_data", "lib_individual")
    )
    assert volumes["lib_individual"] == max(volumes.values())
    assert volumes["freepart"] < 0.25 * volumes["lib_individual"]

    # Time ordering (Table 9's last column).
    times = {t: r[t].virtual_seconds for t in TECHNIQUES}
    assert times["memory_based"] == pytest.approx(times["none"], rel=0.02)
    assert times["none"] <= times["freepart"] < times["code_api_data"]
    assert times["code_api_data"] < times["lib_individual"]
    assert times["lib_individual"] > 1.5 * times["none"]
    # FreePart stays within a few percent of native (the 55.6 vs 54.1 row).
    assert times["freepart"] / times["none"] < 1.08
    # Hot-path optimisations (zero-copy LDC + cached framed dispatch)
    # hold the overhead below the pre-optimisation 1.037x ratio.
    assert times["freepart"] / times["none"] < 1.032
    # The zero-copy lane is visible: large sheets remap instead of copy,
    # and byte totals still reconcile with end-to-end data moved.
    assert r["freepart"].zero_copy_transfers > 0
    assert r["freepart"].zero_copy_bytes > 0
    assert r["freepart"].framed_messages > 0
    assert r["freepart"].data_transferred_bytes == (
        r["freepart"].ipc_bytes
        + r["freepart"].lazy_copy_bytes
        + r["freepart"].zero_copy_bytes
    )


def test_freepart_trace_rollup_matches_headline_numbers(reports):
    """Trace-rollup mode: per-mechanism breakdown alongside Table 9.

    The traced re-run must reproduce the untraced headline exactly (the
    tracer reads the virtual clock, never advances it), and the rollup's
    rows must partition the run's end-to-end virtual time.
    """
    from repro.obs.export import mechanism_rollup, render_rollup

    report, kernel = run_one("freepart", traced=True)
    assert report.virtual_seconds == reports["freepart"].virtual_seconds
    assert report.ipc_messages == reports["freepart"].ipc_messages

    total_ns = kernel.clock.now_ns
    rows = mechanism_rollup(kernel.tracer, total_ns)
    assert sum(r.self_ns for r in rows) == total_ns
    assert all(r.self_ns >= 0 for r in rows)
    categories = {r.category for r in rows}
    assert {"ipc", "copy", "mprotect", "filter_check", "zero_copy"} <= categories
    # The optimised hot path spends less on fixed message framing +
    # serialization than the pre-optimisation run did (13.83M ns).
    self_ns = {r.category: r.self_ns for r in rows}
    assert self_ns["ipc"] + self_ns["serialize"] < 13_000_000
    # Remapping is far cheaper than the byte copies it replaced.
    assert 0 < self_ns["zero_copy"] < self_ns["ipc"]
    emit(render_rollup(kernel.tracer, total_ns))
