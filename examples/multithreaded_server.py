#!/usr/bin/env python3
"""Section 6: a multi-threaded detection server under FreePart.

A server handles detection requests on two worker threads.  Each thread
gets its own set of four agent processes (``gateway.for_thread``), so
the threads never race on an agent and a crash in one worker's pipeline
cannot disturb the other.  Mid-run, worker B receives a malicious
request that crashes its loading agent; worker A never notices, and B's
agent restarts with its restart budget enforced.

Run:  python examples/multithreaded_server.py
"""

import numpy as np

from repro.attacks.exploits import DosExploit
from repro.attacks.payloads import CraftedInput, benign_image
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import FrameworkCrash
from repro.frameworks.registry import get_framework


def handle_request(gateway, path: str):
    """One detection request: load -> preprocess -> detect."""
    image = gateway.call("opencv", "imread", path)
    gray = gateway.call("opencv", "cvtColor", image)
    classifier = gateway.call("opencv", "CascadeClassifier")
    return gateway.call(
        "opencv", "CascadeClassifier_detectMultiScale", classifier, gray
    )


def main() -> None:
    config = FreePartConfig(max_restarts_per_agent=3)
    freepart = FreePart(config=config)
    kernel = freepart.kernel

    worker_a = freepart.deploy(used_apis=list(get_framework("opencv")))
    worker_b = worker_a.for_thread("worker-b")
    print(f"server up: {len(kernel.processes(role='agent'))} agent "
          "processes across 2 worker threads\n")

    # Benign requests for both workers.
    rng = np.random.default_rng(3)
    for index in range(4):
        frame = np.zeros((24, 24, 3))
        frame[4:10, 4 + index * 3:10 + index * 3] = 255.0
        kernel.fs.write_file(f"/queue/req-{index}.png",
                             frame + rng.normal(scale=1.0, size=frame.shape))
    # ...and one malicious request aimed at worker B.
    crafted = CraftedInput("CVE-2017-14136", DosExploit(), benign_image())
    kernel.fs.write_file("/queue/req-evil.png", crafted)

    queue = [
        (worker_a, "/queue/req-0.png"),
        (worker_b, "/queue/req-1.png"),
        (worker_b, "/queue/req-evil.png"),   # the attack
        (worker_a, "/queue/req-2.png"),      # A is unaffected
        (worker_b, "/queue/req-3.png"),      # B's agent restarted
    ]
    for index, (worker, path) in enumerate(queue):
        name = "A" if worker is worker_a else "B"
        try:
            detections = handle_request(worker, path)
            print(f"request {index} on worker {name}: "
                  f"{len(detections)} detection(s)")
        except FrameworkCrash as crash:
            print(f"request {index} on worker {name}: REJECTED "
                  f"({crash.cause})")

    print(f"\nworker A crashes: {worker_a.total_crashes()}, "
          f"restarts: {worker_a.total_restarts()}")
    print(f"worker B crashes: {worker_b.total_crashes()}, "
          f"restarts: {worker_b.total_restarts()}")
    print(f"host program alive: {worker_a.host.alive}")
    print(f"virtual time: {kernel.clock.now_ms:.2f} ms, "
          f"lazy copy fraction: {kernel.ipc.lazy_fraction * 100:.0f}%")


if __name__ == "__main__":
    main()
