#!/usr/bin/env python3
"""Mini partition-count study (Fig. 4): why FreePart uses four agents.

Runs OMRChecker under FreePart with 4..12 partitions (finer partitions
split the data-processing agent randomly) and prints the runtime curve:
the jump past four partitions comes from the hot-loop annotation APIs
(cv.rectangle / cv.putText) landing in different processes and copying
their shared sheet on every call.

Run:  python examples/partition_study.py
"""

import numpy as np

from repro.apps.base import Workload, execute_app
from repro.apps.omrchecker import OMRCheckerApp
from repro.apps.suite import used_api_objects
from repro.core.runtime import FreePart, FreePartConfig
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=1, image_size=16)
SHEET = 192
SEEDS = 3


def run_once(partitions: int, seed: int) -> float:
    app = OMRCheckerApp()
    kernel = SimKernel()
    config = FreePartConfig(partition_count=partitions, partition_seed=seed,
                            annotations=tuple(app.annotations))
    gateway = FreePart(kernel=kernel, config=config).deploy(
        used_apis=used_api_objects(app)
    )
    app.setup(kernel, WORKLOAD)
    rng = np.random.default_rng(11)
    sheet = np.zeros((SHEET, SHEET, 3))
    sheet[20:80, 20:80] = 255.0
    sheet += rng.normal(scale=2.0, size=sheet.shape)
    kernel.fs.write_file(app.input_path(0), sheet)
    report = execute_app(app, gateway, WORKLOAD, setup=False)
    assert not report.failed, report.error
    return report.virtual_seconds


def main() -> None:
    baseline = run_once(4, 0)
    print(f"{'partitions':>10}  {'avg runtime':>12}  {'vs 4 agents':>11}")
    print(f"{4:>10}  {baseline * 1e3:>10.1f}ms  {1.0:>10.2f}x")
    for partitions in (5, 6, 8, 10, 12):
        samples = [run_once(partitions, seed) for seed in range(SEEDS)]
        average = sum(samples) / len(samples)
        print(f"{partitions:>10}  {average * 1e3:>10.1f}ms  "
              f"{average / baseline:>10.2f}x")
    print("\nFiner partitioning buys no extra security here (the split "
          "APIs have no CVEs)\nbut pays real data-movement cost — the "
          "paper's argument for exactly four agents.")


if __name__ == "__main__":
    main()
