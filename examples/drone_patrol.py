#!/usr/bin/env python3
"""The drone case study (Section 5.4.1): surviving a DoS mid-flight.

The drone tracks an object through camera frames.  Mid-patrol it loads a
poisoned frame that crashes the image decoder (CVE-2017-14136).  Without
isolation the whole program — and the drone — goes down.  Under FreePart
only the data-loading agent dies; the runtime restarts it, the poisoned
frame is dropped, and the patrol continues.

Run:  python examples/drone_patrol.py
"""

from repro.apps.base import Workload, execute_app
from repro.apps.drone import DroneApp, drone_followed_object
from repro.apps.suite import used_api_objects
from repro.attacks.exploits import DosExploit
from repro.attacks.payloads import CraftedInput, benign_image
from repro.core.gateway import NativeGateway
from repro.core.runtime import FreePart
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=8)
POISONED_FRAME = 3
CVE = "CVE-2017-14136"


def patrol(protected: bool):
    app = DroneApp()
    kernel = SimKernel()
    if protected:
        gateway = FreePart(kernel=kernel).deploy(
            used_apis=used_api_objects(app)
        )
    else:
        gateway = NativeGateway(kernel)
    app.setup(kernel, WORKLOAD)
    crafted = CraftedInput(CVE, DosExploit(), benign_image())
    kernel.fs.write_file(app.frame_path(POISONED_FRAME), crafted)
    report = execute_app(app, gateway, WORKLOAD, setup=False)
    return gateway, report


def main() -> None:
    print("=== unprotected patrol ===")
    gateway, report = patrol(protected=False)
    if report.failed or not gateway.host.alive:
        print(f"frame {POISONED_FRAME} crashed the drone program: "
              f"{report.error or 'process dead'}")
        print("=> the drone halts and falls out of the sky\n")

    print("=== FreePart-protected patrol ===")
    gateway, report = patrol(protected=True)
    result = report.result
    print(f"frames processed: {result.items_processed}/{WORKLOAD.items} "
          f"(poisoned frame dropped)")
    print(f"agent crashes survived: {result.crashes_survived}, "
          f"agent restarts: {report.restarts}")
    print(f"drone airborne: {result.outputs['airborne']}, "
          f"still tracking: {drone_followed_object(result)}")
    print(f"speed setting intact: {result.outputs['final_speed']}")
    positions = result.outputs["positions"]
    print("trajectory: " + " ".join(f"{x:.1f}" for x in positions))


if __name__ == "__main__":
    main()
