#!/usr/bin/env python3
"""Quickstart: protect a small image pipeline with FreePart.

Builds a simulated machine, deploys FreePart over the OpenCV-analogue
framework, runs a load → process → show → store pipeline, and prints
what the runtime did: which agent ran what, how the framework state
advanced, and how little data crossed process boundaries thanks to lazy
data copy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FreePart, FreePartConfig
from repro.frameworks.registry import get_framework


def main() -> None:
    # 1. A simulated machine with an input image on its filesystem.
    freepart = FreePart(config=FreePartConfig())
    kernel = freepart.kernel
    rng = np.random.default_rng(7)
    kernel.fs.write_file(
        "/photos/cat.png", rng.integers(0, 256, (64, 64, 3)).astype(float)
    )

    # 2. Offline phase: hybrid analysis + partition plan, then deploy.
    #    (Passing no API list analyzes every registered framework API.)
    gateway = freepart.deploy(used_apis=list(get_framework("opencv")))
    print(f"deployed: {gateway.process_count} processes "
          f"(host + {len(gateway.agents)} agents)")
    for agent in gateway.agents.values():
        allowed = len(agent.process.filter.allowed_names)
        print(f"  agent {agent.partition.label:<16} "
              f"pid={agent.process.pid} allowlist={allowed} syscalls")

    # 3. The application code — ordinary framework calls through the
    #    gateway.  Results are opaque handles; the pixel data never
    #    enters the host program.
    image = gateway.call("opencv", "imread", "/photos/cat.png")
    print(f"\nimread -> {image!r}  (state={gateway.machine.state_label})")
    blurred = gateway.call("opencv", "GaussianBlur", image, sigma=1.5)
    edges = gateway.call("opencv", "Canny", blurred)
    print(f"Canny  -> {edges!r}  (state={gateway.machine.state_label})")
    gateway.call("opencv", "imshow", "edges", edges)
    gateway.call("opencv", "imwrite", "/photos/cat-edges.png", edges)

    # 4. Dereference a result in the host (an explicit, counted copy).
    data = gateway.materialize(edges)
    print(f"\nmaterialized result: shape={data.shape}, "
          f"edge pixels={int((data > 0).sum())}")

    # 5. What it cost, on the deterministic virtual clock.
    ipc = kernel.ipc
    print(f"\nvirtual time: {kernel.clock.now_seconds * 1e3:.2f} ms")
    print(f"IPC messages: {ipc.messages} ({ipc.message_bytes} bytes — "
          "references, not pixels)")
    print(f"data copies:  {ipc.lazy_copies} lazy / "
          f"{ipc.nonlazy_copies} non-lazy / "
          f"{ipc.zero_copy_transfers} zero-copy remaps "
          f"({ipc.lazy_fraction * 100:.0f}% lazy)")
    print(f"state transitions: {gateway.machine.transition_count()} "
          f"({' -> '.join(s.value for s in gateway.machine.states_visited())})")


if __name__ == "__main__":
    main()
