#!/usr/bin/env python3
"""Generality: bring your own framework and let FreePart partition it.

Registers a small custom "miniaudio" framework — a loader, two DSP
operators, and a writer — and shows the offline pipeline doing its job
without any framework-specific knowledge: the hybrid analysis
categorizes the APIs from their observed data flows, the partitioner
assigns them to agents, and the runtime isolates them.

Run:  python examples/custom_framework.py
"""

import numpy as np

from repro.core.apitypes import APIType
from repro.core.dataflow import load_flow, process_flow, store_flow
from repro.core.hybrid import HybridAnalyzer
from repro.core.runtime import FreePart
from repro.frameworks.base import APISpec, Framework, Tensor
from repro.frameworks.registry import register_framework

AUDIO = register_framework(Framework("miniaudio", version="0.1"))


def _wave_example(ctx):
    return ((Tensor(np.sin(np.linspace(0, 6.28, 64))),), {})


def _path_example(ctx):
    if not ctx.kernel.fs.exists("/audio/example.wav"):
        ctx.kernel.fs.write_file("/audio/example.wav",
                                 np.sin(np.linspace(0, 6.28, 64)))
    return (("/audio/example.wav",), {})


def _load_wav(ctx, path):
    samples = ctx.guard(ctx.read_file(path))
    return Tensor(np.asarray(samples, dtype=np.float64))


AUDIO.add(
    APISpec(name="load_wav", framework="miniaudio",
            qualname="audio.load_wav", ground_truth=APIType.LOADING,
            flows=(load_flow(),),
            syscalls=("openat", "fstat", "read", "close", "brk", "lseek"),
            example_args=_path_example, doc="Decode a WAV file."),
    _load_wav,
)


def _lowpass(ctx, wave):
    samples = np.asarray(ctx.guard(wave).data, dtype=np.float64)
    smoothed = np.convolve(samples, np.ones(5) / 5.0, mode="same")
    ctx.mem_compute(nbytes=int(smoothed.nbytes))
    return Tensor(smoothed)


def _normalize(ctx, wave):
    samples = np.asarray(ctx.guard(wave).data, dtype=np.float64)
    peak = np.abs(samples).max() or 1.0
    ctx.mem_compute(nbytes=int(samples.nbytes))
    return Tensor(samples / peak)


for name, impl in (("lowpass", _lowpass), ("normalize", _normalize)):
    AUDIO.add(
        APISpec(name=name, framework="miniaudio",
                qualname=f"audio.{name}", ground_truth=APIType.PROCESSING,
                flows=(process_flow(),), syscalls=("brk",),
                example_args=_wave_example, doc=f"{name} filter"),
        impl,
    )


def _write_wav(ctx, path, wave):
    samples = np.asarray(ctx.guard(wave).data, dtype=np.float64)
    ctx.write_file(path, samples.copy())


AUDIO.add(
    APISpec(name="write_wav", framework="miniaudio",
            qualname="audio.write_wav", ground_truth=APIType.STORING,
            flows=(store_flow(),),
            syscalls=("openat", "write", "close", "brk"),
            example_args=lambda ctx: (
                ("/audio/out.wav", Tensor(np.zeros(8))), {}
            ),
            doc="Encode a WAV file."),
    _write_wav,
)


def main() -> None:
    # Offline: categorize the custom APIs from their behaviour.
    categorization = HybridAnalyzer().categorize_framework(AUDIO)
    print("hybrid analysis verdicts:")
    for entry in categorization.entries.values():
        print(f"  {entry.qualname:<20} -> {entry.api_type.value:<16} "
              f"(via {entry.method})")
    assert categorization.accuracy() == 1.0

    # Online: deploy and run a pipeline over the custom framework.  The
    # visualizing agent simply idles (miniaudio has no GUI APIs).
    freepart = FreePart()
    kernel = freepart.kernel
    kernel.fs.write_file("/audio/example.wav",
                         np.sin(np.linspace(0, 25, 256)) * 3.0)
    gateway = freepart.deploy(used_apis=list(AUDIO))
    wave = gateway.call("miniaudio", "load_wav", "/audio/example.wav")
    filtered = gateway.call("miniaudio", "lowpass", wave)
    normalized = gateway.call("miniaudio", "normalize", filtered)
    gateway.call("miniaudio", "write_wav", "/audio/clean.wav", normalized)

    output = kernel.fs.read_file("/audio/clean.wav")
    print(f"\npipeline ran across {gateway.process_count} processes; "
          f"peak amplitude now {np.abs(output).max():.3f}")
    print(f"lazy copies: {kernel.ipc.lazy_copies}, "
          f"messages: {kernel.ipc.messages}, "
          f"virtual time: {kernel.clock.now_ms:.2f} ms")


if __name__ == "__main__":
    main()
