#!/usr/bin/env python3
"""The motivating example (Section 3): grading OMR sheets under attack.

A teacher grades student answer sheets with OMRChecker.  A malicious
student submits a crafted image exploiting CVE-2017-12597 in
``cv2.imread`` to corrupt the grading template.  The example runs the
same scenario twice — unprotected and under FreePart — and prints what
happened to the grades.

Run:  python examples/omr_grading.py
"""

from repro.apps.base import Workload, execute_app
from repro.apps.omrchecker import (
    DEFAULT_TEMPLATE,
    OMRCheckerApp,
    TEMPLATE_TAG,
    read_scores,
)
from repro.apps.suite import used_api_objects
from repro.attacks.exploits import MemoryCorruptionExploit
from repro.attacks.payloads import CraftedInput, benign_image
from repro.core.gateway import NativeGateway
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import FrameworkCrash
from repro.sim.kernel import SimKernel

WORKLOAD = Workload(items=3, image_size=16)
CVE = "CVE-2017-12597"


def grade_with_attack(protected: bool):
    app = OMRCheckerApp()
    kernel = SimKernel()
    if protected:
        config = FreePartConfig(annotations=tuple(app.annotations))
        gateway = FreePart(kernel=kernel, config=config).deploy(
            used_apis=used_api_objects(app)
        )
    else:
        gateway = NativeGateway(kernel)
    app.setup(kernel, WORKLOAD)

    # Grade the honest submissions first.
    execute_app(app, gateway, WORKLOAD, setup=False)
    before = read_scores(kernel, app)

    # The malicious student's sheet: it exploits imread() to overwrite
    # the template's answer-box coordinates (Fig. 1).
    crafted = CraftedInput(
        CVE,
        MemoryCorruptionExploit(TEMPLATE_TAG,
                                new_value=[[0, 0, 1, 1]] * 3),
        cover=benign_image(),
    )
    kernel.fs.write_file("/submissions/malicious.png", crafted)
    try:
        gateway.call("opencv", "imread", "/submissions/malicious.png")
        attack_note = "exploit executed silently"
    except FrameworkCrash as crash:
        attack_note = f"exploit contained: {crash}"

    template = gateway.host_read(TEMPLATE_TAG)
    return before, template, attack_note, crafted.last_outcome


def main() -> None:
    print("=== unprotected ===")
    scores, template, note, outcome = grade_with_attack(protected=False)
    print(f"grades before attack: {scores[1:]}")
    print(f"attack: {note}")
    print(f"template after attack: {template}")
    corrupted = template != [list(b) for b in DEFAULT_TEMPLATE]
    print(f"=> template corrupted: {corrupted} "
          "(every future submission is now mis-graded)\n")

    print("=== under FreePart ===")
    scores, template, note, outcome = grade_with_attack(protected=True)
    print(f"grades before attack: {scores[1:]}")
    print(f"attack: {note}")
    print(f"exploit ran in: {outcome.process_name} "
          f"(blocked by {outcome.blocked_by})")
    print(f"template after attack: {template}")
    corrupted = template != [list(b) for b in DEFAULT_TEMPLATE]
    print(f"=> template corrupted: {corrupted} "
          "(the grading process keeps working)")


if __name__ == "__main__":
    main()
